//! Runtime-recomposable filter chains — the MetaSocket itself.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::filter::Filter;
use crate::packet::Packet;

/// Errors from chain recomposition operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// No filter slot carries the given component name.
    UnknownComponent(String),
    /// A slot with the given component name already exists.
    DuplicateComponent(String),
    /// Insertion position beyond the end of the chain.
    PositionOutOfRange {
        /// Requested position.
        pos: usize,
        /// Current chain length.
        len: usize,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownComponent(n) => write!(f, "no component named {n:?} in chain"),
            ChainError::DuplicateComponent(n) => write!(f, "component {n:?} already in chain"),
            ChainError::PositionOutOfRange { pos, len } => {
                write!(f, "position {pos} out of range for chain of length {len}")
            }
        }
    }
}

impl Error for ChainError {}

/// Aggregate chain counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Packets accepted by [`FilterChain::push`].
    pub packets_in: u64,
    /// Packets emitted from the end of the chain.
    pub packets_out: u64,
    /// Packets buffered because the chain was blocked.
    pub buffered: u64,
}

/// An ordered chain of named filters with runtime insert/remove/replace —
/// the adaptable internals of a MetaSocket.
///
/// Each slot binds a *component name* (the paper's `E1`, `D2`, …) to a
/// [`Filter`] instance. Two facilities make adaptation safe:
///
/// * **Packet-boundary atomicity** — [`FilterChain::push`] runs a packet
///   through the whole chain before returning; recomposition can only happen
///   between pushes, which realizes the agent's local safe state ("the DES
///   decoder is not decoding a packet", Section 5.2).
/// * **Blocking** — [`FilterChain::block`] makes subsequent pushes buffer
///   instead of process; [`FilterChain::unblock`] drains the buffer through
///   the (possibly recomposed) chain in arrival order. Agents block chains
///   while an adaptive in-action is pending and resume them afterwards.
#[derive(Debug, Default)]
pub struct FilterChain {
    slots: Vec<(String, Box<dyn Filter>)>,
    blocked: bool,
    pending: VecDeque<Packet>,
    stats: ChainStats,
}

impl FilterChain {
    /// An empty, unblocked chain.
    pub fn new() -> Self {
        FilterChain::default()
    }

    /// Component names in chain order.
    pub fn names(&self) -> Vec<&str> {
        self.slots.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// True when a slot named `name` exists.
    pub fn has(&self, name: &str) -> bool {
        self.slots.iter().any(|(n, _)| n == name)
    }

    /// Number of filters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the chain holds no filters.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True while blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Number of packets waiting in the blocked buffer.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Chain-level counters.
    pub fn stats(&self) -> ChainStats {
        self.stats
    }

    /// Borrow a filter by component name (for reading stats).
    pub fn filter(&self, name: &str) -> Option<&dyn Filter> {
        self.slots.iter().find(|(n, _)| n == name).map(|(_, f)| f.as_ref())
    }

    fn run(&mut self, pkt: Packet, from_slot: usize) -> Vec<Packet> {
        let mut wave = vec![pkt];
        for ix in from_slot..self.slots.len() {
            let mut next = Vec::with_capacity(wave.len());
            for p in wave {
                next.extend(self.slots[ix].1.process(p));
            }
            wave = next;
            if wave.is_empty() {
                break;
            }
        }
        self.stats.packets_out += wave.len() as u64;
        wave
    }

    /// Feeds one packet into the chain. Returns the packets leaving the far
    /// end — empty while blocked (the packet is buffered).
    pub fn push(&mut self, pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        if self.blocked {
            self.stats.buffered += 1;
            self.pending.push_back(pkt);
            return Vec::new();
        }
        self.run(pkt, 0)
    }

    /// Stops processing: subsequent pushes buffer. Idempotent.
    pub fn block(&mut self) {
        self.blocked = true;
    }

    /// Resumes processing, draining buffered packets through the current
    /// chain in arrival order. Returns everything the drain produced.
    pub fn unblock(&mut self) -> Vec<Packet> {
        self.blocked = false;
        let mut out = Vec::new();
        while let Some(pkt) = self.pending.pop_front() {
            out.extend(self.run(pkt, 0));
        }
        out
    }

    /// Flushes every filter in order, cascading tail filters' buffered
    /// output through the rest of the chain (used before removing stateful
    /// filters such as the FEC encoder).
    pub fn flush(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        for ix in 0..self.slots.len() {
            let flushed = self.slots[ix].1.flush();
            for p in flushed {
                out.extend(self.run(p, ix + 1));
            }
        }
        out
    }

    /// Inserts a filter as component `name` at `pos` (0 = head).
    ///
    /// # Errors
    ///
    /// [`ChainError::DuplicateComponent`] if `name` is taken,
    /// [`ChainError::PositionOutOfRange`] if `pos > len`.
    pub fn insert(
        &mut self,
        pos: usize,
        name: &str,
        filter: Box<dyn Filter>,
    ) -> Result<(), ChainError> {
        if self.has(name) {
            return Err(ChainError::DuplicateComponent(name.to_string()));
        }
        if pos > self.slots.len() {
            return Err(ChainError::PositionOutOfRange { pos, len: self.slots.len() });
        }
        self.slots.insert(pos, (name.to_string(), filter));
        Ok(())
    }

    /// Appends a filter as component `name`.
    ///
    /// # Errors
    ///
    /// [`ChainError::DuplicateComponent`] if `name` is taken.
    pub fn push_back(&mut self, name: &str, filter: Box<dyn Filter>) -> Result<(), ChainError> {
        self.insert(self.slots.len(), name, filter)
    }

    /// Removes the component `name`, returning its filter (post-action
    /// destruction is the caller's business, matching the paper's
    /// pre/in/post action split).
    ///
    /// # Errors
    ///
    /// [`ChainError::UnknownComponent`] if absent.
    pub fn remove(&mut self, name: &str) -> Result<Box<dyn Filter>, ChainError> {
        match self.slots.iter().position(|(n, _)| n == name) {
            Some(ix) => Ok(self.slots.remove(ix).1),
            None => Err(ChainError::UnknownComponent(name.to_string())),
        }
    }

    /// Replaces component `old` with a new component `new` in the same
    /// chain position, returning the old filter.
    ///
    /// # Errors
    ///
    /// [`ChainError::UnknownComponent`] if `old` is absent;
    /// [`ChainError::DuplicateComponent`] if `new` already exists elsewhere
    /// in the chain.
    pub fn replace(
        &mut self,
        old: &str,
        new: &str,
        filter: Box<dyn Filter>,
    ) -> Result<Box<dyn Filter>, ChainError> {
        if old != new && self.has(new) {
            return Err(ChainError::DuplicateComponent(new.to_string()));
        }
        let ix = self
            .slots
            .iter()
            .position(|(n, _)| n == old)
            .ok_or_else(|| ChainError::UnknownComponent(old.to_string()))?;
        let (_, old_filter) = std::mem::replace(&mut self.slots[ix], (new.to_string(), filter));
        Ok(old_filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Telemetry;
    use crate::filters::des::{CipherDecoder, CipherEncoder};
    use crate::packet::tags;

    const K64: u64 = 0x133457799BBCDFF1;
    const K1: u64 = 0x0123456789ABCDEF;
    const K2: u64 = 0xFEDCBA9876543210;

    fn pkt(seq: u64) -> Packet {
        Packet::new(1, seq, format!("frame-{seq}").into_bytes())
    }

    #[test]
    fn empty_chain_is_identity() {
        let mut ch = FilterChain::new();
        let out = ch.push(pkt(1));
        assert_eq!(out, vec![pkt(1)]);
        assert_eq!(ch.stats().packets_in, 1);
        assert_eq!(ch.stats().packets_out, 1);
    }

    #[test]
    fn encode_decode_through_chains() {
        let mut send = FilterChain::new();
        send.push_back("E1", Box::new(CipherEncoder::des64(K64))).unwrap();
        let mut recv = FilterChain::new();
        recv.push_back("D1", Box::new(CipherDecoder::des64(K64))).unwrap();
        let wire = send.push(pkt(5)).pop().unwrap();
        assert_eq!(wire.top_tag(), Some(tags::DES64));
        let out = recv.push(wire).pop().unwrap();
        assert_eq!(out, pkt(5));
    }

    #[test]
    fn blocked_chain_buffers_then_drains_in_order() {
        let mut ch = FilterChain::new();
        ch.push_back("T", Box::<Telemetry>::default()).unwrap();
        ch.block();
        assert!(ch.push(pkt(1)).is_empty());
        assert!(ch.push(pkt(2)).is_empty());
        assert_eq!(ch.pending_len(), 2);
        assert_eq!(ch.stats().buffered, 2);
        let drained = ch.unblock();
        assert_eq!(drained.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert!(!ch.is_blocked());
        assert_eq!(ch.pending_len(), 0);
    }

    #[test]
    fn recompose_while_blocked_applies_to_drained_packets() {
        // The agent's sequence: block, swap decoder, unblock. Packets that
        // arrived while blocked must be processed by the *new* filter.
        let mut send = FilterChain::new();
        send.push_back("E2", Box::new(CipherEncoder::des128(K1, K2))).unwrap();
        let mut recv = FilterChain::new();
        recv.push_back("D1", Box::new(CipherDecoder::des64(K64))).unwrap();
        recv.block();
        let wire = send.push(pkt(9)).pop().unwrap();
        assert!(recv.push(wire).is_empty(), "buffered while blocked");
        recv.replace("D1", "D3", Box::new(CipherDecoder::des128(K1, K2))).unwrap();
        let out = recv.unblock();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], pkt(9), "drained packet decoded by the new D3");
    }

    #[test]
    fn insert_positions_and_order() {
        let mut ch = FilterChain::new();
        ch.push_back("B", Box::<Telemetry>::default()).unwrap();
        ch.insert(0, "A", Box::<Telemetry>::default()).unwrap();
        ch.insert(2, "C", Box::<Telemetry>::default()).unwrap();
        assert_eq!(ch.names(), vec!["A", "B", "C"]);
        assert_eq!(ch.len(), 3);
    }

    #[test]
    fn errors_on_bad_operations() {
        let mut ch = FilterChain::new();
        ch.push_back("A", Box::<Telemetry>::default()).unwrap();
        assert_eq!(
            ch.push_back("A", Box::<Telemetry>::default()).unwrap_err(),
            ChainError::DuplicateComponent("A".into())
        );
        assert_eq!(
            ch.insert(5, "B", Box::<Telemetry>::default()).unwrap_err(),
            ChainError::PositionOutOfRange { pos: 5, len: 1 }
        );
        assert_eq!(ch.remove("ZZ").unwrap_err(), ChainError::UnknownComponent("ZZ".into()));
        assert!(ch.replace("ZZ", "Y", Box::<Telemetry>::default()).is_err());
        ch.push_back("B", Box::<Telemetry>::default()).unwrap();
        assert_eq!(
            ch.replace("A", "B", Box::<Telemetry>::default()).unwrap_err(),
            ChainError::DuplicateComponent("B".into())
        );
    }

    #[test]
    fn replace_preserves_position() {
        let mut ch = FilterChain::new();
        ch.push_back("A", Box::<Telemetry>::default()).unwrap();
        ch.push_back("B", Box::<Telemetry>::default()).unwrap();
        ch.push_back("C", Box::<Telemetry>::default()).unwrap();
        let old = ch.replace("B", "B2", Box::<Telemetry>::default()).unwrap();
        assert_eq!(old.kind(), "telemetry");
        assert_eq!(ch.names(), vec!["A", "B2", "C"]);
    }

    #[test]
    fn remove_returns_filter_for_post_action() {
        let mut ch = FilterChain::new();
        ch.push_back("T", Box::<Telemetry>::default()).unwrap();
        let _ = ch.push(pkt(1));
        let removed = ch.remove("T").unwrap();
        assert_eq!(removed.stats().packets_in, 1, "state travels with the filter");
        assert!(ch.is_empty());
    }

    #[test]
    fn flush_cascades_through_downstream_filters() {
        use crate::filters::fec::FecEncoder;
        let mut ch = FilterChain::new();
        ch.push_back("FEC", Box::new(FecEncoder::new(10))).unwrap();
        ch.push_back("E1", Box::new(CipherEncoder::des64(K64))).unwrap();
        let _ = ch.push(pkt(1));
        let flushed = ch.flush();
        // The partial-group parity packet must pass through E1 and gain its tag.
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].top_tag(), Some(tags::DES64));
    }

    #[test]
    fn filter_accessor_reads_stats() {
        let mut ch = FilterChain::new();
        ch.push_back("T", Box::<Telemetry>::default()).unwrap();
        let _ = ch.push(pkt(1));
        assert_eq!(ch.filter("T").unwrap().stats().packets_in, 1);
        assert!(ch.filter("missing").is_none());
    }
}
