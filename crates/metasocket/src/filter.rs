//! The filter abstraction: the paper's adaptable MetaSocket components.

use std::any::Any;
use std::fmt;

use crate::packet::Packet;

/// Upcast support so concrete filter state (e.g. an FEC decoder's recovery
/// counter) can be inspected behind `dyn Filter`. Blanket-implemented for
/// every `'static` type.
pub trait AsAny {
    /// Borrows the value as [`Any`].
    fn as_any(&self) -> &dyn Any;
    /// Mutably borrows the value as [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Per-filter traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Packets entering the filter.
    pub packets_in: u64,
    /// Packets leaving the filter (FEC may emit more, RLE the same, a
    /// reassembler fewer).
    pub packets_out: u64,
    /// Packets forwarded untouched because the tag did not match — the
    /// paper's bypass behaviour.
    pub bypassed: u64,
    /// Packets whose transform failed (marked corrupted).
    pub errors: u64,
}

/// A MetaSocket filter: a runtime-insertable packet transformer.
///
/// Filters are the paper's adaptable components (`E1`, `D3`, …): a send
/// chain encodes, a receive chain decodes. Each call to [`Filter::process`]
/// is atomic with respect to adaptation — the chain only mutates between
/// packets, which is exactly the *local safe state* ("the DES decoder is not
/// decoding a packet") of Section 5.2.
pub trait Filter: AsAny {
    /// Algorithm label, e.g. `"des64-enc"`.
    fn kind(&self) -> &'static str;

    /// Transforms one packet into zero or more packets.
    fn process(&mut self, pkt: Packet) -> Vec<Packet>;

    /// Emits any buffered output (end of stream, or before removal so no
    /// data is lost when the component leaves the chain).
    fn flush(&mut self) -> Vec<Packet> {
        Vec::new()
    }

    /// Traffic counters (default: zeroes for stateless filters that do not
    /// track them).
    fn stats(&self) -> FilterStats {
        FilterStats::default()
    }
}

impl fmt::Debug for dyn Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Filter({})", self.kind())
    }
}

/// A no-op filter that forwards packets unchanged while counting them;
/// useful as a telemetry probe and in tests.
#[derive(Debug, Default)]
pub struct Telemetry {
    stats: FilterStats,
    /// Total payload bytes seen.
    pub bytes: u64,
}

impl Filter for Telemetry {
    fn kind(&self) -> &'static str {
        "telemetry"
    }

    fn process(&mut self, pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        self.stats.packets_out += 1;
        self.bytes += pkt.payload.len() as u64;
        vec![pkt]
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_counts_and_forwards() {
        let mut t = Telemetry::default();
        let out = t.process(Packet::new(0, 1, vec![0; 100]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 1);
        assert_eq!(t.bytes, 100);
        assert_eq!(t.stats().packets_in, 1);
        assert_eq!(t.stats().packets_out, 1);
        assert!(t.flush().is_empty());
    }

    #[test]
    fn dyn_filter_debug_prints_kind() {
        let t: Box<dyn Filter> = Box::<Telemetry>::default();
        assert_eq!(format!("{t:?}"), "Filter(telemetry)");
    }
}
