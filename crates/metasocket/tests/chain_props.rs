//! Property tests: arbitrary stacks of mutually-inverse filters compose to
//! the identity, and chain recomposition never loses buffered packets.

use proptest::prelude::*;
use sada_meta::filters::des::{CipherDecoder, CipherEncoder};
use sada_meta::filters::rle::{RleDecoder, RleEncoder};
use sada_meta::{Filter, FilterChain, Packet};

const K64: u64 = 0x133457799BBCDFF1;
const K1: u64 = 0x0123456789ABCDEF;
const K2: u64 = 0xFEDCBA9876543210;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Codec {
    Des64,
    Des128,
    Rle,
}

fn encoder(c: Codec) -> Box<dyn Filter> {
    match c {
        Codec::Des64 => Box::new(CipherEncoder::des64(K64)),
        Codec::Des128 => Box::new(CipherEncoder::des128(K1, K2)),
        Codec::Rle => Box::new(RleEncoder::new()),
    }
}

fn decoder(c: Codec) -> Box<dyn Filter> {
    match c {
        Codec::Des64 => Box::new(CipherDecoder::des64(K64)),
        Codec::Des128 => Box::new(CipherDecoder::des128(K1, K2)),
        Codec::Rle => Box::new(RleDecoder::new()),
    }
}

fn arb_stack() -> impl Strategy<Value = Vec<Codec>> {
    prop::collection::vec(prop::sample::select(vec![Codec::Des64, Codec::Des128, Codec::Rle]), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode through any stack, decode through the mirrored stack: clean
    /// plaintext, payload preserved, for arbitrary payloads.
    #[test]
    fn mirrored_stacks_are_identity(stack in arb_stack(), payload in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut send = FilterChain::new();
        for (i, &c) in stack.iter().enumerate() {
            send.push_back(&format!("E{i}"), encoder(c)).unwrap();
        }
        let mut recv = FilterChain::new();
        for (i, &c) in stack.iter().enumerate().rev() {
            recv.push_back(&format!("D{i}"), decoder(c)).unwrap();
        }
        let pkt = Packet::new(1, 9, payload.clone());
        let wire = send.push(pkt).pop().expect("one packet out");
        prop_assert_eq!(wire.tags.len(), stack.len());
        let out = recv.push(wire).pop().expect("one packet out");
        prop_assert!(out.is_clean_plaintext(), "stack {:?}", stack);
        prop_assert_eq!(out.payload, payload);
    }

    /// Packets buffered while the chain is blocked all come out on
    /// unblock, in order, regardless of recomposition while blocked.
    #[test]
    fn block_buffer_drain_preserves_everything(
        n in 1usize..30,
        swap in any::<bool>(),
        payload in prop::collection::vec(any::<u8>(), 1..100),
    ) {
        let mut send = FilterChain::new();
        send.push_back("E", encoder(Codec::Des64)).unwrap();
        let mut recv = FilterChain::new();
        recv.push_back("D", decoder(Codec::Des64)).unwrap();
        recv.block();
        for seq in 0..n as u64 {
            let wire = send.push(Packet::new(1, seq, payload.clone())).pop().unwrap();
            prop_assert!(recv.push(wire).is_empty());
        }
        prop_assert_eq!(recv.pending_len(), n);
        if swap {
            // Swap to the 128/64-compatible decoder mid-block: the drained
            // DES-64 packets must still decode.
            recv.replace("D", "D2", Box::new(CipherDecoder::des128_compat(K1, K2, K64))).unwrap();
        }
        let out = recv.unblock();
        prop_assert_eq!(out.len(), n);
        for (ix, pkt) in out.iter().enumerate() {
            prop_assert_eq!(pkt.seq, ix as u64, "order preserved");
            prop_assert!(pkt.is_clean_plaintext());
            prop_assert_eq!(&pkt.payload, &payload);
        }
    }

    /// Bypass is lossless: mismatched decoders forward arbitrary tagged
    /// packets byte-identically.
    #[test]
    fn bypass_never_modifies(payload in prop::collection::vec(any::<u8>(), 0..200), tag in any::<u16>()) {
        // Avoid the tags the decoder actually accepts.
        prop_assume!(tag != sada_meta::tags::DES64);
        let mut d = CipherDecoder::des64(K64);
        let mut pkt = Packet::new(0, 3, payload);
        pkt.tags.push(tag);
        let out = d.process(pkt.clone()).pop().unwrap();
        prop_assert_eq!(out, pkt);
    }
}
