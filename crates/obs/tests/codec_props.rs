//! Property tests for the JSONL codec (encode→decode == identity) and the
//! bounded ring sink.

use proptest::prelude::*;

use sada_expr::{CompId, Config};
use sada_obs::{
    decode_event, encode_event, AgentStateTag, AuditEvent, Event, FleetEvent, ManagerPhaseTag,
    NetEvent, ObligationKey, Payload, PlanEvent, ProtoEvent, RingSink, SegmentEdge, SimTime, Sink,
    TemporalEvent,
};

fn arb_agent_state() -> impl Strategy<Value = AgentStateTag> {
    prop::sample::select(vec![
        AgentStateTag::Running,
        AgentStateTag::Resetting,
        AgentStateTag::Safe,
        AgentStateTag::Adapted,
        AgentStateTag::Resuming,
        AgentStateTag::RollingBack,
        AgentStateTag::FailedReset,
    ])
}

fn arb_manager_phase() -> impl Strategy<Value = ManagerPhaseTag> {
    prop::sample::select(vec![
        ManagerPhaseTag::Running,
        ManagerPhaseTag::Adapting,
        ManagerPhaseTag::Resuming,
        ManagerPhaseTag::RollingBack,
        ManagerPhaseTag::GaveUp,
    ])
}

fn arb_opt_step() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), 0u64..100).prop_map(|(some, v)| some.then_some(v))
}

fn arb_key() -> impl Strategy<Value = ObligationKey> {
    (0usize..64, any::<bool>()).prop_map(|(ix, start)| ObligationKey {
        comp: CompId::from_index(ix),
        edge: if start { SegmentEdge::Start } else { SegmentEdge::End },
    })
}

fn arb_label() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        String::new(),
        "E1 -> E2".to_string(),
        "swap \"quoted\" label".to_string(),
        "tabs\tand\nnewlines\r".to_string(),
        "unicode → übergang".to_string(),
        "back\\slash".to_string(),
        "\u{1}control".to_string(),
    ])
}

fn arb_config() -> impl Strategy<Value = Config> {
    (1usize..80, prop::collection::vec(0usize..80, 0..8)).prop_map(|(width, bits)| {
        let mut cfg = Config::empty(width);
        for b in bits {
            if b < width {
                cfg.insert(CompId::from_index(b));
            }
        }
        cfg
    })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    let net = prop_oneof![
        (0u32..8, 0u32..8).prop_map(|(from, to)| NetEvent::Sent { from, to }),
        (0u32..8, 0u32..8).prop_map(|(from, to)| NetEvent::Delivered { from, to }),
        (0u32..8, 0u32..8).prop_map(|(from, to)| NetEvent::Dropped { from, to }),
        any::<u64>().prop_map(|tag| NetEvent::TimerFired { tag }),
        Just(NetEvent::Crashed),
        Just(NetEvent::Restarted),
    ];
    let proto = prop_oneof![
        (arb_agent_state(), arb_agent_state(), arb_opt_step())
            .prop_map(|(from, to, step)| ProtoEvent::AgentState { from, to, step }),
        (arb_manager_phase(), arb_manager_phase(), arb_opt_step())
            .prop_map(|(from, to, step)| ProtoEvent::ManagerPhase { from, to, step }),
        (0u64..100, any::<bool>(), 0u32..8).prop_map(|(step, solo, participants)| {
            ProtoEvent::StepStarted { step, solo, participants }
        }),
        (0u64..100).prop_map(|step| ProtoEvent::StepCommitted { step }),
        (arb_manager_phase(), arb_opt_step(), 0u32..10)
            .prop_map(|(phase, step, retries)| ProtoEvent::TimeoutFired { phase, step, retries }),
        (0u64..100, 0u32..8).prop_map(|(step, resends)| ProtoEvent::RetrySent { step, resends }),
        (0u64..100).prop_map(|step| ProtoEvent::RollbackIssued { step }),
        (0u32..8, arb_opt_step()).prop_map(|(agent, last_completed)| ProtoEvent::RejoinReceived {
            agent,
            last_completed
        }),
        (any::<bool>(), any::<bool>(), 0u64..10).prop_map(|(success, gave_up, steps_committed)| {
            ProtoEvent::OutcomeReached { success, gave_up, steps_committed }
        }),
    ];
    let audit = prop_oneof![
        (any::<u64>(), 0usize..64)
            .prop_map(|(cid, c)| AuditEvent::SegmentStart { cid, comp: CompId::from_index(c) }),
        (any::<u64>(), 0usize..64)
            .prop_map(|(cid, c)| AuditEvent::SegmentEnd { cid, comp: CompId::from_index(c) }),
        (any::<u64>(), 0usize..64)
            .prop_map(|(cid, c)| AuditEvent::SegmentLost { cid, comp: CompId::from_index(c) }),
        (arb_label(), prop::collection::vec(0usize..64, 0..5)).prop_map(|(label, comps)| {
            AuditEvent::InAction {
                label,
                comps: comps.into_iter().map(CompId::from_index).collect(),
            }
        }),
        arb_config().prop_map(|config| AuditEvent::ConfigSnapshot { config }),
    ];
    let temporal = prop_oneof![
        (arb_key(), any::<u64>())
            .prop_map(|(key, cid)| TemporalEvent::ObligationOpened { key, cid }),
        (arb_key(), any::<u64>())
            .prop_map(|(key, cid)| TemporalEvent::ObligationDischarged { key, cid }),
        any::<u64>().prop_map(|index| TemporalEvent::SafePoint { index }),
    ];
    let plan =
        prop_oneof![
            (1u32..5, 1u32..10, 0u64..10_000)
                .prop_map(|(rank, steps, cost)| PlanEvent::PathSelected { rank, steps, cost }),
            any::<bool>()
                .prop_map(|returning_to_source| PlanEvent::PathsExhausted { returning_to_source }),
        ];
    let fleet = prop_oneof![
        (0u64..100, 0u32..32)
            .prop_map(|(session, resources)| FleetEvent::SessionSubmitted { session, resources }),
        (0u64..100, any::<u64>())
            .prop_map(|(session, queued_for)| FleetEvent::SessionAdmitted { session, queued_for }),
        (0u64..100, 0u32..16)
            .prop_map(|(session, position)| FleetEvent::SessionQueued { session, position }),
        (0u64..100).prop_map(|session| FleetEvent::SessionCancelled { session }),
        (0u64..100, any::<bool>(), any::<bool>()).prop_map(|(session, success, gave_up)| {
            FleetEvent::SessionDone { session, success, gave_up }
        }),
        (0u32..64, 0u32..64)
            .prop_map(|(active, queued)| FleetEvent::ControlRestored { active, queued }),
        (0u64..100).prop_map(|session| FleetEvent::PlanCacheHit { session }),
        (0u64..100).prop_map(|session| FleetEvent::PlanCacheMiss { session }),
        (0u64..100).prop_map(|session| FleetEvent::PlanCacheEvicted { session }),
        (0u32..16, 0u32..16, any::<u64>()).prop_map(|(src, dst, seq)| FleetEvent::FabricDropped {
            src,
            dst,
            seq
        }),
        (0u32..16, 0u32..16, any::<u64>())
            .prop_map(|(src, dst, seq)| FleetEvent::FabricDuplicated { src, dst, seq }),
        (0u32..16, 0u32..16, any::<u64>(), 0u32..64).prop_map(|(src, dst, seq, quanta)| {
            FleetEvent::FabricDelayed { src, dst, seq, quanta }
        }),
        (0u64..100, 0u32..16, 1u32..16).prop_map(|(session, region, attempt)| {
            FleetEvent::FabricRetransmit { session, region, attempt }
        }),
        (0u64..100, 0u32..16, any::<u64>()).prop_map(|(session, region, epoch)| {
            FleetEvent::LeaseReclaimed { session, region, epoch }
        }),
        (0u64..100, 0u32..16, 1u32..16).prop_map(|(session, region, attempts)| {
            FleetEvent::StraddlerAbandoned { session, region, attempts }
        }),
    ];
    prop_oneof![
        net.prop_map(Payload::Net),
        proto.prop_map(Payload::Proto),
        audit.prop_map(Payload::Audit),
        temporal.prop_map(Payload::Temporal),
        plan.prop_map(Payload::Plan),
        fleet.prop_map(Payload::Fleet),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (any::<u64>(), any::<u32>(), 0u64..10, 0u32..5, arb_payload()).prop_map(
        |(at, actor, session, shard, payload)| Event {
            at: SimTime::from_micros(at),
            actor,
            session,
            shard,
            payload,
        },
    )
}

proptest! {
    #[test]
    fn encode_decode_is_identity(ev in arb_event()) {
        let line = encode_event(&ev);
        prop_assert!(!line.contains('\n'), "one line per event: {line:?}");
        let back = match decode_event(&line) {
            Ok(back) => back,
            Err(e) => return Err(TestCaseError::fail(format!("{e}\nline: {line}"))),
        };
        prop_assert_eq!(back, ev, "line: {}", line);
    }

    #[test]
    fn ring_sink_is_bounded_and_keeps_the_newest(
        cap in 0usize..32,
        events in prop::collection::vec(arb_event(), 0..100),
    ) {
        let mut ring = RingSink::new(cap);
        for ev in &events {
            ring.accept(ev);
        }
        prop_assert!(ring.len() <= cap, "len {} exceeds capacity {}", ring.len(), cap);
        prop_assert_eq!(ring.len(), events.len().min(cap));
        prop_assert_eq!(ring.total_seen(), events.len() as u64);
        // The retained suffix equals the input's tail, in order.
        let tail = &events[events.len() - events.len().min(cap)..];
        prop_assert_eq!(ring.events(), tail.to_vec());
    }
}
