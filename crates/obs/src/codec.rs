//! Replayable JSONL trace codec and the [`JsonlSink`] that records it.
//!
//! Each event encodes to exactly one JSON object per line with a stable
//! `kind` discriminator, so traces are diffable with line tools and
//! replayable with [`decode_lines`]. The encoder/decoder are hand-rolled
//! over the small value subset actually used (u64 numbers, strings, bools,
//! arrays of u64) — the build environment vendors no serde.
//!
//! The codec is a bijection on the event taxonomy:
//! `decode_event(encode_event(e)) == e` (property-tested).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sada_expr::{CompId, Config};
use sada_model::AuditEvent;

use crate::bus::Sink;
use crate::event::{
    AgentStateTag, Event, FleetEvent, ManagerPhaseTag, NetEvent, Payload, PlanEvent, ProtoEvent,
    TemporalEvent,
};
use crate::key::ObligationKey;
use crate::time::SimTime;

/// Records every event as one JSONL line.
///
/// Lines accumulate in one contiguous newline-terminated buffer, so
/// recording an event is an append into an amortized allocation rather
/// than a fresh `String` per event. [`JsonlSink::streaming`] instead
/// writes each line through a `BufWriter` and retains nothing in memory —
/// the form a 100k-agent run uses to spill its trace to disk.
#[derive(Default)]
pub struct JsonlSink {
    /// The whole in-memory trace (streaming mode reuses it as scratch for
    /// exactly one line at a time).
    buf: String,
    count: usize,
    out: Option<std::io::BufWriter<Box<dyn std::io::Write>>>,
    io_error: Option<std::io::Error>,
}

impl JsonlSink {
    /// An empty in-memory trace.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// A sink that writes each line through a `BufWriter` over `w` instead
    /// of retaining the trace in memory ([`JsonlSink::dump`] returns `""`).
    /// Call [`JsonlSink::flush`] at end of run to drain the buffer and
    /// surface the first I/O error, if any.
    pub fn streaming(w: impl std::io::Write + 'static) -> Self {
        JsonlSink {
            buf: String::new(),
            count: 0,
            out: Some(std::io::BufWriter::new(Box::new(w))),
            io_error: None,
        }
    }

    /// The recorded lines, in emission order (empty in streaming mode).
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.buf.lines()
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The whole trace as one newline-terminated string (a `.jsonl` file).
    pub fn dump(&self) -> String {
        match self.out {
            None => self.buf.clone(),
            Some(_) => String::new(),
        }
    }

    /// Flushes the underlying writer (no-op for an in-memory sink) and
    /// reports the first I/O error encountered since the last call.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if let Some(err) = self.io_error.take() {
            return Err(err);
        }
        match self.out.as_mut() {
            Some(w) => std::io::Write::flush(w),
            None => Ok(()),
        }
    }

    fn record(&mut self, ev: &Event) {
        encode_event_into(&mut self.buf, ev);
        self.buf.push('\n');
        self.count += 1;
        if let Some(w) = self.out.as_mut() {
            if let Err(err) = std::io::Write::write_all(w, self.buf.as_bytes()) {
                self.io_error.get_or_insert(err);
            }
            self.buf.clear();
        }
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.count)
            .field("streaming", &self.out.is_some())
            .finish()
    }
}

impl Sink for JsonlSink {
    fn accept(&mut self, ev: &Event) {
        self.record(ev);
    }

    fn accept_batch(&mut self, evs: &[Event]) {
        if self.out.is_none() {
            // ~96 bytes/line is the codec's own sizing hint; one reserve
            // up front keeps the batch append from re-growing mid-loop.
            self.buf.reserve(evs.len() * 96);
        }
        for ev in evs {
            self.record(ev);
        }
    }
}

fn esc(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Obj<'a> {
    buf: &'a mut String,
}

impl<'a> Obj<'a> {
    fn new(
        buf: &'a mut String,
        at: SimTime,
        actor: u32,
        session: u64,
        shard: u32,
        kind: &str,
    ) -> Self {
        let _ = write!(buf, "{{\"at\":{},\"actor\":{}", at.as_micros(), actor);
        // Session 0 is elided so single-adaptation traces (including the
        // pinned golden trace) keep their pre-fleet byte-for-byte form.
        if session != 0 {
            let _ = write!(buf, ",\"session\":{session}");
        }
        // Shard 0 is elided the same way: unsharded traces keep their
        // pre-shard byte-for-byte form.
        if shard != 0 {
            let _ = write!(buf, ",\"shard\":{shard}");
        }
        let _ = write!(buf, ",\"kind\":\"{kind}\"");
        Obj { buf }
    }

    fn num(self, key: &str, v: u64) -> Self {
        let _ = write!(self.buf, ",\"{key}\":{v}");
        self
    }

    fn opt_num(self, key: &str, v: Option<u64>) -> Self {
        match v {
            Some(v) => self.num(key, v),
            None => self,
        }
    }

    fn boolean(self, key: &str, v: bool) -> Self {
        let _ = write!(self.buf, ",\"{key}\":{v}");
        self
    }

    fn string(self, key: &str, v: &str) -> Self {
        let _ = write!(self.buf, ",\"{key}\":");
        esc(self.buf, v);
        self
    }

    fn nums(self, key: &str, vs: impl Iterator<Item = u64>) -> Self {
        let _ = write!(self.buf, ",\"{key}\":[");
        for (i, v) in vs.enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    fn finish(self) {
        self.buf.push('}');
    }
}

/// Encodes one event as a single JSON line (no trailing newline).
///
/// Convenience wrapper over [`encode_event_into`] that allocates a fresh
/// `String`; hot paths (fingerprinting, sinks) reuse a buffer instead.
pub fn encode_event(ev: &Event) -> String {
    let mut out = String::with_capacity(96);
    encode_event_into(&mut out, ev);
    out
}

/// Appends one event, encoded as a single JSON line (no trailing newline),
/// to `out`. The caller owns the buffer, so a loop over many events can
/// clear and reuse one allocation instead of building a `String` per event.
pub fn encode_event_into(out: &mut String, ev: &Event) {
    fn o<'b>(out: &'b mut String, ev: &Event, kind: &str) -> Obj<'b> {
        Obj::new(out, ev.at, ev.actor, ev.session, ev.shard, kind)
    }
    match &ev.payload {
        Payload::Net(n) => match n {
            NetEvent::Sent { from, to } => o(out, ev, "net.sent")
                .num("from", u64::from(*from))
                .num("to", u64::from(*to))
                .finish(),
            NetEvent::Delivered { from, to } => o(out, ev, "net.delivered")
                .num("from", u64::from(*from))
                .num("to", u64::from(*to))
                .finish(),
            NetEvent::Dropped { from, to } => o(out, ev, "net.dropped")
                .num("from", u64::from(*from))
                .num("to", u64::from(*to))
                .finish(),
            NetEvent::TimerFired { tag } => o(out, ev, "net.timer").num("tag", *tag).finish(),
            NetEvent::Crashed => o(out, ev, "net.crashed").finish(),
            NetEvent::Restarted => o(out, ev, "net.restarted").finish(),
        },
        Payload::Proto(p) => match p {
            ProtoEvent::AgentState { from, to, step } => o(out, ev, "proto.agent")
                .string("from", from.as_str())
                .string("to", to.as_str())
                .opt_num("step", *step)
                .finish(),
            ProtoEvent::ManagerPhase { from, to, step } => o(out, ev, "proto.manager")
                .string("from", from.as_str())
                .string("to", to.as_str())
                .opt_num("step", *step)
                .finish(),
            ProtoEvent::StepStarted { step, solo, participants } => {
                o(out, ev, "proto.step_started")
                    .num("step", *step)
                    .boolean("solo", *solo)
                    .num("participants", u64::from(*participants))
                    .finish()
            }
            ProtoEvent::StepCommitted { step } => {
                o(out, ev, "proto.step_committed").num("step", *step).finish()
            }
            ProtoEvent::TimeoutFired { phase, step, retries } => o(out, ev, "proto.timeout")
                .string("phase", phase.as_str())
                .opt_num("step", *step)
                .num("retries", u64::from(*retries))
                .finish(),
            ProtoEvent::RetrySent { step, resends } => o(out, ev, "proto.retry")
                .num("step", *step)
                .num("resends", u64::from(*resends))
                .finish(),
            ProtoEvent::RollbackIssued { step } => {
                o(out, ev, "proto.rollback").num("step", *step).finish()
            }
            ProtoEvent::RejoinReceived { agent, last_completed } => o(out, ev, "proto.rejoin")
                .num("agent", u64::from(*agent))
                .opt_num("last", *last_completed)
                .finish(),
            ProtoEvent::OutcomeReached { success, gave_up, steps_committed } => {
                o(out, ev, "proto.outcome")
                    .boolean("success", *success)
                    .boolean("gave_up", *gave_up)
                    .num("steps", *steps_committed)
                    .finish()
            }
            ProtoEvent::JournalAppended { seq } => {
                o(out, ev, "proto.journal").num("seq", *seq).finish()
            }
            ProtoEvent::ManagerRestored { records, phase, step } => {
                o(out, ev, "proto.manager_restored")
                    .num("records", *records)
                    .string("phase", phase.as_str())
                    .opt_num("step", *step)
                    .finish()
            }
            ProtoEvent::StateQueried { agent } => {
                o(out, ev, "proto.state_queried").num("agent", u64::from(*agent)).finish()
            }
            ProtoEvent::StateReported { agent, engaged, adapted, failed, last_completed } => {
                o(out, ev, "proto.state_reported")
                    .num("agent", u64::from(*agent))
                    .opt_num("engaged", *engaged)
                    .boolean("adapted", *adapted)
                    .boolean("failed", *failed)
                    .opt_num("last", *last_completed)
                    .finish()
            }
        },
        Payload::Audit(a) => match a {
            AuditEvent::SegmentStart { cid, comp } => o(out, ev, "audit.seg_start")
                .num("cid", *cid)
                .num("comp", comp.index() as u64)
                .finish(),
            AuditEvent::SegmentEnd { cid, comp } => o(out, ev, "audit.seg_end")
                .num("cid", *cid)
                .num("comp", comp.index() as u64)
                .finish(),
            AuditEvent::SegmentLost { cid, comp } => o(out, ev, "audit.seg_lost")
                .num("cid", *cid)
                .num("comp", comp.index() as u64)
                .finish(),
            AuditEvent::InAction { label, comps } => o(out, ev, "audit.in_action")
                .string("label", label)
                .nums("comps", comps.iter().map(|c| c.index() as u64))
                .finish(),
            AuditEvent::ConfigSnapshot { config } => {
                o(out, ev, "audit.config").string("config", &config.to_bit_string()).finish()
            }
        },
        Payload::Temporal(t) => match t {
            TemporalEvent::ObligationOpened { key, cid } => o(out, ev, "temporal.opened")
                .string("key", &key.to_string())
                .num("cid", *cid)
                .finish(),
            TemporalEvent::ObligationDischarged { key, cid } => o(out, ev, "temporal.discharged")
                .string("key", &key.to_string())
                .num("cid", *cid)
                .finish(),
            TemporalEvent::SafePoint { index } => {
                o(out, ev, "temporal.safe_point").num("index", *index).finish()
            }
        },
        Payload::Plan(p) => match p {
            PlanEvent::PathSelected { rank, steps, cost } => o(out, ev, "plan.path")
                .num("rank", u64::from(*rank))
                .num("steps", u64::from(*steps))
                .num("cost", *cost)
                .finish(),
            PlanEvent::PathsExhausted { returning_to_source } => {
                o(out, ev, "plan.exhausted").boolean("to_source", *returning_to_source).finish()
            }
        },
        Payload::Fleet(fl) => match fl {
            FleetEvent::SessionSubmitted { session, resources } => o(out, ev, "fleet.submitted")
                .num("id", *session)
                .num("resources", u64::from(*resources))
                .finish(),
            FleetEvent::SessionAdmitted { session, queued_for } => o(out, ev, "fleet.admitted")
                .num("id", *session)
                .num("queued_for", *queued_for)
                .finish(),
            FleetEvent::SessionQueued { session, position } => o(out, ev, "fleet.queued")
                .num("id", *session)
                .num("position", u64::from(*position))
                .finish(),
            FleetEvent::SessionCancelled { session } => {
                o(out, ev, "fleet.cancelled").num("id", *session).finish()
            }
            FleetEvent::SessionDone { session, success, gave_up } => o(out, ev, "fleet.done")
                .num("id", *session)
                .boolean("success", *success)
                .boolean("gave_up", *gave_up)
                .finish(),
            FleetEvent::ControlRestored { active, queued } => o(out, ev, "fleet.restored")
                .num("active", u64::from(*active))
                .num("queued", u64::from(*queued))
                .finish(),
            FleetEvent::PlanCacheHit { session } => {
                o(out, ev, "fleet.cache_hit").num("id", *session).finish()
            }
            FleetEvent::PlanCacheMiss { session } => {
                o(out, ev, "fleet.cache_miss").num("id", *session).finish()
            }
            FleetEvent::PlanCacheEvicted { session } => {
                o(out, ev, "fleet.cache_evicted").num("id", *session).finish()
            }
            FleetEvent::SessionShed { session, waited_us, retry_after_us } => {
                o(out, ev, "fleet.shed")
                    .num("id", *session)
                    .num("waited_us", *waited_us)
                    .num("retry_after_us", *retry_after_us)
                    .finish()
            }
            FleetEvent::SessionRejected { session, agent } => o(out, ev, "fleet.rejected")
                .num("id", *session)
                .num("agent", u64::from(*agent))
                .finish(),
            FleetEvent::BreakerOpened { agent, cooldown_us } => o(out, ev, "fleet.breaker_open")
                .num("agent", u64::from(*agent))
                .num("cooldown_us", *cooldown_us)
                .finish(),
            FleetEvent::BreakerProbed { agent } => {
                o(out, ev, "fleet.breaker_probe").num("agent", u64::from(*agent)).finish()
            }
            FleetEvent::BreakerClosed { agent } => {
                o(out, ev, "fleet.breaker_close").num("agent", u64::from(*agent)).finish()
            }
            FleetEvent::ScopeBreakerOpened { scope, cooldown_us } => {
                o(out, ev, "fleet.scope_breaker_open")
                    .num("scope", *scope)
                    .num("cooldown_us", *cooldown_us)
                    .finish()
            }
            FleetEvent::ScopeBreakerProbed { scope } => {
                o(out, ev, "fleet.scope_breaker_probe").num("scope", *scope).finish()
            }
            FleetEvent::ScopeBreakerClosed { scope } => {
                o(out, ev, "fleet.scope_breaker_close").num("scope", *scope).finish()
            }
            FleetEvent::ScopeRejected { session, scope } => {
                o(out, ev, "fleet.scope_rejected").num("id", *session).num("scope", *scope).finish()
            }
            FleetEvent::TimeoutAdapted { agent, srtt_us, rto_us } => o(out, ev, "fleet.rto")
                .num("agent", u64::from(*agent))
                .num("srtt_us", *srtt_us)
                .num("rto_us", *rto_us)
                .finish(),
            FleetEvent::FabricDropped { src, dst, seq } => o(out, ev, "fleet.fabric_drop")
                .num("src", u64::from(*src))
                .num("dst", u64::from(*dst))
                .num("seq", *seq)
                .finish(),
            FleetEvent::FabricDuplicated { src, dst, seq } => o(out, ev, "fleet.fabric_dup")
                .num("src", u64::from(*src))
                .num("dst", u64::from(*dst))
                .num("seq", *seq)
                .finish(),
            FleetEvent::FabricDelayed { src, dst, seq, quanta } => o(out, ev, "fleet.fabric_delay")
                .num("src", u64::from(*src))
                .num("dst", u64::from(*dst))
                .num("seq", *seq)
                .num("quanta", u64::from(*quanta))
                .finish(),
            FleetEvent::FabricRetransmit { session, region, attempt } => {
                o(out, ev, "fleet.fabric_retx")
                    .num("id", *session)
                    .num("region", u64::from(*region))
                    .num("attempt", u64::from(*attempt))
                    .finish()
            }
            FleetEvent::LeaseReclaimed { session, region, epoch } => {
                o(out, ev, "fleet.lease_reclaim")
                    .num("id", *session)
                    .num("region", u64::from(*region))
                    .num("epoch", *epoch)
                    .finish()
            }
            FleetEvent::StraddlerAbandoned { session, region, attempts } => {
                o(out, ev, "fleet.straddler_abandoned")
                    .num("id", *session)
                    .num("region", u64::from(*region))
                    .num("attempts", u64::from(*attempts))
                    .finish()
            }
            FleetEvent::DomainTagged { domain, objective } => o(out, ev, "fleet.domain")
                .num("domain", u64::from(*domain))
                .num("objective", u64::from(*objective))
                .finish(),
            FleetEvent::LeaseExpired { session, region } => o(out, ev, "fleet.lease_expired")
                .num("id", *session)
                .num("region", u64::from(*region))
                .finish(),
        },
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Str(String),
    Bool(bool),
    Arr(Vec<u64>),
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { s: s.as_bytes(), i: 0 }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t') {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.s.len() && self.s[self.i] == b {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.s.get(self.i).ok_or("unterminated string")?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.s.get(self.i..self.i + 4).ok_or("short \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through.
                _ => {
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.s.len() && self.s[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..end]).map_err(|_| "invalid utf-8")?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn parse_num(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.s[start..self.i])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn parse_value(&mut self) -> Result<Val, String> {
        match self.peek().ok_or("unexpected end of line")? {
            b'"' => Ok(Val::Str(self.parse_string()?)),
            b't' => {
                if self.s[self.i..].starts_with(b"true") {
                    self.i += 4;
                    Ok(Val::Bool(true))
                } else {
                    Err("bad literal".into())
                }
            }
            b'f' => {
                if self.s[self.i..].starts_with(b"false") {
                    self.i += 5;
                    Ok(Val::Bool(false))
                } else {
                    Err("bad literal".into())
                }
            }
            b'[' => {
                self.expect(b'[')?;
                let mut arr = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Val::Arr(arr));
                }
                loop {
                    arr.push(self.parse_num()?);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Val::Arr(arr));
                        }
                        _ => return Err("bad array".into()),
                    }
                }
            }
            b if b.is_ascii_digit() => Ok(Val::Num(self.parse_num()?)),
            other => Err(format!("unexpected byte {:?}", other as char)),
        }
    }

    fn parse_object(&mut self) -> Result<BTreeMap<String, Val>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(map);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let val = self.parse_value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(map);
                }
                _ => return Err("bad object".into()),
            }
        }
    }
}

struct Fields {
    map: BTreeMap<String, Val>,
}

impl Fields {
    fn num(&self, key: &str) -> Result<u64, String> {
        match self.map.get(key) {
            Some(Val::Num(n)) => Ok(*n),
            _ => Err(format!("missing numeric field {key:?}")),
        }
    }

    fn opt_num(&self, key: &str) -> Result<Option<u64>, String> {
        match self.map.get(key) {
            None => Ok(None),
            Some(Val::Num(n)) => Ok(Some(*n)),
            _ => Err(format!("field {key:?} is not a number")),
        }
    }

    fn string(&self, key: &str) -> Result<&str, String> {
        match self.map.get(key) {
            Some(Val::Str(s)) => Ok(s),
            _ => Err(format!("missing string field {key:?}")),
        }
    }

    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.map.get(key) {
            Some(Val::Bool(b)) => Ok(*b),
            _ => Err(format!("missing bool field {key:?}")),
        }
    }

    fn arr(&self, key: &str) -> Result<&[u64], String> {
        match self.map.get(key) {
            Some(Val::Arr(a)) => Ok(a),
            _ => Err(format!("missing array field {key:?}")),
        }
    }

    fn comp(&self, key: &str) -> Result<CompId, String> {
        Ok(CompId::from_index(self.num(key)? as usize))
    }

    fn agent_state(&self, key: &str) -> Result<AgentStateTag, String> {
        let s = self.string(key)?;
        AgentStateTag::parse(s).ok_or_else(|| format!("unknown agent state {s:?}"))
    }

    fn manager_phase(&self, key: &str) -> Result<ManagerPhaseTag, String> {
        let s = self.string(key)?;
        ManagerPhaseTag::parse(s).ok_or_else(|| format!("unknown manager phase {s:?}"))
    }

    fn key(&self, key: &str) -> Result<ObligationKey, String> {
        self.string(key)?.parse()
    }
}

fn config_from_bit_string(bits: &str) -> Result<Config, String> {
    let mut cfg = Config::empty(bits.len());
    let width = bits.len();
    for (pos, ch) in bits.chars().enumerate() {
        match ch {
            '1' => cfg.insert(CompId::from_index(width - 1 - pos)),
            '0' => {}
            other => return Err(format!("invalid bit {other:?} in config")),
        }
    }
    Ok(cfg)
}

/// Decodes one JSONL line back into an [`Event`].
pub fn decode_event(line: &str) -> Result<Event, String> {
    let map = Parser::new(line).parse_object()?;
    let f = Fields { map };
    let at = SimTime::from_micros(f.num("at")?);
    let actor = f.num("actor")? as u32;
    let kind = f.string("kind")?;
    let payload = match kind {
        "net.sent" => {
            Payload::Net(NetEvent::Sent { from: f.num("from")? as u32, to: f.num("to")? as u32 })
        }
        "net.delivered" => Payload::Net(NetEvent::Delivered {
            from: f.num("from")? as u32,
            to: f.num("to")? as u32,
        }),
        "net.dropped" => {
            Payload::Net(NetEvent::Dropped { from: f.num("from")? as u32, to: f.num("to")? as u32 })
        }
        "net.timer" => Payload::Net(NetEvent::TimerFired { tag: f.num("tag")? }),
        "net.crashed" => Payload::Net(NetEvent::Crashed),
        "net.restarted" => Payload::Net(NetEvent::Restarted),
        "proto.agent" => Payload::Proto(ProtoEvent::AgentState {
            from: f.agent_state("from")?,
            to: f.agent_state("to")?,
            step: f.opt_num("step")?,
        }),
        "proto.manager" => Payload::Proto(ProtoEvent::ManagerPhase {
            from: f.manager_phase("from")?,
            to: f.manager_phase("to")?,
            step: f.opt_num("step")?,
        }),
        "proto.step_started" => Payload::Proto(ProtoEvent::StepStarted {
            step: f.num("step")?,
            solo: f.boolean("solo")?,
            participants: f.num("participants")? as u32,
        }),
        "proto.step_committed" => {
            Payload::Proto(ProtoEvent::StepCommitted { step: f.num("step")? })
        }
        "proto.timeout" => Payload::Proto(ProtoEvent::TimeoutFired {
            phase: f.manager_phase("phase")?,
            step: f.opt_num("step")?,
            retries: f.num("retries")? as u32,
        }),
        "proto.retry" => Payload::Proto(ProtoEvent::RetrySent {
            step: f.num("step")?,
            resends: f.num("resends")? as u32,
        }),
        "proto.rollback" => Payload::Proto(ProtoEvent::RollbackIssued { step: f.num("step")? }),
        "proto.rejoin" => Payload::Proto(ProtoEvent::RejoinReceived {
            agent: f.num("agent")? as u32,
            last_completed: f.opt_num("last")?,
        }),
        "proto.outcome" => Payload::Proto(ProtoEvent::OutcomeReached {
            success: f.boolean("success")?,
            gave_up: f.boolean("gave_up")?,
            steps_committed: f.num("steps")?,
        }),
        "proto.journal" => Payload::Proto(ProtoEvent::JournalAppended { seq: f.num("seq")? }),
        "proto.manager_restored" => Payload::Proto(ProtoEvent::ManagerRestored {
            records: f.num("records")?,
            phase: f.manager_phase("phase")?,
            step: f.opt_num("step")?,
        }),
        "proto.state_queried" => {
            Payload::Proto(ProtoEvent::StateQueried { agent: f.num("agent")? as u32 })
        }
        "proto.state_reported" => Payload::Proto(ProtoEvent::StateReported {
            agent: f.num("agent")? as u32,
            engaged: f.opt_num("engaged")?,
            adapted: f.boolean("adapted")?,
            failed: f.boolean("failed")?,
            last_completed: f.opt_num("last")?,
        }),
        "audit.seg_start" => {
            Payload::Audit(AuditEvent::SegmentStart { cid: f.num("cid")?, comp: f.comp("comp")? })
        }
        "audit.seg_end" => {
            Payload::Audit(AuditEvent::SegmentEnd { cid: f.num("cid")?, comp: f.comp("comp")? })
        }
        "audit.seg_lost" => {
            Payload::Audit(AuditEvent::SegmentLost { cid: f.num("cid")?, comp: f.comp("comp")? })
        }
        "audit.in_action" => Payload::Audit(AuditEvent::InAction {
            label: f.string("label")?.to_string(),
            comps: f.arr("comps")?.iter().map(|&c| CompId::from_index(c as usize)).collect(),
        }),
        "audit.config" => Payload::Audit(AuditEvent::ConfigSnapshot {
            config: config_from_bit_string(f.string("config")?)?,
        }),
        "temporal.opened" => Payload::Temporal(TemporalEvent::ObligationOpened {
            key: f.key("key")?,
            cid: f.num("cid")?,
        }),
        "temporal.discharged" => Payload::Temporal(TemporalEvent::ObligationDischarged {
            key: f.key("key")?,
            cid: f.num("cid")?,
        }),
        "temporal.safe_point" => {
            Payload::Temporal(TemporalEvent::SafePoint { index: f.num("index")? })
        }
        "plan.path" => Payload::Plan(PlanEvent::PathSelected {
            rank: f.num("rank")? as u32,
            steps: f.num("steps")? as u32,
            cost: f.num("cost")?,
        }),
        "plan.exhausted" => Payload::Plan(PlanEvent::PathsExhausted {
            returning_to_source: f.boolean("to_source")?,
        }),
        "fleet.submitted" => Payload::Fleet(FleetEvent::SessionSubmitted {
            session: f.num("id")?,
            resources: f.num("resources")? as u32,
        }),
        "fleet.admitted" => Payload::Fleet(FleetEvent::SessionAdmitted {
            session: f.num("id")?,
            queued_for: f.num("queued_for")?,
        }),
        "fleet.queued" => Payload::Fleet(FleetEvent::SessionQueued {
            session: f.num("id")?,
            position: f.num("position")? as u32,
        }),
        "fleet.cancelled" => Payload::Fleet(FleetEvent::SessionCancelled { session: f.num("id")? }),
        "fleet.done" => Payload::Fleet(FleetEvent::SessionDone {
            session: f.num("id")?,
            success: f.boolean("success")?,
            gave_up: f.boolean("gave_up")?,
        }),
        "fleet.restored" => Payload::Fleet(FleetEvent::ControlRestored {
            active: f.num("active")? as u32,
            queued: f.num("queued")? as u32,
        }),
        "fleet.cache_hit" => Payload::Fleet(FleetEvent::PlanCacheHit { session: f.num("id")? }),
        "fleet.cache_miss" => Payload::Fleet(FleetEvent::PlanCacheMiss { session: f.num("id")? }),
        "fleet.cache_evicted" => {
            Payload::Fleet(FleetEvent::PlanCacheEvicted { session: f.num("id")? })
        }
        "fleet.shed" => Payload::Fleet(FleetEvent::SessionShed {
            session: f.num("id")?,
            waited_us: f.num("waited_us")?,
            // Pre-backpressure traces carry no hint; they decode as 0.
            retry_after_us: f.opt_num("retry_after_us")?.unwrap_or(0),
        }),
        "fleet.rejected" => Payload::Fleet(FleetEvent::SessionRejected {
            session: f.num("id")?,
            agent: f.num("agent")? as u32,
        }),
        "fleet.breaker_open" => Payload::Fleet(FleetEvent::BreakerOpened {
            agent: f.num("agent")? as u32,
            cooldown_us: f.num("cooldown_us")?,
        }),
        "fleet.breaker_probe" => {
            Payload::Fleet(FleetEvent::BreakerProbed { agent: f.num("agent")? as u32 })
        }
        "fleet.breaker_close" => {
            Payload::Fleet(FleetEvent::BreakerClosed { agent: f.num("agent")? as u32 })
        }
        "fleet.scope_breaker_open" => Payload::Fleet(FleetEvent::ScopeBreakerOpened {
            scope: f.num("scope")?,
            cooldown_us: f.num("cooldown_us")?,
        }),
        "fleet.scope_breaker_probe" => {
            Payload::Fleet(FleetEvent::ScopeBreakerProbed { scope: f.num("scope")? })
        }
        "fleet.scope_breaker_close" => {
            Payload::Fleet(FleetEvent::ScopeBreakerClosed { scope: f.num("scope")? })
        }
        "fleet.scope_rejected" => Payload::Fleet(FleetEvent::ScopeRejected {
            session: f.num("id")?,
            scope: f.num("scope")?,
        }),
        "fleet.rto" => Payload::Fleet(FleetEvent::TimeoutAdapted {
            agent: f.num("agent")? as u32,
            srtt_us: f.num("srtt_us")?,
            rto_us: f.num("rto_us")?,
        }),
        "fleet.fabric_drop" => Payload::Fleet(FleetEvent::FabricDropped {
            src: f.num("src")? as u32,
            dst: f.num("dst")? as u32,
            seq: f.num("seq")?,
        }),
        "fleet.fabric_dup" => Payload::Fleet(FleetEvent::FabricDuplicated {
            src: f.num("src")? as u32,
            dst: f.num("dst")? as u32,
            seq: f.num("seq")?,
        }),
        "fleet.fabric_delay" => Payload::Fleet(FleetEvent::FabricDelayed {
            src: f.num("src")? as u32,
            dst: f.num("dst")? as u32,
            seq: f.num("seq")?,
            quanta: f.num("quanta")? as u32,
        }),
        "fleet.fabric_retx" => Payload::Fleet(FleetEvent::FabricRetransmit {
            session: f.num("id")?,
            region: f.num("region")? as u32,
            attempt: f.num("attempt")? as u32,
        }),
        "fleet.lease_reclaim" => Payload::Fleet(FleetEvent::LeaseReclaimed {
            session: f.num("id")?,
            region: f.num("region")? as u32,
            epoch: f.num("epoch")?,
        }),
        "fleet.straddler_abandoned" => Payload::Fleet(FleetEvent::StraddlerAbandoned {
            session: f.num("id")?,
            region: f.num("region")? as u32,
            attempts: f.num("attempts")? as u32,
        }),
        "fleet.domain" => Payload::Fleet(FleetEvent::DomainTagged {
            domain: f.num("domain")? as u32,
            objective: f.num("objective")? as u32,
        }),
        "fleet.lease_expired" => Payload::Fleet(FleetEvent::LeaseExpired {
            session: f.num("id")?,
            region: f.num("region")? as u32,
        }),
        other => return Err(format!("unknown event kind {other:?}")),
    };
    // Pre-fleet traces carry no session key; they decode as session 0.
    let session = f.opt_num("session")?.unwrap_or(0);
    // Pre-shard traces carry no shard key; they decode as shard 0.
    let shard = f.opt_num("shard")?.unwrap_or(0) as u32;
    Ok(Event { at, actor, session, shard, payload })
}

/// Decodes a whole `.jsonl` trace (blank lines and `#` comments skipped).
pub fn decode_lines(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(decode_event(line).map_err(|e| format!("line {}: {e}", no + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_ACTOR;
    use crate::key::SegmentEdge;

    fn round_trip(ev: Event) {
        let line = encode_event(&ev);
        assert!(!line.contains('\n'), "one event per line: {line:?}");
        let back = decode_event(&line).unwrap_or_else(|e| panic!("{e}\nline: {line}"));
        assert_eq!(back, ev, "line: {line}");
    }

    #[test]
    fn every_variant_round_trips() {
        let comp = CompId::from_index(3);
        let mut config = Config::empty(7);
        config.insert(CompId::from_index(0));
        config.insert(CompId::from_index(5));
        let cases: Vec<Payload> = vec![
            Payload::Net(NetEvent::Sent { from: 1, to: 2 }),
            Payload::Net(NetEvent::Delivered { from: 0, to: 3 }),
            Payload::Net(NetEvent::Dropped { from: 2, to: 2 }),
            Payload::Net(NetEvent::TimerFired { tag: u64::MAX }),
            Payload::Net(NetEvent::Crashed),
            Payload::Net(NetEvent::Restarted),
            Payload::Proto(ProtoEvent::AgentState {
                from: AgentStateTag::Running,
                to: AgentStateTag::Resetting,
                step: Some(4),
            }),
            Payload::Proto(ProtoEvent::AgentState {
                from: AgentStateTag::RollingBack,
                to: AgentStateTag::FailedReset,
                step: None,
            }),
            Payload::Proto(ProtoEvent::ManagerPhase {
                from: ManagerPhaseTag::Adapting,
                to: ManagerPhaseTag::GaveUp,
                step: Some(9),
            }),
            Payload::Proto(ProtoEvent::StepStarted { step: 7, solo: true, participants: 3 }),
            Payload::Proto(ProtoEvent::StepCommitted { step: 7 }),
            Payload::Proto(ProtoEvent::TimeoutFired {
                phase: ManagerPhaseTag::Resuming,
                step: None,
                retries: 2,
            }),
            Payload::Proto(ProtoEvent::RetrySent { step: 1, resends: 2 }),
            Payload::Proto(ProtoEvent::RollbackIssued { step: 5 }),
            Payload::Proto(ProtoEvent::RejoinReceived { agent: 1, last_completed: None }),
            Payload::Proto(ProtoEvent::RejoinReceived { agent: 2, last_completed: Some(3) }),
            Payload::Proto(ProtoEvent::OutcomeReached {
                success: false,
                gave_up: true,
                steps_committed: 2,
            }),
            Payload::Proto(ProtoEvent::JournalAppended { seq: 11 }),
            Payload::Proto(ProtoEvent::ManagerRestored {
                records: 6,
                phase: ManagerPhaseTag::RollingBack,
                step: Some(4),
            }),
            Payload::Proto(ProtoEvent::ManagerRestored {
                records: 0,
                phase: ManagerPhaseTag::Running,
                step: None,
            }),
            Payload::Proto(ProtoEvent::StateQueried { agent: 2 }),
            Payload::Proto(ProtoEvent::StateReported {
                agent: 2,
                engaged: Some(4),
                adapted: true,
                failed: false,
                last_completed: None,
            }),
            Payload::Proto(ProtoEvent::StateReported {
                agent: 0,
                engaged: None,
                adapted: false,
                failed: true,
                last_completed: Some(3),
            }),
            Payload::Audit(AuditEvent::SegmentStart { cid: 1 << 48, comp }),
            Payload::Audit(AuditEvent::SegmentEnd { cid: 42, comp }),
            Payload::Audit(AuditEvent::SegmentLost { cid: 0, comp }),
            Payload::Audit(AuditEvent::InAction {
                label: "E1 -> E2 \"quoted\"\nline".into(),
                comps: vec![CompId::from_index(0), CompId::from_index(1)],
            }),
            Payload::Audit(AuditEvent::InAction { label: String::new(), comps: vec![] }),
            Payload::Audit(AuditEvent::ConfigSnapshot { config }),
            Payload::Temporal(TemporalEvent::ObligationOpened {
                key: ObligationKey { comp, edge: SegmentEdge::Start },
                cid: 99,
            }),
            Payload::Temporal(TemporalEvent::ObligationDischarged {
                key: ObligationKey { comp, edge: SegmentEdge::End },
                cid: 99,
            }),
            Payload::Temporal(TemporalEvent::SafePoint { index: 12 }),
            Payload::Plan(PlanEvent::PathSelected { rank: 1, steps: 5, cost: 1210 }),
            Payload::Plan(PlanEvent::PathsExhausted { returning_to_source: true }),
        ];
        for (i, payload) in cases.into_iter().enumerate() {
            round_trip(Event {
                at: SimTime::from_micros(i as u64 * 17),
                actor: i as u32,
                session: (i as u64) % 3,
                shard: (i as u32) % 2,
                payload,
            });
        }
    }

    #[test]
    fn fleet_variants_round_trip() {
        let cases: Vec<Payload> = vec![
            Payload::Fleet(FleetEvent::SessionSubmitted { session: 4, resources: 6 }),
            Payload::Fleet(FleetEvent::SessionAdmitted { session: 4, queued_for: 12_500 }),
            Payload::Fleet(FleetEvent::SessionQueued { session: 9, position: 2 }),
            Payload::Fleet(FleetEvent::SessionCancelled { session: 9 }),
            Payload::Fleet(FleetEvent::SessionDone { session: 4, success: true, gave_up: false }),
            Payload::Fleet(FleetEvent::ControlRestored { active: 3, queued: 2 }),
            Payload::Fleet(FleetEvent::PlanCacheHit { session: 7 }),
            Payload::Fleet(FleetEvent::PlanCacheMiss { session: 1 }),
            Payload::Fleet(FleetEvent::PlanCacheEvicted { session: 3 }),
            Payload::Fleet(FleetEvent::SessionShed {
                session: 11,
                waited_us: 4_200,
                retry_after_us: 25_000,
            }),
            Payload::Fleet(FleetEvent::SessionRejected { session: 12, agent: 7 }),
            Payload::Fleet(FleetEvent::BreakerOpened { agent: 5, cooldown_us: 400_000 }),
            Payload::Fleet(FleetEvent::BreakerProbed { agent: 5 }),
            Payload::Fleet(FleetEvent::BreakerClosed { agent: 5 }),
            Payload::Fleet(FleetEvent::ScopeBreakerOpened {
                scope: 0xdead_beef_cafe,
                cooldown_us: 800_000,
            }),
            Payload::Fleet(FleetEvent::ScopeBreakerProbed { scope: 0xdead_beef_cafe }),
            Payload::Fleet(FleetEvent::ScopeBreakerClosed { scope: 0xdead_beef_cafe }),
            Payload::Fleet(FleetEvent::ScopeRejected { session: 13, scope: 0xdead_beef_cafe }),
            Payload::Fleet(FleetEvent::TimeoutAdapted { agent: 2, srtt_us: 9_800, rto_us: 31_000 }),
            Payload::Fleet(FleetEvent::DomainTagged { domain: 2, objective: 1 }),
            Payload::Fleet(FleetEvent::LeaseExpired { session: 100, region: 3 }),
        ];
        for (i, payload) in cases.into_iter().enumerate() {
            round_trip(Event {
                at: SimTime::from_micros(i as u64),
                actor: 0,
                session: i as u64,
                shard: i as u32 % 3,
                payload,
            });
        }
    }

    #[test]
    fn session_zero_is_elided_and_decodes_back() {
        let ev = Event {
            at: SimTime::from_micros(5),
            actor: 1,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Crashed),
        };
        let line = encode_event(&ev);
        assert!(!line.contains("session"), "session 0 must be elided: {line}");
        assert_eq!(decode_event(&line).unwrap(), ev);
        // A pre-fleet line (no session key anywhere) decodes as session 0.
        let old = "{\"at\":5,\"actor\":1,\"kind\":\"net.crashed\"}";
        assert_eq!(decode_event(old).unwrap(), ev);
        // And a tagged line carries its session through.
        let tagged = Event { session: 7, ..ev };
        let line = encode_event(&tagged);
        assert!(line.contains("\"session\":7"), "{line}");
        assert_eq!(decode_event(&line).unwrap(), tagged);
    }

    #[test]
    fn shard_zero_is_elided_and_decodes_back() {
        let ev = Event {
            at: SimTime::from_micros(5),
            actor: 1,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Crashed),
        };
        let line = encode_event(&ev);
        assert!(!line.contains("shard"), "shard 0 must be elided: {line}");
        // A pre-shard line (no shard key anywhere) decodes as shard 0.
        let old = "{\"at\":5,\"actor\":1,\"kind\":\"net.crashed\"}";
        assert_eq!(decode_event(old).unwrap(), ev);
        // And a tagged line carries its shard through, alongside a session.
        let tagged = Event { session: 7, shard: 3, ..ev };
        let line = encode_event(&tagged);
        assert!(line.contains("\"shard\":3"), "{line}");
        assert_eq!(decode_event(&line).unwrap(), tagged);
    }

    #[test]
    fn pre_backpressure_shed_lines_decode_with_zero_hint() {
        // PR 6 traces encoded fleet.shed without a retry_after_us field.
        let old = "{\"at\":9,\"actor\":2,\"kind\":\"fleet.shed\",\"id\":11,\"waited_us\":4200}";
        let ev = decode_event(old).unwrap();
        assert_eq!(
            ev.payload,
            Payload::Fleet(FleetEvent::SessionShed {
                session: 11,
                waited_us: 4_200,
                retry_after_us: 0
            })
        );
    }

    #[test]
    fn no_actor_sentinel_round_trips() {
        round_trip(Event {
            at: SimTime::ZERO,
            actor: NO_ACTOR,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Crashed),
        });
    }

    #[test]
    fn decode_lines_skips_comments_and_blanks() {
        let ev = Event {
            at: SimTime::ZERO,
            actor: 0,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Crashed),
        };
        let text = format!("# header\n\n{}\n  \n{}\n", encode_event(&ev), encode_event(&ev));
        let events = decode_lines(&text).unwrap();
        assert_eq!(events, vec![ev.clone(), ev]);
    }

    #[test]
    fn decode_reports_line_numbers() {
        let err = decode_lines("# ok\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let err = decode_event("{\"at\":0,\"actor\":0,\"kind\":\"weird\"}").unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn unicode_labels_survive() {
        round_trip(Event {
            at: SimTime::from_micros(1),
            actor: 0,
            session: 0,
            shard: 0,
            payload: Payload::Audit(AuditEvent::InAction {
                label: "näive → übergang".into(),
                comps: vec![],
            }),
        });
    }

    #[test]
    fn jsonl_sink_records_and_dumps() {
        let mut sink = JsonlSink::new();
        let ev = Event {
            at: SimTime::from_micros(3),
            actor: 1,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Restarted),
        };
        sink.accept(&ev);
        assert_eq!(sink.len(), 1);
        let dump = sink.dump();
        assert!(dump.ends_with('\n'));
        assert_eq!(decode_lines(&dump).unwrap(), vec![ev.clone()]);
        assert_eq!(sink.lines().collect::<Vec<_>>(), vec![encode_event(&ev)]);
        assert!(sink.flush().is_ok());
    }

    #[test]
    fn jsonl_sink_batch_matches_per_event_accept() {
        let evs: Vec<Event> = (0..5)
            .map(|i| Event {
                at: SimTime::from_micros(i),
                actor: i as u32,
                session: i % 2,
                shard: 0,
                payload: Payload::Net(NetEvent::TimerFired { tag: i }),
            })
            .collect();
        let mut looped = JsonlSink::new();
        for ev in &evs {
            looped.accept(ev);
        }
        let mut batched = JsonlSink::new();
        batched.accept_batch(&evs);
        assert_eq!(batched.dump(), looped.dump());
        assert_eq!(batched.len(), looped.len());
    }

    #[test]
    fn streaming_jsonl_sink_writes_through_and_retains_nothing() {
        use std::cell::RefCell;
        use std::rc::Rc;

        /// Shared byte buffer standing in for a trace file.
        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let file = Shared::default();
        let mut streamed = JsonlSink::streaming(file.clone());
        let mut recorded = JsonlSink::new();
        let evs: Vec<Event> = (0..3)
            .map(|i| Event {
                at: SimTime::from_micros(i),
                actor: 0,
                session: 0,
                shard: i as u32,
                payload: Payload::Net(NetEvent::Crashed),
            })
            .collect();
        streamed.accept(&evs[0]);
        streamed.accept_batch(&evs[1..]);
        for ev in &evs {
            recorded.accept(ev);
        }
        assert_eq!(streamed.len(), 3);
        assert_eq!(streamed.dump(), "", "streaming retains nothing in memory");
        streamed.flush().unwrap();
        assert_eq!(String::from_utf8(file.0.borrow().clone()).unwrap(), recorded.dump());
    }
}
