//! Per-phase adaptation latency and event-count summaries over a bus stream.
//!
//! The paper reports adaptation cost as a single number; debugging the
//! protocol needs the breakdown: how long agents spent driving to their
//! local safe states, performing in-actions, parked at the adapt-done
//! barrier, resuming, or rolling back. [`Metrics::from_events`] reconstructs
//! those buckets from the unified event stream by integrating each agent's
//! state-transition intervals, and tallies message/drop/retry/rollback
//! counts from the same stream — so the numbers always describe exactly the
//! run the trace describes.

use std::collections::HashMap;

use crate::event::{AgentStateTag, Event, NetEvent, Payload, ProtoEvent};
use crate::time::{SimDuration, SimTime};

/// Aggregated per-phase latencies and event counts for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total agent time in `Resetting` (reset → local-safe).
    pub reset_to_safe: SimDuration,
    /// Total agent time in `Safe` (drain wait + blocked in-action).
    pub safe_wait: SimDuration,
    /// Total agent time in `Adapted` (waiting out the adapt-done barrier).
    pub adapt_barrier: SimDuration,
    /// Total agent time in `Resuming`.
    pub resume: SimDuration,
    /// Total agent time in `RollingBack`.
    pub rollback: SimDuration,
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages destroyed (loss, partitions, crash eviction).
    pub dropped: u64,
    /// Timer firings.
    pub timers_fired: u64,
    /// Crash faults.
    pub crashes: u64,
    /// Restart faults.
    pub restarts: u64,
    /// Manager retry timeouts that fired.
    pub timeouts: u64,
    /// Retransmission bursts the manager sent.
    pub retries: u64,
    /// Steps the manager abandoned into rollback.
    pub rollbacks: u64,
    /// Rejoin announcements the manager resynchronized.
    pub rejoins: u64,
    /// Steps opened.
    pub steps_started: u64,
    /// Steps committed.
    pub steps_committed: u64,
    /// Records appended to the manager's write-ahead journal.
    pub journal_appends: u64,
    /// Manager incarnations rebuilt from the journal.
    pub manager_restores: u64,
    /// Reconciliation probes sent by restored managers.
    pub state_queries: u64,
    /// Reconciliation reports received from agents.
    pub state_reports: u64,
    /// Audit-layer events observed.
    pub audit_events: u64,
    /// Control-plane (fleet scheduling) events observed.
    pub fleet_events: u64,
    /// Virtual time between the first and last event in the stream.
    pub span: SimDuration,
}

impl Metrics {
    /// Reconstructs metrics from an event stream (any order-preserving
    /// slice: a ring sink's contents, a decoded JSONL trace, …).
    pub fn from_events(events: &[Event]) -> Metrics {
        let mut m = Metrics::default();
        // Per-agent (state, entered-at) for interval integration.
        let mut agent_state: HashMap<u32, (AgentStateTag, SimTime)> = HashMap::new();
        let mut first: Option<SimTime> = None;
        let mut last = SimTime::ZERO;
        for ev in events {
            first.get_or_insert(ev.at);
            last = last.max(ev.at);
            match &ev.payload {
                Payload::Net(n) => match n {
                    NetEvent::Sent { .. } => m.sent += 1,
                    NetEvent::Delivered { .. } => m.delivered += 1,
                    NetEvent::Dropped { .. } => m.dropped += 1,
                    NetEvent::TimerFired { .. } => m.timers_fired += 1,
                    NetEvent::Crashed => m.crashes += 1,
                    NetEvent::Restarted => m.restarts += 1,
                },
                Payload::Proto(p) => match p {
                    ProtoEvent::AgentState { from, to, .. } => {
                        let entry = agent_state.entry(ev.actor).or_insert((*from, ev.at));
                        let (prev, since) = *entry;
                        m.credit(prev, ev.at.saturating_since(since));
                        *entry = (*to, ev.at);
                    }
                    ProtoEvent::TimeoutFired { .. } => m.timeouts += 1,
                    ProtoEvent::RetrySent { .. } => m.retries += 1,
                    ProtoEvent::RollbackIssued { .. } => m.rollbacks += 1,
                    ProtoEvent::RejoinReceived { .. } => m.rejoins += 1,
                    ProtoEvent::StepStarted { .. } => m.steps_started += 1,
                    ProtoEvent::StepCommitted { .. } => m.steps_committed += 1,
                    ProtoEvent::JournalAppended { .. } => m.journal_appends += 1,
                    ProtoEvent::ManagerRestored { .. } => m.manager_restores += 1,
                    ProtoEvent::StateQueried { .. } => m.state_queries += 1,
                    ProtoEvent::StateReported { .. } => m.state_reports += 1,
                    ProtoEvent::ManagerPhase { .. } | ProtoEvent::OutcomeReached { .. } => {}
                },
                Payload::Audit(_) => m.audit_events += 1,
                Payload::Temporal(_) => {}
                Payload::Plan(_) => {}
                Payload::Fleet(_) => m.fleet_events += 1,
            }
        }
        // Close any interval still open at the end of the stream (an agent
        // stranded mid-phase still accrues its time).
        for (_, (state, since)) in agent_state {
            m.credit(state, last.saturating_since(since));
        }
        m.span = last.saturating_since(first.unwrap_or(SimTime::ZERO));
        m
    }

    fn credit(&mut self, state: AgentStateTag, d: SimDuration) {
        match state {
            AgentStateTag::Resetting => self.reset_to_safe += d,
            AgentStateTag::Safe => self.safe_wait += d,
            AgentStateTag::Adapted => self.adapt_barrier += d,
            AgentStateTag::Resuming => self.resume += d,
            AgentStateTag::RollingBack => self.rollback += d,
            AgentStateTag::Running | AgentStateTag::FailedReset => {}
        }
    }

    /// The per-phase latency table, in protocol order, for rendering.
    pub fn phase_rows(&self) -> [(&'static str, SimDuration); 5] {
        [
            ("reset -> local-safe", self.reset_to_safe),
            ("safe-wait (in-action)", self.safe_wait),
            ("adapt-done barrier", self.adapt_barrier),
            ("resume", self.resume),
            ("rollback", self.rollback),
        ]
    }

    /// Sum of all phase buckets (total agent non-Running time).
    pub fn total_phase_time(&self) -> SimDuration {
        self.reset_to_safe + self.safe_wait + self.adapt_barrier + self.resume + self.rollback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NetEvent;

    fn agent(at: u64, actor: u32, from: AgentStateTag, to: AgentStateTag) -> Event {
        Event {
            at: SimTime::from_micros(at),
            actor,
            session: 0,
            shard: 0,
            payload: Payload::Proto(ProtoEvent::AgentState { from, to, step: Some(1) }),
        }
    }

    #[test]
    fn integrates_agent_state_intervals_per_actor() {
        use AgentStateTag::*;
        let events = vec![
            agent(100, 1, Running, Resetting),
            agent(100, 2, Running, Resetting),
            agent(400, 1, Resetting, Safe),
            agent(600, 1, Safe, Adapted),
            agent(700, 2, Resetting, Safe),
            agent(900, 1, Adapted, Resuming),
            agent(950, 1, Resuming, Running),
        ];
        let m = Metrics::from_events(&events);
        // Actor 1: 300 resetting, 200 safe, 300 adapted, 50 resuming.
        // Actor 2: 600 resetting, then safe until the last event (950-700).
        assert_eq!(m.reset_to_safe, SimDuration::from_micros(900));
        assert_eq!(m.safe_wait, SimDuration::from_micros(450));
        assert_eq!(m.adapt_barrier, SimDuration::from_micros(300));
        assert_eq!(m.resume, SimDuration::from_micros(50));
        assert_eq!(m.rollback, SimDuration::ZERO);
        assert_eq!(m.span, SimDuration::from_micros(850));
        assert_eq!(m.total_phase_time(), SimDuration::from_micros(1_700));
    }

    #[test]
    fn counts_follow_the_stream() {
        let at = SimTime::from_micros(5);
        let ev = |actor: u32, payload: Payload| Event { at, actor, session: 0, shard: 0, payload };
        let events = vec![
            ev(0, Payload::Net(NetEvent::Sent { from: 0, to: 1 })),
            ev(1, Payload::Net(NetEvent::Delivered { from: 0, to: 1 })),
            ev(1, Payload::Net(NetEvent::Dropped { from: 0, to: 1 })),
            ev(0, Payload::Proto(ProtoEvent::StepStarted { step: 1, solo: true, participants: 1 })),
            ev(0, Payload::Proto(ProtoEvent::StepCommitted { step: 1 })),
            ev(
                0,
                Payload::Proto(ProtoEvent::TimeoutFired {
                    phase: crate::event::ManagerPhaseTag::Adapting,
                    step: Some(1),
                    retries: 1,
                }),
            ),
            ev(0, Payload::Proto(ProtoEvent::RetrySent { step: 1, resends: 2 })),
            ev(0, Payload::Proto(ProtoEvent::RollbackIssued { step: 1 })),
        ];
        let m = Metrics::from_events(&events);
        assert_eq!((m.sent, m.delivered, m.dropped), (1, 1, 1));
        assert_eq!((m.steps_started, m.steps_committed), (1, 1));
        assert_eq!((m.timeouts, m.retries, m.rollbacks), (1, 1, 1));
        assert_eq!(m.span, SimDuration::ZERO);
    }

    #[test]
    fn empty_stream_is_all_zero() {
        assert_eq!(Metrics::from_events(&[]), Metrics::default());
    }
}
