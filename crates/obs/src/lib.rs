//! # sada-obs — the unified observability spine
//!
//! The paper's safety argument depends on reconstructing *exactly what the
//! system did*: which critical segments were open, which protocol phase each
//! agent was in, when the manager's timeouts fired. This crate is the one
//! account of that. Every layer of the reproduction — the network simulator,
//! the manager/agent protocol cores, the application audit log, the temporal
//! monitor, the planner — emits typed, timestamped [`Event`]s onto a shared
//! [`Bus`], and every consumer (the safety auditor, the temporal monitor,
//! `report -- timeline`, chaos counterexample dumps) reads the same stream.
//!
//! * [`Event`] / [`Payload`] — the layer-tagged taxonomy (Net / Proto /
//!   Audit / Temporal / Plan), stamped with [`SimTime`] and actor identity.
//! * [`Bus`] / [`Sink`] — the cheaply-cloneable producer handle and the
//!   pluggable consumer contract. Zero attached sinks ⇒ near-zero cost.
//! * [`RingSink`], [`CounterSink`], [`AuditTrail`], [`JsonlSink`] — bounded
//!   retention, metrics counters, the auditor's flat log, and a replayable
//!   line-oriented trace codec.
//! * [`Metrics`] — per-protocol-phase latency breakdown plus
//!   message/drop/retry/rollback counts, reconstructed from any stream.
//! * [`ObligationKey`] — the typed obligation identity shared with the
//!   temporal layer (the stringly form survives only at parser boundaries).
//!
//! This crate sits at the bottom of the workspace: it depends only on
//! `sada-expr` (component identities, configurations) and `sada-model` (the
//! audit-event vocabulary). [`SimTime`]/[`SimDuration`] live here and are
//! re-exported by `sada-simnet` so the whole stack shares one clock.

mod bus;
mod codec;
mod event;
mod key;
mod metrics;
mod sinks;
mod time;

pub use bus::{Bus, Sink};
pub use codec::{decode_event, decode_lines, encode_event, encode_event_into, JsonlSink};
pub use event::{
    AgentStateTag, Event, FleetEvent, ManagerPhaseTag, NetEvent, Payload, PlanEvent, ProtoEvent,
    TemporalEvent, NO_ACTOR, NO_SESSION, NO_SHARD,
};
pub use key::{ObligationKey, SegmentEdge};
pub use metrics::Metrics;
pub use sinks::{AuditTrail, CounterSink, RingSink};
pub use time::{SimDuration, SimTime};

// The audit vocabulary is part of the event taxonomy; re-export it so bus
// consumers need not depend on sada-model directly.
pub use sada_model::AuditEvent;
