//! Ready-made sinks: bounded ring buffer, category counters, audit trail.

use std::collections::VecDeque;

use sada_model::AuditEvent;

use crate::bus::Sink;
use crate::event::{Event, NetEvent, Payload};

/// Keeps the most recent `capacity` events (older ones are evicted), so a
/// long run's tail can be inspected at bounded memory.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events. Capacity zero keeps
    /// nothing but still counts.
    pub fn new(capacity: usize) -> Self {
        RingSink { capacity, buf: VecDeque::with_capacity(capacity.min(4096)), seen: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events observed over the sink's lifetime (including evicted).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl Sink for RingSink {
    fn accept(&mut self, ev: &Event) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev.clone());
    }

    fn accept_batch(&mut self, evs: &[Event]) {
        self.seen += evs.len() as u64;
        if self.capacity == 0 {
            return;
        }
        // Only the last `capacity` events of the batch can survive; skip
        // straight to them instead of cloning events that would be evicted
        // before the batch even finishes.
        let keep = &evs[evs.len().saturating_sub(self.capacity)..];
        let evict = (self.buf.len() + keep.len()).saturating_sub(self.capacity);
        self.buf.drain(..evict);
        self.buf.extend(keep.iter().cloned());
    }
}

/// Counts events per layer and per network kind without retaining them —
/// the cheapest always-on metrics sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSink {
    /// Every event observed.
    pub total: u64,
    /// Net-layer sends.
    pub net_sent: u64,
    /// Net-layer deliveries.
    pub net_delivered: u64,
    /// Net-layer drops.
    pub net_dropped: u64,
    /// Net-layer timer firings.
    pub timers_fired: u64,
    /// Crash faults.
    pub crashes: u64,
    /// Restart faults.
    pub restarts: u64,
    /// Protocol-layer events.
    pub proto: u64,
    /// Audit-layer events.
    pub audit: u64,
    /// Temporal-layer events.
    pub temporal: u64,
    /// Planning-layer events.
    pub plan: u64,
    /// Control-plane (fleet scheduling) events.
    pub fleet: u64,
}

impl CounterSink {
    /// A zeroed counter set.
    pub fn new() -> Self {
        CounterSink::default()
    }
}

impl Sink for CounterSink {
    fn accept(&mut self, ev: &Event) {
        self.total += 1;
        match &ev.payload {
            Payload::Net(n) => match n {
                NetEvent::Sent { .. } => self.net_sent += 1,
                NetEvent::Delivered { .. } => self.net_delivered += 1,
                NetEvent::Dropped { .. } => self.net_dropped += 1,
                NetEvent::TimerFired { .. } => self.timers_fired += 1,
                NetEvent::Crashed => self.crashes += 1,
                NetEvent::Restarted => self.restarts += 1,
            },
            Payload::Proto(_) => self.proto += 1,
            Payload::Audit(_) => self.audit += 1,
            Payload::Temporal(_) => self.temporal += 1,
            Payload::Plan(_) => self.plan += 1,
            Payload::Fleet(_) => self.fleet += 1,
        }
    }
}

/// Collects the audit-layer projection of the stream: exactly the flat
/// [`AuditEvent`] log the safety auditor replays. This is what replaced the
/// video audit log's private event vec.
#[derive(Debug, Clone, Default)]
pub struct AuditTrail {
    events: Vec<AuditEvent>,
}

impl AuditTrail {
    /// An empty trail.
    pub fn new() -> Self {
        AuditTrail::default()
    }

    /// The collected audit events, in emission order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Clones the trail out for the auditor.
    pub fn to_vec(&self) -> Vec<AuditEvent> {
        self.events.clone()
    }

    /// Number of audit events collected.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no audit event has been observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Sink for AuditTrail {
    fn accept(&mut self, ev: &Event) {
        if let Payload::Audit(a) = &ev.payload {
            self.events.push(a.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use sada_expr::CompId;

    fn ev(at: u64, payload: Payload) -> Event {
        Event { at: SimTime::from_micros(at), actor: 0, session: 0, shard: 0, payload }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_counting() {
        let mut ring = RingSink::new(2);
        for i in 0..5 {
            ring.accept(&ev(i, Payload::Net(NetEvent::TimerFired { tag: i })));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_seen(), 5);
        let kept: Vec<u64> = ring.events().iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(kept, vec![3, 4], "oldest first, newest retained");
    }

    #[test]
    fn zero_capacity_ring_retains_nothing() {
        let mut ring = RingSink::new(0);
        ring.accept(&ev(1, Payload::Net(NetEvent::Crashed)));
        assert!(ring.is_empty());
        assert_eq!(ring.total_seen(), 1);
    }

    #[test]
    fn ring_accept_batch_matches_per_event_accept() {
        let batch: Vec<Event> =
            (0..7).map(|i| ev(i, Payload::Net(NetEvent::TimerFired { tag: i }))).collect();
        for cap in [0, 1, 2, 3, 7, 10] {
            let mut looped = RingSink::new(cap);
            for e in &batch {
                looped.accept(e);
            }
            let mut batched = RingSink::new(cap);
            batched.accept_batch(&batch);
            assert_eq!(batched.events(), looped.events(), "capacity {cap}");
            assert_eq!(batched.total_seen(), looped.total_seen(), "capacity {cap}");
        }
        // A second batch on a pre-populated ring exercises the drain path.
        let mut looped = RingSink::new(4);
        let mut batched = RingSink::new(4);
        for sink in [&mut looped, &mut batched] {
            sink.accept_batch(&batch[..3]);
        }
        for e in &batch {
            looped.accept(e);
        }
        batched.accept_batch(&batch);
        assert_eq!(batched.events(), looped.events());
    }

    #[test]
    fn counters_split_by_layer_and_kind() {
        let mut c = CounterSink::new();
        c.accept(&ev(0, Payload::Net(NetEvent::Sent { from: 0, to: 1 })));
        c.accept(&ev(1, Payload::Net(NetEvent::Delivered { from: 0, to: 1 })));
        c.accept(&ev(2, Payload::Net(NetEvent::Dropped { from: 0, to: 1 })));
        c.accept(&ev(3, Payload::Net(NetEvent::Crashed)));
        c.accept(&ev(4, Payload::Net(NetEvent::Restarted)));
        c.accept(&ev(
            5,
            Payload::Audit(AuditEvent::SegmentStart { cid: 1, comp: CompId::from_index(0) }),
        ));
        assert_eq!(c.total, 6);
        assert_eq!((c.net_sent, c.net_delivered, c.net_dropped), (1, 1, 1));
        assert_eq!((c.crashes, c.restarts, c.audit), (1, 1, 1));
    }

    #[test]
    fn audit_trail_projects_only_audit_events() {
        let mut t = AuditTrail::new();
        t.accept(&ev(0, Payload::Net(NetEvent::Crashed)));
        let a = AuditEvent::SegmentStart { cid: 9, comp: CompId::from_index(2) };
        t.accept(&ev(1, Payload::Audit(a.clone())));
        assert_eq!(t.events(), &[a]);
        assert_eq!(t.len(), 1);
    }
}
