//! The event bus: one producer-facing handle, pluggable consumer sinks.
//!
//! A [`Bus`] is a cheaply-cloneable handle to a shared sink list; every
//! layer of a run (simulator, protocol adapters, audit log, harness) holds a
//! clone of the same bus and emits through it. Sinks are attached by the
//! harness depending on what it wants out of the run — nothing, counters, a
//! bounded ring, a replayable JSONL trace — and emission with zero sinks is
//! a branch on an empty vec, so instrumented hot paths cost nothing when
//! nobody is listening (use [`Bus::publish`], which defers payload
//! construction).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::event::{Event, Payload};
use crate::time::SimTime;

/// A consumer of bus events.
///
/// Sinks observe every event emitted after they attach, in emission order.
/// `accept` must not emit back onto the same bus (single-threaded
/// re-entrancy would panic the underlying `RefCell`).
pub trait Sink {
    /// Observes one event.
    fn accept(&mut self, ev: &Event);

    /// Observes a batch of events, in order. Semantically identical to
    /// calling [`Sink::accept`] on each; sinks with a cheaper bulk path
    /// (ring buffers, buffered writers) override this.
    fn accept_batch(&mut self, evs: &[Event]) {
        for ev in evs {
            self.accept(ev);
        }
    }
}

/// A shared handle to one attached sink.
type SinkHandle = Rc<RefCell<dyn Sink>>;

/// The shared, layer-spanning event bus.
///
/// Clones share the same sink list (`Rc` semantics): attaching a sink
/// through any clone makes it visible to every producer. The simulation is
/// single-threaded, so interior mutability is `RefCell`, not locks.
#[derive(Clone, Default)]
pub struct Bus {
    sinks: Rc<RefCell<Vec<SinkHandle>>>,
    /// Session stamped onto emitted events (0 = unscoped, leave as-is).
    scope: u64,
    /// Shard stamped onto emitted events (0 = unsharded, leave as-is).
    shard: u32,
}

impl Bus {
    /// A bus with no sinks attached.
    pub fn new() -> Self {
        Bus::default()
    }

    /// A clone of this bus that stamps `session` onto every event emitted
    /// through it (events already carrying a nonzero session keep theirs).
    /// Producers stay session-agnostic; the control plane hands each
    /// embedded manager core a scoped clone and the whole event stream
    /// comes out session-tagged.
    pub fn scoped(&self, session: u64) -> Bus {
        Bus { sinks: Rc::clone(&self.sinks), scope: session, shard: self.shard }
    }

    /// A clone of this bus that stamps `shard` onto every event emitted
    /// through it (events already carrying a nonzero shard keep theirs).
    /// A sharded runtime hands each region's simulator a stamped clone and
    /// the merged multi-shard stream comes out shard-tagged; producers stay
    /// shard-agnostic, exactly like [`Bus::scoped`] for sessions.
    pub fn sharded(&self, shard: u32) -> Bus {
        Bus { sinks: Rc::clone(&self.sinks), scope: self.scope, shard }
    }

    /// The session this handle stamps (0 when unscoped).
    pub fn scope(&self) -> u64 {
        self.scope
    }

    /// The shard this handle stamps (0 when unsharded).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Attaches `sink`; it observes every event emitted from now on. The
    /// caller keeps its handle and reads results out after the run.
    pub fn attach<S: Sink + 'static>(&self, sink: &Rc<RefCell<S>>) {
        self.sinks.borrow_mut().push(sink.clone() as SinkHandle);
    }

    /// Detaches a previously attached sink (no-op if absent).
    pub fn detach<S: Sink + 'static>(&self, sink: &Rc<RefCell<S>>) {
        let target = Rc::as_ptr(sink) as *const ();
        self.sinks.borrow_mut().retain(|s| Rc::as_ptr(s) as *const () != target);
    }

    /// True when at least one sink is attached. Producers with non-trivial
    /// payload construction should guard on this (or use [`Bus::publish`]).
    pub fn has_sinks(&self) -> bool {
        !self.sinks.borrow().is_empty()
    }

    /// Number of attached sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.borrow().len()
    }

    /// Delivers `ev` to every attached sink, in attachment order. A scoped
    /// handle fills in its session, a sharded handle its shard, on events
    /// that do not carry one.
    pub fn emit(&self, mut ev: Event) {
        if self.scope != 0 && ev.session == 0 {
            ev.session = self.scope;
        }
        if self.shard != 0 && ev.shard == 0 {
            ev.shard = self.shard;
        }
        for sink in self.sinks.borrow().iter() {
            sink.borrow_mut().accept(&ev);
        }
    }

    /// Delivers every event in `evs` to every attached sink and clears the
    /// vec (the caller keeps its capacity for reuse). Stamping is identical
    /// to per-event [`Bus::emit`]; delivery is sink-major — each sink sees
    /// the whole batch in order, so any *single* sink observes exactly the
    /// per-message emission order (only the cross-sink interleaving
    /// changes, which no sink can observe).
    pub fn emit_batch(&self, evs: &mut Vec<Event>) {
        if evs.is_empty() {
            return;
        }
        if self.scope != 0 || self.shard != 0 {
            for ev in evs.iter_mut() {
                if self.scope != 0 && ev.session == 0 {
                    ev.session = self.scope;
                }
                if self.shard != 0 && ev.shard == 0 {
                    ev.shard = self.shard;
                }
            }
        }
        for sink in self.sinks.borrow().iter() {
            sink.borrow_mut().accept_batch(evs);
        }
        evs.clear();
    }

    /// Emits a stamped event, building the payload only if a sink is
    /// attached — the zero-overhead form for hot paths.
    pub fn publish(&self, at: SimTime, actor: u32, payload: impl FnOnce() -> Payload) {
        if self.has_sinks() {
            self.emit(Event {
                at,
                actor,
                session: self.scope,
                shard: self.shard,
                payload: payload(),
            });
        }
    }
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bus").field("sinks", &self.sink_count()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NetEvent;

    struct Probe {
        seen: Vec<Event>,
    }

    impl Sink for Probe {
        fn accept(&mut self, ev: &Event) {
            self.seen.push(ev.clone());
        }
    }

    fn net(at: u64) -> Event {
        Event {
            at: SimTime::from_micros(at),
            actor: 0,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Crashed),
        }
    }

    #[test]
    fn clones_share_the_sink_list() {
        let bus = Bus::new();
        let other = bus.clone();
        let probe = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
        bus.attach(&probe);
        assert!(other.has_sinks());
        other.emit(net(5));
        assert_eq!(probe.borrow().seen.len(), 1);
        assert_eq!(probe.borrow().seen[0].at, SimTime::from_micros(5));
    }

    #[test]
    fn detach_stops_delivery_for_that_sink_only() {
        let bus = Bus::new();
        let a = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
        let b = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
        bus.attach(&a);
        bus.attach(&b);
        bus.emit(net(1));
        bus.detach(&a);
        bus.emit(net(2));
        assert_eq!(a.borrow().seen.len(), 1);
        assert_eq!(b.borrow().seen.len(), 2);
        assert_eq!(bus.sink_count(), 1);
    }

    #[test]
    fn publish_skips_payload_construction_with_zero_sinks() {
        let bus = Bus::new();
        let mut built = false;
        bus.publish(SimTime::ZERO, 0, || {
            built = true;
            Payload::Net(NetEvent::Crashed)
        });
        assert!(!built, "payload must not be built when no sink is attached");
        let probe = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
        bus.attach(&probe);
        bus.publish(SimTime::ZERO, 0, || {
            built = true;
            Payload::Net(NetEvent::Crashed)
        });
        assert!(built);
        assert_eq!(probe.borrow().seen.len(), 1);
    }

    #[test]
    fn scoped_handle_stamps_session_without_overriding() {
        let bus = Bus::new();
        let probe = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
        bus.attach(&probe);
        let scoped = bus.scoped(7);
        assert_eq!(scoped.scope(), 7);
        assert_eq!(bus.scope(), 0, "scoping is a property of the clone only");
        scoped.emit(net(1));
        scoped.publish(SimTime::from_micros(2), 0, || Payload::Net(NetEvent::Crashed));
        let mut pre_tagged = net(3);
        pre_tagged.session = 3;
        scoped.emit(pre_tagged);
        bus.emit(net(4));
        let sessions: Vec<u64> = probe.borrow().seen.iter().map(|e| e.session).collect();
        assert_eq!(sessions, vec![7, 7, 3, 0]);
    }

    #[test]
    fn sharded_handle_stamps_shard_without_overriding() {
        let bus = Bus::new();
        let probe = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
        bus.attach(&probe);
        let sharded = bus.sharded(3);
        assert_eq!(sharded.shard(), 3);
        assert_eq!(bus.shard(), 0, "sharding is a property of the clone only");
        sharded.emit(net(1));
        sharded.publish(SimTime::from_micros(2), 0, || Payload::Net(NetEvent::Crashed));
        let mut pre_tagged = net(3);
        pre_tagged.shard = 9;
        sharded.emit(pre_tagged);
        // A scoped clone of a sharded handle keeps the shard, and vice versa.
        sharded.scoped(5).emit(net(4));
        bus.emit(net(5));
        let stamps: Vec<(u32, u64)> =
            probe.borrow().seen.iter().map(|e| (e.shard, e.session)).collect();
        assert_eq!(stamps, vec![(3, 0), (3, 0), (9, 0), (3, 5), (0, 0)]);
    }

    #[test]
    fn debug_does_not_recurse_into_sinks() {
        let bus = Bus::new();
        assert_eq!(format!("{bus:?}"), "Bus { sinks: 0 }");
    }

    #[test]
    fn emit_batch_stamps_and_delivers_like_per_event_emit() {
        let make = || {
            let mut evs = vec![net(1), net(2), net(3)];
            evs[1].session = 3;
            evs[2].shard = 9;
            evs
        };
        let batched = {
            let bus = Bus::new();
            let probe = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
            bus.attach(&probe);
            let mut evs = make();
            bus.scoped(7).sharded(2).emit_batch(&mut evs);
            assert!(evs.is_empty(), "batch vec is drained for reuse");
            let seen = probe.borrow().seen.clone();
            seen
        };
        let looped = {
            let bus = Bus::new();
            let probe = Rc::new(RefCell::new(Probe { seen: Vec::new() }));
            bus.attach(&probe);
            let handle = bus.scoped(7).sharded(2);
            for ev in make() {
                handle.emit(ev);
            }
            let seen = probe.borrow().seen.clone();
            seen
        };
        assert_eq!(batched, looped);
        let stamps: Vec<(u64, u32)> = batched.iter().map(|e| (e.session, e.shard)).collect();
        assert_eq!(stamps, vec![(7, 2), (3, 2), (7, 9)]);
    }

    #[test]
    fn default_accept_batch_forwards_each_event() {
        let mut probe = Probe { seen: Vec::new() };
        probe.accept_batch(&[net(1), net(2)]);
        assert_eq!(probe.seen.len(), 2);
        assert_eq!(probe.seen[1].at, SimTime::from_micros(2));
    }
}
