//! Typed obligation keys for segment-bracket response specifications.
//!
//! The temporal layer historically identified obligations by ad-hoc strings
//! (`format!("seg_start_c{}")`). [`ObligationKey`] is the typed form: a
//! component plus which edge of its critical-communication bracket the event
//! marks. The stringly form survives only at the parser boundary, via
//! [`Display`](std::fmt::Display) and [`FromStr`](std::str::FromStr).

use std::fmt;
use std::str::FromStr;

use sada_expr::CompId;

/// Which edge of a critical-communication segment an obligation event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentEdge {
    /// The segment opened (the obligation's trigger).
    Start,
    /// The segment closed (the obligation's response).
    End,
}

/// A typed obligation event identity: component + bracket edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObligationKey {
    /// The component whose segment bracket this is.
    pub comp: CompId,
    /// Opening or closing edge.
    pub edge: SegmentEdge,
}

impl ObligationKey {
    /// The opening-edge key for `comp`.
    pub fn start(comp: CompId) -> Self {
        ObligationKey { comp, edge: SegmentEdge::Start }
    }

    /// The closing-edge key for `comp`.
    pub fn end(comp: CompId) -> Self {
        ObligationKey { comp, edge: SegmentEdge::End }
    }
}

impl fmt::Display for ObligationKey {
    /// The parser-facing string form, e.g. `seg_start_c2` / `seg_end_c2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let edge = match self.edge {
            SegmentEdge::Start => "start",
            SegmentEdge::End => "end",
        };
        write!(f, "seg_{edge}_c{}", self.comp.index())
    }
}

impl FromStr for ObligationKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s.strip_prefix("seg_").ok_or_else(|| format!("bad obligation key {s:?}"))?;
        let (edge, rest) = if let Some(r) = rest.strip_prefix("start_c") {
            (SegmentEdge::Start, r)
        } else if let Some(r) = rest.strip_prefix("end_c") {
            (SegmentEdge::End, r)
        } else {
            return Err(format!("bad obligation key {s:?}"));
        };
        let ix: usize = rest.parse().map_err(|_| format!("bad component index in {s:?}"))?;
        Ok(ObligationKey { comp: CompId::from_index(ix), edge })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_strings() {
        assert_eq!(ObligationKey::start(CompId::from_index(0)).to_string(), "seg_start_c0");
        assert_eq!(ObligationKey::end(CompId::from_index(12)).to_string(), "seg_end_c12");
    }

    #[test]
    fn round_trips_through_the_string_boundary() {
        for key in
            [ObligationKey::start(CompId::from_index(3)), ObligationKey::end(CompId::from_index(7))]
        {
            let parsed: ObligationKey = key.to_string().parse().unwrap();
            assert_eq!(parsed, key);
        }
    }

    #[test]
    fn rejects_malformed_strings() {
        for bad in ["", "seg_", "seg_mid_c1", "seg_start_", "seg_start_cx", "start_c1"] {
            assert!(bad.parse::<ObligationKey>().is_err(), "{bad:?} must not parse");
        }
    }
}
