//! The layer-tagged event taxonomy carried by the [`Bus`].
//!
//! Every observable thing the reproduction does — a message on the wire, a
//! protocol state transition, a critical-segment bracket, a temporal
//! obligation, a planner decision — is one [`Event`]: a [`SimTime`] stamp,
//! the acting process, and a typed [`Payload`]. The same stream drives the
//! safety auditor, the temporal monitor, the JSONL trace codec, and the
//! per-phase latency metrics, so there is exactly one account of what a run
//! did.
//!
//! [`Bus`]: crate::Bus

use sada_model::AuditEvent;

use crate::key::ObligationKey;
use crate::time::SimTime;

/// Sentinel actor index for events not attributable to a single simulated
/// process (e.g. harness-level audit adjudication).
pub const NO_ACTOR: u32 = u32::MAX;

/// Sentinel session value for events outside any adaptation session (and
/// for every event of a single-adaptation run, which predates sessions).
pub const NO_SESSION: u64 = 0;

/// Sentinel shard value for events outside any sharded run (and for every
/// event of a single-plane run, which predates shards).
pub const NO_SHARD: u32 = 0;

/// One timestamped, attributed occurrence on the unified bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time of the occurrence.
    pub at: SimTime,
    /// Dense index of the acting process (`ActorId::index()`), or
    /// [`NO_ACTOR`] when no single process is responsible.
    pub actor: u32,
    /// Adaptation session the event belongs to, or [`NO_SESSION`].
    /// Producers below the control plane stay session-agnostic and emit 0;
    /// the fleet layer stamps sessions via [`Bus::scoped`].
    ///
    /// [`Bus::scoped`]: crate::Bus::scoped
    pub session: u64,
    /// Shard (control-plane region) that produced the event, or
    /// [`NO_SHARD`]. Producers stay shard-agnostic and emit 0; a sharded
    /// runtime hands each region a stamped bus via [`Bus::sharded`], so
    /// merged multi-shard streams remain attributable line by line.
    ///
    /// [`Bus::sharded`]: crate::Bus::sharded
    pub shard: u32,
    /// What happened, tagged by the layer that observed it.
    pub payload: Payload,
}

/// The layer-tagged body of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Network-substrate occurrences (sends, deliveries, drops, timers,
    /// crash faults) emitted by `sada-simnet`.
    Net(NetEvent),
    /// Adaptation-protocol occurrences (state transitions, barriers,
    /// timeouts, retries, rollbacks) emitted by `sada-proto`.
    Proto(ProtoEvent),
    /// Application safety-audit occurrences (CCS brackets, in-actions,
    /// configuration snapshots) — the exact [`AuditEvent`] the safety
    /// auditor replays.
    Audit(AuditEvent),
    /// Temporal-logic occurrences (obligation open/discharge, safe points)
    /// emitted by `sada-tl`.
    Temporal(TemporalEvent),
    /// Planning decisions (path selection and exhaustion) emitted by the
    /// manager when it consults the planner.
    Plan(PlanEvent),
    /// Control-plane scheduling occurrences (session admission, queueing,
    /// cancellation, completion) emitted by `sada-fleet`.
    Fleet(FleetEvent),
}

/// What the network substrate observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A message was handed to the network. `from`/`to` are actor indexes.
    Sent {
        /// Sending actor index.
        from: u32,
        /// Destination actor index.
        to: u32,
    },
    /// A message reached its destination actor.
    Delivered {
        /// Sending actor index.
        from: u32,
        /// Destination actor index.
        to: u32,
    },
    /// A message was destroyed (loss, partition, crash eviction, unknown
    /// destination).
    Dropped {
        /// Sending actor index.
        from: u32,
        /// Destination actor index.
        to: u32,
    },
    /// A timer armed by the event's actor fired with `tag`.
    TimerFired {
        /// The caller-chosen tag the timer was armed with.
        tag: u64,
    },
    /// Fault injection crashed the event's actor.
    Crashed,
    /// Fault injection restarted the event's actor.
    Restarted,
}

/// Agent-side protocol states (mirrors `sada_proto::AgentState` without a
/// dependency on the protocol crate, which sits above this one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentStateTag {
    /// Serving the application; no adaptation in progress.
    Running,
    /// Told to reset: driving itself toward the local safe state.
    Resetting,
    /// Locally safe; performing (or waiting out) the adaptive in-action.
    Safe,
    /// In-action done; blocked on the manager's global adapt-done barrier.
    Adapted,
    /// Resuming normal operation after the barrier.
    Resuming,
    /// Undoing a locally-applied action during recovery.
    RollingBack,
    /// Could not reach its local safe state (fail-to-reset).
    FailedReset,
}

impl AgentStateTag {
    /// Stable lowercase name (used by the JSONL codec).
    pub fn as_str(self) -> &'static str {
        match self {
            AgentStateTag::Running => "running",
            AgentStateTag::Resetting => "resetting",
            AgentStateTag::Safe => "safe",
            AgentStateTag::Adapted => "adapted",
            AgentStateTag::Resuming => "resuming",
            AgentStateTag::RollingBack => "rolling_back",
            AgentStateTag::FailedReset => "failed_reset",
        }
    }

    /// Inverse of [`AgentStateTag::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "running" => AgentStateTag::Running,
            "resetting" => AgentStateTag::Resetting,
            "safe" => AgentStateTag::Safe,
            "adapted" => AgentStateTag::Adapted,
            "resuming" => AgentStateTag::Resuming,
            "rolling_back" => AgentStateTag::RollingBack,
            "failed_reset" => AgentStateTag::FailedReset,
            _ => return None,
        })
    }
}

/// Manager-side protocol phases (mirrors `sada_proto::ManagerPhase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManagerPhaseTag {
    /// No adaptation in flight.
    Running,
    /// Driving a step: resets sent, waiting for the adapt-done barrier.
    Adapting,
    /// Adapt-done barrier met: resumes sent, waiting for resume-done.
    Resuming,
    /// Undoing the current step after a failure.
    RollingBack,
    /// Recovery ladder exhausted away from the source: waiting for the user.
    GaveUp,
}

impl ManagerPhaseTag {
    /// Stable lowercase name (used by the JSONL codec).
    pub fn as_str(self) -> &'static str {
        match self {
            ManagerPhaseTag::Running => "running",
            ManagerPhaseTag::Adapting => "adapting",
            ManagerPhaseTag::Resuming => "resuming",
            ManagerPhaseTag::RollingBack => "rolling_back",
            ManagerPhaseTag::GaveUp => "gave_up",
        }
    }

    /// Inverse of [`ManagerPhaseTag::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "running" => ManagerPhaseTag::Running,
            "adapting" => ManagerPhaseTag::Adapting,
            "resuming" => ManagerPhaseTag::Resuming,
            "rolling_back" => ManagerPhaseTag::RollingBack,
            "gave_up" => ManagerPhaseTag::GaveUp,
            _ => return None,
        })
    }
}

/// What the adaptation protocol observed. Steps are the raw `StepId` value;
/// agents are actor indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoEvent {
    /// An agent state machine moved between states.
    AgentState {
        /// State before the triggering event.
        from: AgentStateTag,
        /// State after.
        to: AgentStateTag,
        /// Step the agent was working on, if any.
        step: Option<u64>,
    },
    /// The manager state machine moved between phases.
    ManagerPhase {
        /// Phase before the triggering event.
        from: ManagerPhaseTag,
        /// Phase after.
        to: ManagerPhaseTag,
        /// Step in flight, if any.
        step: Option<u64>,
    },
    /// The manager opened a step and sent its resets.
    StepStarted {
        /// The step's identifier.
        step: u64,
        /// True when only one process participates.
        solo: bool,
        /// Number of participating agents.
        participants: u32,
    },
    /// All resume-dones arrived; the step's configuration became durable.
    StepCommitted {
        /// The committed step.
        step: u64,
    },
    /// A manager retry timeout fired.
    TimeoutFired {
        /// The phase the manager was in when the timer fired.
        phase: ManagerPhaseTag,
        /// Step in flight, if any.
        step: Option<u64>,
        /// Consecutive timeouts so far in this phase (1-based).
        retries: u32,
    },
    /// The manager retransmitted to lagging agents after a timeout.
    RetrySent {
        /// The step being retried.
        step: u64,
        /// How many agents were re-messaged.
        resends: u32,
    },
    /// The manager abandoned the step and ordered rollbacks.
    RollbackIssued {
        /// The step being rolled back.
        step: u64,
    },
    /// A restarted agent announced itself and the manager resynchronized it.
    RejoinReceived {
        /// The rejoining agent's actor index.
        agent: u32,
        /// The last step the agent had durably completed, if any.
        last_completed: Option<u64>,
    },
    /// The adaptation resolved (success, abort, or give-up).
    OutcomeReached {
        /// Target configuration reached.
        success: bool,
        /// Stranded at a safe intermediate configuration awaiting the user.
        gave_up: bool,
        /// Steps committed along the way.
        steps_committed: u64,
    },
    /// The manager appended a record to its write-ahead adaptation journal.
    JournalAppended {
        /// 0-based sequence number of the appended record.
        seq: u64,
    },
    /// A restarted manager incarnation rebuilt itself from its journal.
    ManagerRestored {
        /// Number of journal records replayed.
        records: u64,
        /// The phase the replay landed in.
        phase: ManagerPhaseTag,
        /// Step in flight after the replay, if any.
        step: Option<u64>,
    },
    /// The restored manager probed an agent's state during reconciliation.
    StateQueried {
        /// The probed agent's index.
        agent: u32,
    },
    /// An agent answered a reconciliation probe.
    StateReported {
        /// The reporting agent's index.
        agent: u32,
        /// Step the agent is engaged in, if any.
        engaged: Option<u64>,
        /// True when the engaged step's in-action already ran.
        adapted: bool,
        /// True when the agent failed to reset for the engaged step.
        failed: bool,
        /// Last step the agent durably completed, if any.
        last_completed: Option<u64>,
    },
}

/// What the temporal monitor observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalEvent {
    /// A response obligation opened (e.g. a segment started).
    ObligationOpened {
        /// The typed obligation key.
        key: ObligationKey,
        /// Correlation key (the segment's CID).
        cid: u64,
    },
    /// A response obligation was discharged (e.g. a segment ended).
    ObligationDischarged {
        /// The typed obligation key.
        key: ObligationKey,
        /// Correlation key (the segment's CID).
        cid: u64,
    },
    /// The monitor identified a safe state at audit-log index `index`.
    SafePoint {
        /// Position in the consumed event stream.
        index: u64,
    },
}

/// What the adaptation control plane's scheduler observed. These events
/// carry the session explicitly (besides the [`Event::session`] stamp) so a
/// decoded trace line is self-describing even in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// An adaptation request entered the control plane and had its
    /// collaborative-set scope computed.
    SessionSubmitted {
        /// The session's identifier.
        session: u64,
        /// Number of lock resources (components + hosting agents) in scope.
        resources: u32,
    },
    /// The scope-lock manager granted the session's scope and its embedded
    /// manager core started planning/executing.
    SessionAdmitted {
        /// The session's identifier.
        session: u64,
        /// Microseconds spent queued behind conflicting sessions (0 when
        /// admitted immediately).
        queued_for: u64,
    },
    /// The session's scope conflicted with a held or earlier-queued scope;
    /// it joined the wait queue.
    SessionQueued {
        /// The session's identifier.
        session: u64,
        /// 0-based position in the wait queue at enqueue time.
        position: u32,
    },
    /// A queued session was cancelled before ever being admitted.
    SessionCancelled {
        /// The session's identifier.
        session: u64,
    },
    /// The session reached an outcome and released its scope.
    SessionDone {
        /// The session's identifier.
        session: u64,
        /// Target configuration reached.
        success: bool,
        /// Stranded at a safe intermediate configuration awaiting the user.
        gave_up: bool,
    },
    /// A restarted control plane rebuilt its sessions from the fleet
    /// journal.
    ControlRestored {
        /// In-flight sessions restored with live manager cores.
        active: u32,
        /// Queued sessions re-admitted to the wait queue.
        queued: u32,
    },
    /// A session's plan query was answered from the fleet-wide plan cache
    /// (a structurally identical scope/source/target was planned before).
    PlanCacheHit {
        /// The session whose query hit.
        session: u64,
    },
    /// A session's plan query missed the cache and was planned fresh (the
    /// result was then cached for later sessions).
    PlanCacheMiss {
        /// The session whose query missed.
        session: u64,
    },
    /// The plan cache evicted its least-recently-used entry (or was
    /// invalidated) to make room for a newer plan.
    PlanCacheEvicted {
        /// The session whose insertion (or invalidation) forced the
        /// eviction.
        session: u64,
    },
    /// The bulkhead's waiting room was full: the control plane shed a
    /// session (the lowest-priority, oldest waiter) instead of queueing
    /// without bound.
    SessionShed {
        /// The shed session's identifier.
        session: u64,
        /// Microseconds the victim had spent waiting (0 when the newcomer
        /// itself was shed on arrival).
        waited_us: u64,
        /// Backpressure hint returned to the submitter: microseconds after
        /// which a resubmission has a fair chance of being admitted (derived
        /// from the bulkhead's occupancy and observed session latency).
        retry_after_us: u64,
    },
    /// A session was admitted into a scope whose agent sits behind an open
    /// circuit breaker; rather than hanging on suppressed sends while
    /// holding its locks, the session terminated with a journaled outcome.
    SessionRejected {
        /// The rejected session's identifier.
        session: u64,
        /// Dense index of the gated agent that forced the rejection.
        agent: u32,
    },
    /// An agent's circuit breaker tripped open: it stops absorbing
    /// retransmissions until a half-open probe succeeds.
    BreakerOpened {
        /// Dense agent index within the hosting control plane.
        agent: u32,
        /// The open hold before the next probe, in microseconds (doubles,
        /// capped, on every failed probe).
        cooldown_us: u64,
    },
    /// An open breaker's cooldown elapsed; the gated send went out as the
    /// single half-open probe.
    BreakerProbed {
        /// Dense agent index within the hosting control plane.
        agent: u32,
    },
    /// The agent answered while its breaker was open or half-open; traffic
    /// flows again.
    BreakerClosed {
        /// Dense agent index within the hosting control plane.
        agent: u32,
    },
    /// A scope's circuit breaker tripped open: sessions over that exact
    /// scope fail fast at admission until a half-open probe session
    /// succeeds. Disjoint scopes — even ones sharing an agent — keep
    /// flowing.
    ScopeBreakerOpened {
        /// FNV-1a key of the scope's sorted lock-resource set.
        scope: u64,
        /// The open hold before the next probe session, in microseconds.
        cooldown_us: u64,
    },
    /// An open scope breaker's cooldown elapsed; the admitted session runs
    /// as the single half-open probe for that scope.
    ScopeBreakerProbed {
        /// FNV-1a key of the scope's sorted lock-resource set.
        scope: u64,
    },
    /// A session over the scope succeeded while its breaker was open or
    /// half-open; admissions into the scope flow again.
    ScopeBreakerClosed {
        /// FNV-1a key of the scope's sorted lock-resource set.
        scope: u64,
    },
    /// A session was admitted into a scope whose own circuit breaker is
    /// open; it terminated immediately with a journaled outcome instead of
    /// convoying the flapping scope.
    ScopeRejected {
        /// The rejected session's identifier.
        session: u64,
        /// FNV-1a key of the gating scope.
        scope: u64,
    },
    /// An agent's RTT estimator moved its retransmission timeout far enough
    /// (≥ a quarter relative to the last report) to be worth recording.
    TimeoutAdapted {
        /// Dense agent index within the hosting control plane.
        agent: u32,
        /// Smoothed round-trip time, in microseconds.
        srtt_us: u64,
        /// Resulting retransmission timeout, in microseconds.
        rto_us: u64,
    },
    /// Chaos injection destroyed a cross-shard fabric message at the sender.
    FabricDropped {
        /// Sending endpoint (shard tag minus one).
        src: u32,
        /// Destination endpoint.
        dst: u32,
        /// Per-edge sequence number of the destroyed envelope.
        seq: u64,
    },
    /// Chaos injection duplicated a cross-shard fabric message; the copy
    /// arrives one quantum later under its own sequence number.
    FabricDuplicated {
        /// Sending endpoint.
        src: u32,
        /// Destination endpoint.
        dst: u32,
        /// Sequence number of the original envelope.
        seq: u64,
    },
    /// Chaos injection delayed a cross-shard fabric message by a burst of
    /// arrival quanta (delays reorder it past later traffic on the edge).
    FabricDelayed {
        /// Sending endpoint.
        src: u32,
        /// Destination endpoint.
        dst: u32,
        /// Sequence number of the delayed envelope.
        seq: u64,
        /// Arrival quanta added.
        quanta: u32,
    },
    /// The global tier's retransmission ladder re-sent an unacknowledged
    /// lock-handshake message over the fabric.
    FabricRetransmit {
        /// The straddling session whose handshake is being retried.
        session: u64,
        /// The unresponsive region.
        region: u32,
        /// 1-based retransmission attempt.
        attempt: u32,
    },
    /// A region observed a lock request from a newer global-tier incarnation
    /// for a slice it still holds on behalf of a dead incarnation, and
    /// transferred the lease instead of orphaning it.
    LeaseReclaimed {
        /// The straddling session whose lease moved.
        session: u64,
        /// The reclaiming region.
        region: u32,
        /// The new (reclaiming) global-tier epoch.
        epoch: u64,
    },
    /// The global tier exhausted its retransmission ladder against an
    /// unreachable region and resolved the straddling session with a clean
    /// `Rejected` outcome instead of letting it vanish.
    StraddlerAbandoned {
        /// The abandoned session.
        session: u64,
        /// The unreachable region.
        region: u32,
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
    /// Announces the adaptation domain a control plane is running, once at
    /// boot. Video worlds stay silent (their streams predate the tag and
    /// must keep their fingerprints); generated domains tag every stream.
    DomainTagged {
        /// Stable domain tag (`Domain::tag`): 1 serverless, 2 IaaS.
        domain: u32,
        /// Stable objective tag (`Objective::tag`): 0 ms, 1 watts.
        objective: u32,
    },
    /// A re-seized foreign hold's lease ran out with no word from the
    /// global tier; the region garbage-collected the hold, released its
    /// lock-table entry, and cascaded the grant to whoever was queued.
    LeaseExpired {
        /// The straddling session whose hold was collected.
        session: u64,
        /// The region that expired the lease.
        region: u32,
    },
}

/// What the planning layer observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanEvent {
    /// The manager selected an adaptation path to execute.
    PathSelected {
        /// 1-based rank among the k-shortest candidates tried so far.
        rank: u32,
        /// Number of steps on the selected path.
        steps: u32,
        /// The path's total cost.
        cost: u64,
    },
    /// No path to the goal remains untried.
    PathsExhausted {
        /// True when the manager falls back to returning to the source.
        returning_to_source: bool,
    },
}
