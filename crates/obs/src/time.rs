//! Virtual time for the discrete-event simulation.
//!
//! These types live in `sada-obs` (the bottom of the dependency stack) so
//! that every layer — the simulator, the protocol cores, the audit log, the
//! temporal monitor — can stamp events with the same clock. `sada-simnet`
//! re-exports them, so downstream code keeps using `sada_simnet::SimTime`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, measured in microseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It only ever
/// moves forward; the simulator advances it to the timestamp of each event it
/// dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// Durations are what actors pass to timer APIs and what link configurations
/// use for latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from a millisecond count.
    ///
    /// # Panics
    ///
    /// Panics on overflow (more than ~584,000 years of simulated time).
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Scales the duration by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(3);
        let d = SimDuration::from_micros(500);
        assert_eq!((t + d).as_micros(), 3_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), SimDuration::ZERO, "subtraction saturates");
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
    }

    #[test]
    fn display_is_millis() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.000ms");
    }

    #[test]
    fn saturating_mul_caps() {
        let d = SimDuration::from_micros(u64::MAX);
        assert_eq!(d.saturating_mul(2).as_micros(), u64::MAX);
        assert_eq!(SimDuration::from_millis(2).saturating_mul(3).as_micros(), 6_000);
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }
}
