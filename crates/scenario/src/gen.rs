//! The seeded generator: invariant families, domain mixes, traffic.
//!
//! A generated world is a [`WorldSpec`] built cluster by cluster. Each
//! cluster draws one **invariant family**:
//!
//! * **one_of chain** — `k` exclusive modes in a row; adaptation walks the
//!   chain one replace-step at a time (serverless codec ladders, IaaS
//!   migration hops).
//! * **implication cluster** — an exclusive anchor pair where the alternate
//!   anchor drags sidecar components along via `<=>`; adaptation is one
//!   atomic multi-component swap.
//! * **xor ring** — an even cycle of `r_i ^ r_{i+1}` parity constraints
//!   with exactly two satisfying assignments (evens or odds); adaptation
//!   swaps the whole ring at once.
//!
//! Families confine their invariants and actions to the cluster's own
//! components, so every cluster is an independent collaborative set — the
//! property the fleet's region partitioning and plan-cache normalizer
//! assume, and the property [`crate::validate`] re-checks per cluster.

use sada_fleet::{
    ActionSpec, ClusterSpec, CompSpec, Domain, FleetScenario, Objective, SessionSpec, WorldSpec,
};
use sada_simnet::SimDuration;

use crate::rng::SplitMix64;

/// How session submission instants are spread over virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficProfile {
    /// Poisson arrivals: exponential gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap in microseconds.
        mean_gap_us: u64,
    },
    /// Synchronized waves: sessions split evenly over `waves` bursts with
    /// a small jitter inside each burst.
    Burst {
        /// Number of bursts (at least 1).
        waves: u64,
        /// Gap between burst fronts in microseconds.
        wave_gap_us: u64,
    },
}

/// Everything that names a generated scenario. `(seed, rest)` is the full
/// identity: equal configs generate byte-identical scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Generator seed.
    pub seed: u64,
    /// Which domain's cluster mix and cost model to draw from.
    pub domain: Domain,
    /// Which action cost column MAP minimizes.
    pub objective: Objective,
    /// Number of clusters (flip units) in the world.
    pub clusters: usize,
    /// Number of adaptation sessions to emit.
    pub sessions: usize,
    /// Submission-time distribution.
    pub traffic: TrafficProfile,
    /// Percentage of sessions that flip two adjacent clusters at once
    /// (region straddlers under a sharded run).
    pub straddler_pct: u64,
}

impl ScenarioConfig {
    /// A serverless codec-fleet scenario: many small clusters, Poisson
    /// invocation-driven reconfiguration, latency objective.
    pub fn serverless(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            domain: Domain::Serverless,
            objective: Objective::LatencyMs,
            clusters: 8,
            sessions: 24,
            traffic: TrafficProfile::Poisson { mean_gap_us: 50_000 },
            straddler_pct: 15,
        }
    }

    /// An IaaS migration scenario: fewer, heavier clusters, maintenance
    /// waves, latency objective.
    pub fn iaas(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            domain: Domain::Iaas,
            objective: Objective::LatencyMs,
            clusters: 6,
            sessions: 18,
            traffic: TrafficProfile::Burst { waves: 3, wave_gap_us: 400_000 },
            straddler_pct: 10,
        }
    }

    /// The IaaS scenario with MAP minimizing watts instead of
    /// milliseconds.
    pub fn iaas_energy(seed: u64) -> Self {
        ScenarioConfig { objective: Objective::EnergyWatts, ..Self::iaas(seed) }
    }
}

/// A generated scenario: the world spec plus the session workload. The
/// seed rides along so reports and replay commands can name the universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedScenario {
    /// The seed this scenario was generated from.
    pub seed: u64,
    /// The declarative world.
    pub spec: WorldSpec,
    /// The adaptation workload.
    pub sessions: Vec<SessionSpec>,
}

impl GeneratedScenario {
    /// Wraps the scenario as a fleet driver scenario (sim seed = generator
    /// seed, library default timing).
    pub fn fleet(&self) -> FleetScenario {
        let mut f = FleetScenario::with_world(self.spec.clone(), self.sessions.clone());
        f.seed = self.seed;
        f
    }
}

/// Generates a scenario and runs the validity pass over it. The generator
/// guarantees the pass holds by construction; the panic on failure is a
/// generator bug, never a caller error.
pub fn generate(config: &ScenarioConfig) -> GeneratedScenario {
    assert!(config.clusters > 0, "a scenario needs at least one cluster");
    // Fold domain and objective into the stream so the same numeric seed
    // names distinct universes per domain.
    let mut rng = SplitMix64::new(
        config
            .seed
            .wrapping_add(u64::from(config.domain.tag()) << 56)
            .wrapping_add(u64::from(config.objective.tag()) << 48),
    );
    let mut b = Build::default();
    for g in 0..config.clusters {
        match config.domain {
            Domain::Serverless => serverless_cluster(&mut b, &mut rng, g),
            Domain::Iaas => iaas_cluster(&mut b, &mut rng, g),
            Domain::Video => video_cluster(&mut b, g),
        }
    }
    let spec = WorldSpec {
        domain: config.domain,
        objective: config.objective,
        comps: b.comps,
        invariants: b.invariants,
        actions: b.actions,
        clusters: b.clusters,
    };
    let sessions = emit_sessions(config, &mut rng);
    let scenario = GeneratedScenario { seed: config.seed, spec, sessions };
    if let Err(why) = crate::validate(&scenario) {
        panic!("generator emitted an invalid scenario: {why}");
    }
    scenario
}

/// In-progress world: the four `WorldSpec` tables plus the process cursor.
#[derive(Default)]
struct Build {
    comps: Vec<CompSpec>,
    invariants: Vec<String>,
    actions: Vec<ActionSpec>,
    clusters: Vec<ClusterSpec>,
    next_proc: usize,
}

impl Build {
    /// Declares a component on process `self.next_proc + proc_off` and
    /// returns its index.
    fn comp(&mut self, name: String, proc_off: usize) -> usize {
        let ix = self.comps.len();
        self.comps.push(CompSpec { name, process: self.next_proc + proc_off });
        ix
    }

    /// Seals the cluster's process block: `used` processes were allocated.
    fn seal_procs(&mut self, used: usize) {
        self.next_proc += used;
    }
}

/// Per-action cost draw: `(cost_ms, cost_watts)`.
type CostModel<'a> = dyn FnMut(&mut SplitMix64) -> (u64, u64) + 'a;

// ---------------------------------------------------------------------------
// Invariant families
// ---------------------------------------------------------------------------

/// `one_of` chain: `k` exclusive modes, adjacent swap actions both ways.
/// `proc_stride` spaces the modes over hosting processes (1 = one process
/// per mode, 2 = modes pair up on shared hosts).
fn chain_cluster(
    b: &mut Build,
    rng: &mut SplitMix64,
    names: &[String],
    share_hosts: bool,
    cost: &mut CostModel,
) {
    let k = names.len();
    assert!(k >= 2, "a chain needs at least two modes");
    let modes: Vec<usize> = names
        .iter()
        .enumerate()
        .map(|(j, n)| b.comp(n.clone(), if share_hosts { j / 2 } else { j }))
        .collect();
    let list = names.join(", ");
    b.invariants.push(format!("one_of({list})"));
    for j in 0..k - 1 {
        let (ms, watts) = cost(rng);
        b.actions.push(ActionSpec {
            name: format!("{}__to__{}", names[j], names[j + 1]),
            removes: vec![modes[j]],
            adds: vec![modes[j + 1]],
            cost_ms: ms,
            cost_watts: watts,
        });
        let (ms, watts) = cost(rng);
        b.actions.push(ActionSpec {
            name: format!("{}__to__{}", names[j + 1], names[j]),
            removes: vec![modes[j + 1]],
            adds: vec![modes[j]],
            cost_ms: ms,
            cost_watts: watts,
        });
    }
    b.clusters.push(ClusterSpec {
        comps: modes.clone(),
        on_false: vec![modes[0]],
        on_true: vec![modes[k - 1]],
    });
    b.seal_procs(if share_hosts { k.div_ceil(2) } else { k });
}

/// Implication cluster: exclusive anchors `a`/`b`, with sidecars welded to
/// `b` by `<=>`; one atomic multi-component swap per direction.
fn implication_cluster(
    b: &mut Build,
    rng: &mut SplitMix64,
    anchor_a: String,
    anchor_b: String,
    sidecars: Vec<String>,
    cost: &mut CostModel,
) {
    let a = b.comp(anchor_a.clone(), 0);
    let bb = b.comp(anchor_b.clone(), 0);
    let side: Vec<usize> = sidecars.iter().map(|s| b.comp(s.clone(), 1)).collect();
    b.invariants.push(format!("one_of({anchor_a}, {anchor_b})"));
    for s in &sidecars {
        b.invariants.push(format!("({anchor_b} <=> {s})"));
    }
    let mut on_true = vec![bb];
    on_true.extend(side.iter().copied());
    let (ms, watts) = cost(rng);
    b.actions.push(ActionSpec {
        name: format!("{anchor_a}__to__{anchor_b}"),
        removes: vec![a],
        adds: on_true.clone(),
        cost_ms: ms,
        cost_watts: watts,
    });
    let (ms, watts) = cost(rng);
    b.actions.push(ActionSpec {
        name: format!("{anchor_b}__to__{anchor_a}"),
        removes: on_true.clone(),
        adds: vec![a],
        cost_ms: ms,
        cost_watts: watts,
    });
    let mut comps = vec![a, bb];
    comps.extend(side.iter().copied());
    b.clusters.push(ClusterSpec { comps, on_false: vec![a], on_true });
    b.seal_procs(2);
}

/// Xor ring: an even cycle of `r_i ^ r_{i+1}` constraints. The only two
/// satisfying assignments are "all evens" and "all odds"; one swap action
/// per direction moves between them atomically.
fn xor_ring_cluster(b: &mut Build, rng: &mut SplitMix64, names: &[String], cost: &mut CostModel) {
    let n = names.len();
    assert!(n >= 4 && n.is_multiple_of(2), "a xor ring needs an even cycle of at least 4");
    let ring: Vec<usize> =
        names.iter().enumerate().map(|(j, s)| b.comp(s.clone(), j % 2)).collect();
    for j in 0..n {
        b.invariants.push(format!("({} ^ {})", names[j], names[(j + 1) % n]));
    }
    let evens: Vec<usize> = ring.iter().copied().step_by(2).collect();
    let odds: Vec<usize> = ring.iter().copied().skip(1).step_by(2).collect();
    let (ms, watts) = cost(rng);
    b.actions.push(ActionSpec {
        name: format!("{}__ring_flip", names[0]),
        removes: evens.clone(),
        adds: odds.clone(),
        cost_ms: ms,
        cost_watts: watts,
    });
    let (ms, watts) = cost(rng);
    b.actions.push(ActionSpec {
        name: format!("{}__ring_unflip", names[0]),
        removes: odds.clone(),
        adds: evens.clone(),
        cost_ms: ms,
        cost_watts: watts,
    });
    b.clusters.push(ClusterSpec { comps: ring, on_false: evens, on_true: odds });
    b.seal_procs(2);
}

// ---------------------------------------------------------------------------
// Domain mixes
// ---------------------------------------------------------------------------

/// Serverless codec fleet: mostly codec ladders (cold-start-priced swaps),
/// some runtime+warm-pool implications, a few replica rings. Milliseconds
/// model cold starts; watts are small and flat.
fn serverless_cluster(b: &mut Build, rng: &mut SplitMix64, g: usize) {
    let mut cost = |r: &mut SplitMix64| (20 + r.below(480), 1 + r.below(30));
    let roll = rng.below(100);
    if roll < 60 {
        let k = 2 + rng.below(3) as usize;
        let names: Vec<String> = (0..k).map(|j| format!("fn{g}_codec{j}")).collect();
        chain_cluster(b, rng, &names, false, &mut cost);
    } else if roll < 85 {
        let sidecars = (0..1 + rng.below(2) as usize).map(|i| format!("fn{g}_warm{i}")).collect();
        implication_cluster(
            b,
            rng,
            format!("fn{g}_lite"),
            format!("fn{g}_full"),
            sidecars,
            &mut cost,
        );
    } else {
        let n = if rng.chance(50) { 4 } else { 6 };
        let names: Vec<String> = (0..n).map(|j| format!("fn{g}_rep{j}")).collect();
        xor_ring_cluster(b, rng, &names, &mut cost);
    }
}

/// IaaS migration: mostly migration-hop chains whose latency is VM size
/// over link throughput, some host-affinity implications, a few mirror
/// rings. Watts model host power draw.
fn iaas_cluster(b: &mut Build, rng: &mut SplitMix64, g: usize) {
    // Cluster-wide parameters: one VM image, one network path.
    let vm_gb = 2 + rng.below(62);
    let link_gbps = 1 + rng.below(24);
    let mut cost = move |r: &mut SplitMix64| {
        // Transfer time scales with image size over throughput, plus a
        // per-hop handshake; power is the hosting machine's draw.
        (5 + vm_gb * 80 / link_gbps + r.below(20), 50 + r.below(350))
    };
    let roll = rng.below(100);
    if roll < 50 {
        let hops = 3 + rng.below(2) as usize;
        let names: Vec<String> = (0..hops).map(|j| format!("vm{g}_hop{j}")).collect();
        chain_cluster(b, rng, &names, true, &mut cost);
    } else if roll < 80 {
        let sidecars =
            (0..1 + rng.below(2) as usize).map(|i| format!("vm{g}_affinity{i}")).collect();
        implication_cluster(
            b,
            rng,
            format!("vm{g}_hostA"),
            format!("vm{g}_hostB"),
            sidecars,
            &mut cost,
        );
    } else {
        let names: Vec<String> = (0..4).map(|j| format!("vm{g}_mirror{j}")).collect();
        xor_ring_cluster(b, rng, &names, &mut cost);
    }
}

/// The classic video pair, for completeness (`WorldSpec::video` already
/// covers the whole-world case).
fn video_cluster(b: &mut Build, g: usize) {
    let old = b.comp(format!("Old{g}"), 0);
    let newer = b.comp(format!("New{g}"), 1);
    b.invariants.push(format!("one_of(Old{g}, New{g})"));
    b.actions.push(ActionSpec {
        name: format!("fwd{g}"),
        removes: vec![old],
        adds: vec![newer],
        cost_ms: 1,
        cost_watts: 1,
    });
    b.actions.push(ActionSpec {
        name: format!("back{g}"),
        removes: vec![newer],
        adds: vec![old],
        cost_ms: 1,
        cost_watts: 1,
    });
    b.clusters.push(ClusterSpec {
        comps: vec![old, newer],
        on_false: vec![old],
        on_true: vec![newer],
    });
    b.seal_procs(2);
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

/// Emits the session workload: submission instants from the traffic
/// profile, flip targets alternating per cluster (so every target differs
/// from the config current when the session is granted), and occasional
/// two-cluster straddlers.
///
/// All sessions share priority 0: per-resource grant order is then
/// submission order, which keeps the per-cluster direction bookkeeping in
/// lockstep with execution regardless of cross-cluster interleaving.
fn emit_sessions(config: &ScenarioConfig, rng: &mut SplitMix64) -> Vec<SessionSpec> {
    let mut next_dir = vec![true; config.clusters];
    let mut at_us: u64 = 0;
    let mut sessions = Vec::with_capacity(config.sessions);
    for i in 0..config.sessions {
        at_us = match config.traffic {
            TrafficProfile::Poisson { mean_gap_us } => at_us + rng.exp_gap_us(mean_gap_us),
            TrafficProfile::Burst { waves, wave_gap_us } => {
                let per_wave = config.sessions.div_ceil(waves.max(1) as usize);
                (i / per_wave) as u64 * wave_gap_us + rng.below(500)
            }
        };
        let straddle = config.clusters >= 2 && rng.chance(config.straddler_pct);
        let flips = if straddle {
            let g = rng.below(config.clusters as u64 - 1) as usize;
            let d0 = next_dir[g];
            let d1 = next_dir[g + 1];
            next_dir[g] = !d0;
            next_dir[g + 1] = !d1;
            vec![(g, d0), (g + 1, d1)]
        } else {
            let g = rng.below(config.clusters as u64) as usize;
            let d = next_dir[g];
            next_dir[g] = !d;
            vec![(g, d)]
        };
        sessions.push(SessionSpec {
            id: i as u64 + 1,
            flips,
            priority: 0,
            submit_at: SimDuration::from_micros(at_us),
            cancel_at: None,
        });
    }
    sessions
}

// ---------------------------------------------------------------------------
// The energy showcase
// ---------------------------------------------------------------------------

/// A hand-pinned IaaS world where the watt-cheapest and ms-cheapest
/// adaptation paths **differ**: a direct migration is fast but runs both
/// hosts hot (10 ms, 120 W), while staging through a relay is slow but
/// cool (50 ms total, 9 W total). Under [`Objective::LatencyMs`] MAP picks
/// the one-step direct path; under [`Objective::EnergyWatts`] it picks the
/// two-step staged path. Both are safe under `one_of`.
pub fn energy_showcase(objective: Objective) -> WorldSpec {
    let act = |name: &str, from: usize, to: usize, ms: u64, watts: u64| ActionSpec {
        name: name.to_string(),
        removes: vec![from],
        adds: vec![to],
        cost_ms: ms,
        cost_watts: watts,
    };
    WorldSpec {
        domain: Domain::Iaas,
        objective,
        comps: vec![
            CompSpec { name: "vm_on_busy".into(), process: 0 },
            CompSpec { name: "vm_on_relay".into(), process: 1 },
            CompSpec { name: "vm_on_idle".into(), process: 2 },
        ],
        invariants: vec!["one_of(vm_on_busy, vm_on_relay, vm_on_idle)".into()],
        actions: vec![
            act("direct_migrate", 0, 2, 10, 120),
            act("stage_out", 0, 1, 25, 4),
            act("stage_in", 1, 2, 25, 5),
            act("direct_return", 2, 0, 10, 120),
            act("unstage_out", 2, 1, 25, 4),
            act("unstage_in", 1, 0, 25, 5),
        ],
        clusters: vec![ClusterSpec { comps: vec![0, 1, 2], on_false: vec![0], on_true: vec![2] }],
    }
}
