//! A tiny deterministic generator for scenario synthesis.
//!
//! The scenario crate cannot use the process RNG: the whole point of a
//! seeded generator is that `(seed, config)` names a universe, so two
//! sessions — or two threads — asking for seed 7 must get byte-identical
//! worlds. SplitMix64 is the standard small PRNG for this: one u64 of
//! state, full-period, and good enough avalanche behavior that consecutive
//! seeds produce unrelated universes (satellite tests pin both properties).

/// SplitMix64: one-word PRNG used for all scenario synthesis.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator at `seed`. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`). The tiny modulo bias is
    /// irrelevant for scenario synthesis and keeps the draw one-shot,
    /// which keeps generation streams easy to reason about.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is a contradiction");
        self.next_u64() % n
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// An exponentially distributed gap with the given mean, in
    /// microseconds, clamped to at least 1 µs (Poisson arrival spacing).
    /// `ln` is deterministic for a fixed platform, and scenario
    /// fingerprints are only ever compared within one process, so floating
    /// point is safe here.
    pub fn exp_gap_us(&mut self, mean_us: u64) -> u64 {
        // 53 uniform mantissa bits in (0, 1]: never ln(0).
        let u = ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        ((-u.ln()) * mean_us as f64).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn draws_stay_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let g = r.exp_gap_us(1000);
            assert!(g >= 1);
        }
        // The exponential mean should land in the right ballpark.
        let mut r = SplitMix64::new(3);
        let total: u64 = (0..4096).map(|_| r.exp_gap_us(1000)).sum();
        let mean = total / 4096;
        assert!((600..1600).contains(&mean), "mean {mean}");
    }
}
