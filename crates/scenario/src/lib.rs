//! # sada-scenario — seeded scenario generation for the adaptation fleet
//!
//! The fleet crates were grown against one world: the paper's video
//! multicast, cloned per group. That is a fine correctness anchor and a
//! terrible generality argument — every invariant is `one_of(Old, New)`,
//! every plan is one step, every cluster is shaped the same. This crate
//! removes the monoculture: it **generates** component universes from a
//! seed and feeds them through the unchanged safety machinery.
//!
//! * [`SplitMix64`] — the deterministic stream every draw comes from; a
//!   `(seed, config)` pair names a universe, byte for byte.
//! * [`generate`] — builds a [`GeneratedScenario`]: a
//!   [`WorldSpec`](sada_fleet::WorldSpec) drawn from per-cluster
//!   *invariant families* (`one_of` chains, implication clusters, xor
//!   rings) with heterogeneous two-column action costs, plus a session
//!   workload over Poisson or burst traffic with occasional two-cluster
//!   straddler flips.
//! * Two domains beyond the video world: [`ScenarioConfig::serverless`]
//!   (per-function codec ladders hot-swapped under invocation load,
//!   cold-start-priced) and [`ScenarioConfig::iaas`] (live VM migration
//!   hops with network-throughput-dependent latencies and host power
//!   draws; [`ScenarioConfig::iaas_energy`] makes MAP minimize watts).
//! * [`validate`] — the validity pass every generated scenario must hold:
//!   safe initial configuration, confined collaborative sets, normalizer
//!   acceptance, and goal reachability **both directions** through the
//!   same scoped lazy planner the control plane uses.
//! * [`encode_scenario`] / [`parse_scenario`] — a canonical text codec;
//!   byte equality of encodings is the determinism witness the satellite
//!   proptests pin, and the text form is the replay artifact
//!   EXPERIMENTS.md quotes.
//! * [`energy_showcase`] — a hand-pinned world where the watt-cheapest
//!   and ms-cheapest plans differ, proving the objective column reaches
//!   plan selection.

mod codec;
mod gen;
mod rng;
mod validate;

pub use codec::{encode_scenario, parse_scenario};
pub use gen::{energy_showcase, generate, GeneratedScenario, ScenarioConfig, TrafficProfile};
pub use rng::SplitMix64;
pub use validate::validate;

#[cfg(test)]
mod tests {
    use super::*;
    use sada_fleet::{Domain, FleetWorld, Objective};

    #[test]
    fn serverless_universe_generates_and_validates() {
        let s = generate(&ScenarioConfig::serverless(7));
        assert_eq!(s.spec.domain, Domain::Serverless);
        assert_eq!(s.spec.clusters.len(), 8);
        assert_eq!(s.sessions.len(), 24);
        assert!(validate(&s).is_ok());
        // Heterogeneous costs: the action table is not flat.
        let costs: std::collections::BTreeSet<u64> =
            s.spec.actions.iter().map(|a| a.cost_ms).collect();
        assert!(costs.len() > 1, "cold-start costs should vary");
        // Submission instants strictly increase under Poisson traffic.
        for w in s.sessions.windows(2) {
            assert!(w[0].submit_at < w[1].submit_at);
        }
    }

    #[test]
    fn iaas_universe_generates_and_validates() {
        let s = generate(&ScenarioConfig::iaas(11));
        assert_eq!(s.spec.domain, Domain::Iaas);
        assert_eq!(s.spec.clusters.len(), 6);
        assert!(validate(&s).is_ok());
        let w = FleetWorld::from_spec(s.spec.clone());
        // IaaS clusters share hosting processes: fewer hosts than comps.
        assert!(w.model.process_count() < s.spec.comps.len());
    }

    #[test]
    fn energy_objective_selects_the_watt_column() {
        let s = generate(&ScenarioConfig::iaas_energy(11));
        assert_eq!(s.spec.objective, Objective::EnergyWatts);
        let w = FleetWorld::from_spec(s.spec.clone());
        for (a, spec) in w.actions.iter().zip(&s.spec.actions) {
            assert_eq!(a.cost(), spec.cost_watts.max(1));
        }
    }

    #[test]
    fn codec_round_trips_generated_scenarios() {
        for cfg in
            [ScenarioConfig::serverless(1), ScenarioConfig::iaas(2), ScenarioConfig::iaas_energy(3)]
        {
            let s = generate(&cfg);
            let text = encode_scenario(&s);
            let back = parse_scenario(&text).expect("canonical text parses");
            assert_eq!(back, s);
            assert_eq!(encode_scenario(&back), text, "re-encoding is byte-stable");
        }
    }

    #[test]
    fn codec_rejects_mangled_input() {
        let s = generate(&ScenarioConfig::serverless(5));
        let text = encode_scenario(&s);
        assert!(parse_scenario(&text.replace("sada-scenario v1", "v0")).is_err());
        assert!(parse_scenario(&text.replace("domain serverless", "domain lambda")).is_err());
        assert!(parse_scenario("sada-scenario v1\nseed 1\n").is_err(), "domain is mandatory");
    }

    #[test]
    fn straddler_sessions_appear_and_stay_adjacent() {
        let s = generate(&ScenarioConfig::serverless(13));
        let straddlers: Vec<_> = s.sessions.iter().filter(|x| x.flips.len() == 2).collect();
        assert!(!straddlers.is_empty(), "15% straddler rate over 24 sessions");
        for x in &straddlers {
            assert_eq!(x.flips[0].0 + 1, x.flips[1].0, "straddlers span adjacent clusters");
        }
    }

    #[test]
    fn single_cluster_worlds_have_no_straddlers() {
        let cfg = ScenarioConfig { clusters: 1, sessions: 6, ..ScenarioConfig::serverless(21) };
        let s = generate(&cfg);
        assert!(s.sessions.iter().all(|x| x.flips.len() == 1));
        assert!(validate(&s).is_ok());
    }
}
