//! The validity pass: every scenario handed to the fleet must already be
//! known-good.
//!
//! [`validate`] re-establishes, from first principles, the properties the
//! generator promises by construction — it never trusts the construction:
//!
//! 1. the initial configuration satisfies the compiled invariant set;
//! 2. every cluster is a *confined* collaborative set (its scope expands
//!    to exactly its own components — no invariant or action leaks out);
//! 3. every cluster's scope is accepted by the plan cache's
//!    [`ScopeNormalizer`] (in-scope invariants normalize cleanly);
//! 4. every emitted goal is reachable: each cluster's `on_true` mode can
//!    be planned to from the boot mode *and back*, through the same
//!    scope-restricted lazy planner the control plane uses, and every
//!    step of those plans is invariant-safe;
//! 5. the session workload is well-formed (unique nonzero ids, in-range
//!    non-duplicate flips).
//!
//! Structurally malformed specs (duplicate names, out-of-range indices,
//! components outside any cluster) panic inside
//! [`FleetWorld::from_spec`] — those are generator bugs, not scenario
//! properties, and a `Result` cannot make them meaningful.

use std::collections::BTreeSet;
use std::rc::Rc;

use sada_fleet::{FleetWorld, ScopeNormalizer, ScopedLazyPlanner};
use sada_proto::AdaptationPlanner;

use crate::gen::GeneratedScenario;

/// Checks the five validity properties; `Err` carries the first failure.
pub fn validate(scenario: &GeneratedScenario) -> Result<(), String> {
    let world = Rc::new(FleetWorld::from_spec(scenario.spec.clone()));
    let init = world.initial_config();
    if !world.inv.satisfied_by(&init) {
        return Err("initial configuration violates the invariants".into());
    }
    for g in 0..world.groups {
        let scope = world.scope_comps(&[(g, true)]);
        let own: BTreeSet<usize> = world.cluster_comps(g).iter().copied().collect();
        let got: BTreeSet<usize> = scope.iter().map(|c| c.index()).collect();
        if got != own {
            return Err(format!(
                "cluster {g} is not confined: scope {got:?} != cluster components {own:?}"
            ));
        }
        // The same scoped action filter the control plane applies.
        let scoped_ixs = world.search.scoped_action_ixs(&scope);
        let scoped = scoped_ixs.iter().map(|&ix| &world.actions[ix as usize]);
        if ScopeNormalizer::from_compiled(&world.inv, world.search.compiled(), &scope, scoped)
            .is_none()
        {
            return Err(format!("cluster {g}: scope does not normalize (cache-ineligible)"));
        }
        // Reachability, both directions, with per-step safety.
        let mut planner = ScopedLazyPlanner::new(Rc::clone(&world), &scope);
        let there = world.target_for(&init, &[(g, true)]);
        for (label, src, dst) in [("forward", &init, &there), ("backward", &there, &init)] {
            let paths = planner.paths(src, dst, 1);
            let Some(path) = paths.first() else {
                return Err(format!("cluster {g}: {label} goal unreachable"));
            };
            if !path.is_well_formed() {
                return Err(format!("cluster {g}: {label} plan is malformed"));
            }
            for step in &path.steps {
                if !world.inv.satisfied_by(&step.to) {
                    return Err(format!("cluster {g}: {label} plan passes through unsafe state"));
                }
            }
        }
    }
    let mut ids = BTreeSet::new();
    for s in &scenario.sessions {
        if s.id == 0 {
            return Err("session id 0 is reserved for solo runs".into());
        }
        if !ids.insert(s.id) {
            return Err(format!("duplicate session id {}", s.id));
        }
        if s.flips.is_empty() {
            return Err(format!("session {} flips nothing", s.id));
        }
        let mut groups = BTreeSet::new();
        for &(g, _) in &s.flips {
            if g >= world.groups {
                return Err(format!("session {}: cluster {g} out of range", s.id));
            }
            if !groups.insert(g) {
                return Err(format!("session {}: cluster {g} flipped twice", s.id));
            }
        }
    }
    Ok(())
}
