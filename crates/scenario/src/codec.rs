//! A line-oriented text codec for generated scenarios.
//!
//! The codec serves two masters. First, **determinism evidence**: the
//! satellite proptests pin "same seed → byte-identical text", and a
//! canonical text form is the cheapest byte-exact witness of a whole
//! universe (names, invariants, both cost columns, session schedule).
//! Second, **replay**: EXPERIMENTS.md quotes `scenario` files so a run can
//! be reproduced from the artifact alone, without rerunning the generator.
//!
//! The grammar is one record per line, first token the record type:
//!
//! ```text
//! sada-scenario v1
//! seed <u64>
//! domain <video|serverless|iaas> <latency_ms|energy_watts>
//! comp <name> <process>
//! inv <invariant source ...>
//! action <name> <cost_ms> <cost_watts> <removes-csv|-> <adds-csv|->
//! cluster <comps-csv> <on_false-csv|-> <on_true-csv|->
//! session <id> <priority> <submit_us> <cancel_us|-> <flips g:t|g:f csv>
//! ```
//!
//! Component names are identifier-shaped (the invariant parser enforces
//! `[A-Za-z_][A-Za-z0-9_]*`), so whitespace splitting is unambiguous;
//! `inv` is the only record whose payload may contain spaces and it is
//! therefore the line's tail.

use sada_fleet::{ActionSpec, ClusterSpec, CompSpec, Domain, Objective, SessionSpec, WorldSpec};
use sada_simnet::SimDuration;

use crate::gen::GeneratedScenario;

const HEADER: &str = "sada-scenario v1";

fn csv(ixs: &[usize]) -> String {
    if ixs.is_empty() {
        return "-".to_string();
    }
    ixs.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")
}

/// Renders a scenario in the canonical text form. Encoding is a pure
/// function of the scenario value, so equal scenarios produce identical
/// bytes — the determinism tests rely on exactly this.
pub fn encode_scenario(s: &GeneratedScenario) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("seed {}\n", s.seed));
    out.push_str(&format!("domain {} {}\n", s.spec.domain.name(), s.spec.objective.name()));
    for c in &s.spec.comps {
        out.push_str(&format!("comp {} {}\n", c.name, c.process));
    }
    for inv in &s.spec.invariants {
        out.push_str(&format!("inv {inv}\n"));
    }
    for a in &s.spec.actions {
        out.push_str(&format!(
            "action {} {} {} {} {}\n",
            a.name,
            a.cost_ms,
            a.cost_watts,
            csv(&a.removes),
            csv(&a.adds)
        ));
    }
    for cl in &s.spec.clusters {
        out.push_str(&format!(
            "cluster {} {} {}\n",
            csv(&cl.comps),
            csv(&cl.on_false),
            csv(&cl.on_true)
        ));
    }
    for sess in &s.sessions {
        let cancel = match sess.cancel_at {
            Some(d) => d.as_micros().to_string(),
            None => "-".to_string(),
        };
        let flips = sess
            .flips
            .iter()
            .map(|&(g, d)| format!("{g}:{}", if d { 't' } else { 'f' }))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "session {} {} {} {} {}\n",
            sess.id,
            sess.priority,
            sess.submit_at.as_micros(),
            cancel,
            flips
        ));
    }
    out
}

fn parse_csv(field: &str, what: &str) -> Result<Vec<usize>, String> {
    if field == "-" {
        return Ok(Vec::new());
    }
    field
        .split(',')
        .map(|t| t.parse::<usize>().map_err(|_| format!("bad {what} index {t:?}")))
        .collect()
}

fn parse_u64(field: &str, what: &str) -> Result<u64, String> {
    field.parse::<u64>().map_err(|_| format!("bad {what} {field:?}"))
}

/// Parses the canonical text form back into a scenario. Round-trips with
/// [`encode_scenario`] byte-for-byte: `encode(parse(encode(s))) ==
/// encode(s)` and `parse(encode(s)) == s`.
pub fn parse_scenario(text: &str) -> Result<GeneratedScenario, String> {
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err(format!("missing header {HEADER:?}"));
    }
    let mut seed = None;
    let mut domain = None;
    let mut comps = Vec::new();
    let mut invariants = Vec::new();
    let mut actions = Vec::new();
    let mut clusters = Vec::new();
    let mut sessions = Vec::new();
    for (n, line) in lines.enumerate() {
        let at = n + 2;
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_once(' ').ok_or(format!("line {at}: bare record"))?;
        match kind {
            "seed" => seed = Some(parse_u64(rest, "seed")?),
            "domain" => {
                let mut f = rest.split_whitespace();
                let d = match f.next() {
                    Some("video") => Domain::Video,
                    Some("serverless") => Domain::Serverless,
                    Some("iaas") => Domain::Iaas,
                    other => return Err(format!("line {at}: unknown domain {other:?}")),
                };
                let o = match f.next() {
                    Some("latency_ms") => Objective::LatencyMs,
                    Some("energy_watts") => Objective::EnergyWatts,
                    other => return Err(format!("line {at}: unknown objective {other:?}")),
                };
                domain = Some((d, o));
            }
            "comp" => {
                let (name, proc) =
                    rest.split_once(' ').ok_or(format!("line {at}: comp needs a process"))?;
                comps.push(CompSpec {
                    name: name.to_string(),
                    process: parse_u64(proc, "process")? as usize,
                });
            }
            "inv" => invariants.push(rest.to_string()),
            "action" => {
                let f: Vec<&str> = rest.split_whitespace().collect();
                let [name, ms, watts, removes, adds] = f[..] else {
                    return Err(format!("line {at}: action needs 5 fields"));
                };
                actions.push(ActionSpec {
                    name: name.to_string(),
                    removes: parse_csv(removes, "removes")?,
                    adds: parse_csv(adds, "adds")?,
                    cost_ms: parse_u64(ms, "cost_ms")?,
                    cost_watts: parse_u64(watts, "cost_watts")?,
                });
            }
            "cluster" => {
                let f: Vec<&str> = rest.split_whitespace().collect();
                let [all, on_false, on_true] = f[..] else {
                    return Err(format!("line {at}: cluster needs 3 fields"));
                };
                clusters.push(ClusterSpec {
                    comps: parse_csv(all, "cluster comps")?,
                    on_false: parse_csv(on_false, "on_false")?,
                    on_true: parse_csv(on_true, "on_true")?,
                });
            }
            "session" => {
                let f: Vec<&str> = rest.split_whitespace().collect();
                let [id, prio, at_us, cancel, flips] = f[..] else {
                    return Err(format!("line {at}: session needs 5 fields"));
                };
                let cancel_at = match cancel {
                    "-" => None,
                    other => Some(SimDuration::from_micros(parse_u64(other, "cancel_us")?)),
                };
                let flips = flips
                    .split(',')
                    .map(|t| {
                        let (g, d) = t.split_once(':').ok_or(format!("bad flip {t:?}"))?;
                        let dir = match d {
                            "t" => true,
                            "f" => false,
                            _ => return Err(format!("bad flip direction {d:?}")),
                        };
                        Ok((parse_u64(g, "flip cluster")? as usize, dir))
                    })
                    .collect::<Result<Vec<_>, String>>()
                    .map_err(|e| format!("line {at}: {e}"))?;
                sessions.push(SessionSpec {
                    id: parse_u64(id, "session id")?,
                    flips,
                    priority: parse_u64(prio, "priority")? as u8,
                    submit_at: SimDuration::from_micros(parse_u64(at_us, "submit_us")?),
                    cancel_at,
                });
            }
            other => return Err(format!("line {at}: unknown record {other:?}")),
        }
    }
    let seed = seed.ok_or("missing seed record")?;
    let (domain, objective) = domain.ok_or("missing domain record")?;
    Ok(GeneratedScenario {
        seed,
        spec: WorldSpec { domain, objective, comps, invariants, actions, clusters },
        sessions,
    })
}
