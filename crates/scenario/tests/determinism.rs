//! Generator determinism (satellite of the scenario-generator PR).
//!
//! The generator's contract is that `(seed, config)` *names* a universe:
//! regenerating must be byte-identical, different seeds must name
//! different universes, and — because the fleet's sharded runner promises
//! thread-count invariance — running the same generated scenario at 1, 2,
//! and 4 worker threads must produce bit-for-bit identical event-stream
//! fingerprints, results, and final configurations.

use proptest::prelude::*;
use sada_fleet::{run_fleet_sharded, ShardScenario};
use sada_scenario::{encode_scenario, generate, parse_scenario, ScenarioConfig, TrafficProfile};

/// A compact config so the fingerprint legs stay fast inside proptest.
fn small(cfg: ScenarioConfig) -> ScenarioConfig {
    ScenarioConfig {
        clusters: 4,
        sessions: 8,
        traffic: TrafficProfile::Poisson { mean_gap_us: 20_000 },
        ..cfg
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed → byte-identical canonical text, which round-trips; a
    /// neighboring seed → a different universe.
    #[test]
    fn same_seed_same_bytes_new_seed_new_universe(seed in 0u64..u64::MAX) {
        for cfg in [ScenarioConfig::serverless(seed), ScenarioConfig::iaas(seed)] {
            let a = encode_scenario(&generate(&cfg));
            let b = encode_scenario(&generate(&cfg));
            prop_assert_eq!(&a, &b, "regeneration must be byte-identical");
            let parsed = parse_scenario(&a).expect("canonical text parses");
            prop_assert_eq!(&encode_scenario(&parsed), &a, "round-trip is byte-stable");

            let other = ScenarioConfig { seed: seed + 1, ..cfg };
            let c = encode_scenario(&generate(&other));
            prop_assert_ne!(&a, &c, "neighboring seeds must name distinct universes");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The full pipeline is thread-invariant: a generated scenario run
    /// sharded at 1/2/4 worker threads yields identical fingerprints,
    /// session results, and final configurations — for both new domains.
    #[test]
    fn generated_runs_are_thread_invariant(seed in 1u64..1_000_000) {
        for cfg in [small(ScenarioConfig::serverless(seed)), small(ScenarioConfig::iaas(seed))] {
            let scenario = generate(&cfg);
            let sharded = ShardScenario::new(scenario.fleet(), 2);
            let base = run_fleet_sharded(&sharded, 1);
            prop_assert!(
                base.results.iter().all(|r| r.completed_at.is_some()),
                "{}: every session must conclude",
                cfg.domain.name()
            );
            for threads in [2, 4] {
                let run = run_fleet_sharded(&sharded, threads);
                prop_assert_eq!(run.fingerprint, base.fingerprint, "threads={}", threads);
                prop_assert_eq!(&run.results, &base.results);
                prop_assert_eq!(&run.final_config, &base.final_config);
            }
        }
    }
}
