//! Pinned proof that the energy objective reaches plan selection
//! (satellite of the scenario-generator PR).
//!
//! The showcase world offers two safe routes from the busy host to the
//! idle host: a direct migration (fast, hot: 10 ms / 120 W) and a staged
//! route through a relay (slow, cool: 50 ms / 9 W total). MAP under the
//! latency objective must take the direct step; MAP under the energy
//! objective must take the staged pair. If the objective column ever
//! stopped flowing into action costs, one of these pins would break.

use std::rc::Rc;

use sada_fleet::{run_fleet, FleetScenario, FleetWorld, Objective, ScopedLazyPlanner, SessionSpec};
use sada_plan::Path;
use sada_proto::AdaptationPlanner;
use sada_scenario::energy_showcase;
use sada_simnet::SimDuration;

/// Plans the boot-to-alternate flip under the given objective and checks
/// every step is invariant-safe before handing the path back.
fn planned_flip(objective: Objective) -> Path {
    let w = Rc::new(FleetWorld::from_spec(energy_showcase(objective)));
    let scope = w.scope_comps(&[(0, true)]);
    let mut planner = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
    let src = w.initial_config();
    let dst = w.target_for(&src, &[(0, true)]);
    let paths = planner.paths(&src, &dst, 4);
    assert_eq!(paths.len(), 1, "the lazy planner offers exactly the MAP");
    let path = paths.into_iter().next().unwrap();
    assert!(path.is_well_formed());
    for step in &path.steps {
        assert!(w.inv.satisfied_by(&step.to), "{objective:?}: unsafe intermediate state");
    }
    path
}

#[test]
fn energy_objective_changes_plan_selection() {
    let fast = planned_flip(Objective::LatencyMs);
    let cool = planned_flip(Objective::EnergyWatts);

    // Latency: one direct step, 10 ms.
    assert_eq!(fast.steps.len(), 1);
    assert_eq!(fast.cost, 10);
    assert_eq!(fast.steps[0].action.index(), 0, "direct_migrate");

    // Energy: two staged steps, 9 W total — a different route entirely.
    assert_eq!(cool.steps.len(), 2);
    assert_eq!(cool.cost, 9);
    let route: Vec<usize> = cool.steps.iter().map(|s| s.action.index()).collect();
    assert_eq!(route, vec![1, 2], "stage_out then stage_in");

    assert_ne!(
        fast.steps.last().unwrap().action,
        cool.steps.last().unwrap().action,
        "watt-cheapest and ms-cheapest paths must differ"
    );
}

/// The staged plan also survives the full control plane: an end-to-end
/// fleet run over the energy-objective world commits the flip.
#[test]
fn energy_world_runs_end_to_end() {
    let sessions = vec![SessionSpec {
        id: 1,
        flips: vec![(0, true)],
        priority: 0,
        submit_at: SimDuration::from_millis(1),
        cancel_at: None,
    }];
    let scn = FleetScenario::with_world(energy_showcase(Objective::EnergyWatts), sessions);
    let report = run_fleet(&scn);
    assert_eq!(report.results.len(), 1);
    assert!(report.results[0].success, "energy-planned adaptation must commit");
    // The fleet landed on the idle host: component 2 set, 0/1 clear
    // (bit strings print the highest component index first).
    assert_eq!(report.final_config, "100");
}
