//! Generated-scenario validity (satellite of the scenario-generator PR).
//!
//! Property: over random seeds, shapes, domains, and objectives, every
//! generated scenario (a) compiles into a fleet world whose initial
//! configuration satisfies the compiled invariant set, (b) keeps every
//! cluster a confined collaborative set whose scope the plan cache's
//! `ScopeNormalizer` accepts, and (c) passes the full [`validate`] pass
//! (which additionally proves goal reachability in both directions
//! through the production scoped planner).

use proptest::prelude::*;
use sada_fleet::{FleetWorld, ScopeNormalizer};
use sada_plan::Action;
use sada_scenario::{generate, validate, ScenarioConfig, TrafficProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_generated_scenario_is_valid(
        seed in 0u64..u64::MAX,
        clusters in 1usize..10,
        sessions in 0usize..30,
        iaas in any::<bool>(),
        energy in any::<bool>(),
        burst in any::<bool>(),
    ) {
        let base = if iaas {
            if energy { ScenarioConfig::iaas_energy(seed) } else { ScenarioConfig::iaas(seed) }
        } else {
            ScenarioConfig::serverless(seed)
        };
        let traffic = if burst {
            TrafficProfile::Burst { waves: 3, wave_gap_us: 100_000 }
        } else {
            TrafficProfile::Poisson { mean_gap_us: 10_000 }
        };
        let cfg = ScenarioConfig { clusters, sessions, traffic, ..base };
        let scenario = generate(&cfg);
        prop_assert!(validate(&scenario).is_ok());

        // Re-establish the headline properties directly, without trusting
        // the validity pass: compiled invariants accept the boot config...
        let world = FleetWorld::from_spec(scenario.spec.clone());
        prop_assert!(world.inv.satisfied_by(&world.initial_config()));
        prop_assert_eq!(world.groups, clusters);

        // ...and every cluster scope normalizes: all in-scope predicates
        // are accepted, so isomorphic clusters can share cache entries.
        for g in 0..world.groups {
            let scope = world.scope_comps(&[(g, true)]);
            let mut in_scope = world.universe.empty_config();
            for &c in &scope {
                in_scope.insert(c);
            }
            let scoped: Vec<Action> = world
                .actions
                .iter()
                .filter(|a| a.touches_only(&in_scope))
                .cloned()
                .collect();
            prop_assert!(!scoped.is_empty(), "cluster {} has no in-scope actions", g);
            prop_assert!(
                ScopeNormalizer::new(&world.inv, world.universe.len(), &scope, &scoped).is_some(),
                "cluster {} scope must normalize",
                g
            );
        }
    }
}
