//! Ready-made runs of the Figure 3 world: the safe protocol and the two
//! baseline strategies it is compared against.

use sada_core::casestudy::{case_study, CaseStudy};
use sada_expr::CompId;
use sada_model::{AuditReport, SafetyAuditor};
use sada_obs::Bus;
use sada_proto::{JournalRecord, ManagerActor, Outcome, ProtoTiming, Wire};
use sada_simnet::{ActorId, FaultPlan, LinkConfig, SimDuration, SimTime, Simulator};

use crate::actors::{AppMsg, ClientActor, CtlMsg, ServerActor, ServerStats, VideoWire};
use crate::audit_log::AuditShared;
use crate::frame::PlayerStats;

/// Tunables of a video-system run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed.
    pub seed: u64,
    /// Frame size in bytes.
    pub frame_size: usize,
    /// Frame period (e.g. 33 ms ≈ 30 fps).
    pub frame_period: SimDuration,
    /// Fragmentation MTU.
    pub mtu: usize,
    /// When the server stops capturing.
    pub stream_end: SimTime,
    /// When the adaptation (or baseline swap) starts.
    pub adapt_at: SimDuration,
    /// Network link used for all traffic.
    pub link: LinkConfig,
    /// Manager retry/timeout policy.
    pub timing: ProtoTiming,
    /// Fallback drain window for clients (must exceed one link latency).
    pub drain_window: SimDuration,
    /// Injected faults (crashes, partitions); empty by default.
    pub faults: FaultPlan,
    /// Unified observability bus shared by the network, the protocol
    /// participants, and the audit instrumentation. Attach sinks to a clone
    /// before the run to capture the whole event stream.
    pub bus: Bus,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 7,
            frame_size: 3_000,
            frame_period: SimDuration::from_millis(33),
            mtu: 512,
            stream_end: SimTime::from_millis(2_000),
            adapt_at: SimDuration::from_millis(500),
            link: LinkConfig::reliable(SimDuration::from_millis(5)),
            timing: ProtoTiming::default(),
            drain_window: SimDuration::from_millis(50),
            faults: FaultPlan::new(),
            bus: Bus::new(),
        }
    }
}

/// Which adaptation strategy drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No adaptation at all (control run).
    None,
    /// The paper's safe adaptation process (manager + agents + MAP).
    Safe,
    /// Uncoordinated hot-swap: each process swaps the moment it is told,
    /// with `skew` between processes — the unsafe strawman.
    Naive {
        /// Gap between successive processes' swaps.
        skew: SimDuration,
    },
    /// Kramer–Magee-style quiescence: passivate *everything*, wait a drain
    /// window, swap all components in one shot, reactivate.
    Quiescence {
        /// How long the world is held passive before swapping.
        window: SimDuration,
    },
}

/// Everything a run produced.
#[derive(Debug, Clone)]
pub struct VideoReport {
    /// Protocol outcome (safe strategy only).
    pub outcome: Option<Outcome>,
    /// Server counters.
    pub server: ServerStats,
    /// Hand-held player stats.
    pub handheld: PlayerStats,
    /// Laptop player stats.
    pub laptop: PlayerStats,
    /// Hand-held chain blocked time.
    pub handheld_blocked: SimDuration,
    /// Laptop chain blocked time.
    pub laptop_blocked: SimDuration,
    /// Independent safety audit of the whole run.
    pub audit: AuditReport,
    /// Virtual time when the world quiesced.
    pub finished_at: SimTime,
    /// Crash faults suffered per client (hand-held, laptop).
    pub client_crashes: (u64, u64),
    /// Rejoin announcements sent per client (hand-held, laptop).
    pub client_rejoins: (u64, u64),
    /// Manager incarnations rebuilt from the write-ahead journal (safe
    /// strategy only; 0 when the manager never crashed).
    pub manager_restores: u64,
    /// The manager's write-ahead adaptation journal as it stood at the end
    /// of the run (safe strategy only; empty for the baselines).
    pub manager_journal: Vec<JournalRecord>,
}

impl VideoReport {
    /// Total corrupted packets across both clients.
    pub fn corrupted_packets(&self) -> u64 {
        self.handheld.corrupted_packets + self.laptop.corrupted_packets
    }

    /// Total frames displayed across both clients.
    pub fn frames_displayed(&self) -> u64 {
        self.handheld.frames_displayed + self.laptop.frames_displayed
    }
}

fn swap_plan(cs: &CaseStudy) -> Vec<(usize, Vec<CompId>, Vec<CompId>)> {
    // Full source→target reconfiguration per process:
    // server E1→E2, hand-held D1→D3, laptop D4→D5.
    let u = cs.spec.universe();
    let id = |n: &str| u.id(n).expect("component");
    vec![
        (0, vec![id("E1")], vec![id("E2")]),
        (1, vec![id("D1")], vec![id("D3")]),
        (2, vec![id("D4")], vec![id("D5")]),
    ]
}

/// Builds and runs the case-study world under `strategy`, returning the
/// consolidated report.
pub fn run_video_scenario(cfg: &ScenarioConfig, strategy: Strategy) -> VideoReport {
    run_video_with(cfg, strategy, &case_study())
}

/// Like [`run_video_scenario`], but over a caller-provided variant of the
/// case study (e.g. a restricted action table that forces the compound
/// drain-requiring path).
pub fn run_video_with(cfg: &ScenarioConfig, strategy: Strategy, cs: &CaseStudy) -> VideoReport {
    let audit = AuditShared::new(&cfg.bus, cs.source.clone());
    let mut sim: Simulator<VideoWire> = Simulator::new(cfg.seed);
    sim.set_bus(cfg.bus.clone());
    sim.set_default_link(cfg.link);

    let u = cs.spec.universe().clone();
    let handheld_decoders: Vec<&'static str> = vec!["D1", "D2", "D3"];
    let laptop_decoders: Vec<&'static str> = vec!["D4", "D5"];

    // Actor ids are assigned in registration order; the multicast group is
    // created first and patched into the server afterwards.
    let server_id = ActorId::from_index(0);
    let handheld_id = ActorId::from_index(1);
    let laptop_id = ActorId::from_index(2);

    let mut sim2 = sim; // appease the borrow checker ordering below
    let group = sim2.create_group(&[server_id, handheld_id, laptop_id]);
    let server = ServerActor::new(
        u.clone(),
        group,
        vec![handheld_decoders.clone(), laptop_decoders.clone()],
        cfg.seed ^ 0x5EED,
        cfg.frame_size,
        cfg.frame_period,
        cfg.mtu,
        cfg.stream_end,
        audit.clone(),
    );
    let s = sim2.add_actor("video-server", server);
    let h = sim2.add_actor(
        "handheld-client",
        ClientActor::new(u.clone(), 0, &["D1"], cfg.drain_window, audit.clone()),
    );
    let l = sim2.add_actor(
        "laptop-client",
        ClientActor::new(u.clone(), 1, &["D4"], cfg.drain_window, audit.clone()),
    );
    debug_assert_eq!((s, h, l), (server_id, handheld_id, laptop_id));

    match strategy {
        Strategy::None => {}
        Strategy::Safe => {
            let manager = sim2.add_actor(
                "adaptation-manager",
                ManagerActor::<AppMsg>::new(
                    cfg.timing,
                    Box::new(cs.spec.runtime_planner()),
                    vec![s, h, l],
                    cs.source.clone(),
                    cs.target.clone(),
                )
                .with_request_delay(cfg.adapt_at)
                .with_bus(cfg.bus.clone()),
            );
            sim2.actor_mut::<ServerActor>(s).unwrap().set_manager(manager);
            sim2.actor_mut::<ClientActor>(h).unwrap().set_manager(manager);
            sim2.actor_mut::<ClientActor>(l).unwrap().set_manager(manager);
        }
        Strategy::Naive { skew } => {
            let plan = swap_plan(cs);
            let targets = [s, h, l];
            for (i, (proc_ix, removes, adds)) in plan.into_iter().enumerate() {
                let at = cfg.adapt_at + skew.saturating_mul(i as u64);
                sim2.inject(
                    targets[proc_ix],
                    targets[proc_ix],
                    Wire::App(AppMsg::Ctl(CtlMsg::NaiveSwap { removes, adds })),
                    at,
                );
            }
        }
        Strategy::Quiescence { window } => {
            let targets = [s, h, l];
            // Top-down passivation: the server stops first; clients follow
            // once in-flight packets have had time to drain (a client that
            // passivates immediately would buffer old-format packets past
            // the swap — the mistake quiescence exists to avoid).
            sim2.inject(s, s, Wire::App(AppMsg::Ctl(CtlMsg::Passivate)), cfg.adapt_at);
            let client_passivate = cfg.adapt_at + cfg.drain_window;
            for &t in &targets[1..] {
                sim2.inject(t, t, Wire::App(AppMsg::Ctl(CtlMsg::Passivate)), client_passivate);
            }
            for (proc_ix, removes, adds) in swap_plan(cs) {
                sim2.inject(
                    targets[proc_ix],
                    targets[proc_ix],
                    Wire::App(AppMsg::Ctl(CtlMsg::SwapNow { removes, adds })),
                    client_passivate + window,
                );
            }
            let reactivate = client_passivate + window + SimDuration::from_millis(1);
            for &t in &targets {
                sim2.inject(t, t, Wire::App(AppMsg::Ctl(CtlMsg::Activate)), reactivate);
            }
        }
    }

    sim2.schedule_faults(&cfg.faults);
    sim2.run();

    let server_stats = sim2.actor::<ServerActor>(s).unwrap().stats;
    // Packets destroyed while a crashed client was down leave their
    // critical segments open; the harness knows the outages and adjudicates
    // them lost before auditing (cid high bits encode the owning client).
    for (ix, id) in [(0u64, h), (1u64, l)] {
        if sim2.actor::<ClientActor>(id).unwrap().crashes > 0 {
            audit.adjudicate_lost(sim2.now(), ix + 1);
        }
    }
    let auditor = SafetyAuditor::new(cs.spec.invariants().clone());
    let audit_report = auditor.audit(&audit.events());
    let hh = sim2.actor::<ClientActor>(h).unwrap();
    let lp = sim2.actor::<ClientActor>(l).unwrap();
    let (outcome, manager_restores, manager_journal) = match strategy {
        Strategy::Safe => match sim2.actor::<ManagerActor<AppMsg>>(ActorId::from_index(3)) {
            Some(m) => (m.outcome.clone(), m.restores, m.journal.clone()),
            None => (None, 0, Vec::new()),
        },
        _ => (None, 0, Vec::new()),
    };
    VideoReport {
        outcome,
        server: server_stats,
        handheld: hh.stats(),
        laptop: lp.stats(),
        handheld_blocked: hh.blocked,
        laptop_blocked: lp.blocked,
        audit: audit_report,
        finished_at: sim2.now(),
        client_crashes: (hh.crashes, lp.crashes),
        client_rejoins: (hh.rejoins_sent, lp.rejoins_sent),
        manager_restores,
        manager_journal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_run_streams_cleanly() {
        let report = run_video_scenario(&ScenarioConfig::default(), Strategy::None);
        assert!(report.server.frames_sent > 50);
        assert_eq!(report.corrupted_packets(), 0);
        assert_eq!(report.handheld.frames_displayed, report.server.frames_sent);
        assert_eq!(report.laptop.frames_displayed, report.server.frames_sent);
        assert!(report.audit.is_safe(), "{:?}", report.audit.violations.first());
        assert_eq!(report.server.blocked, SimDuration::ZERO);
    }

    #[test]
    fn safe_adaptation_preserves_stream_integrity() {
        let report = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
        let o = report.outcome.as_ref().expect("outcome recorded");
        assert!(o.success, "adaptation must reach the target");
        assert_eq!(o.steps_committed, 5, "the 5-step MAP");
        assert_eq!(report.corrupted_packets(), 0, "no packet corrupted during safe adaptation");
        assert!(report.audit.is_safe(), "violations: {:?}", report.audit.violations);
        // The MAP is all single-process steps, so blocking is essentially
        // zero and no frame is lost: the viewers never notice the hardening.
        assert_eq!(report.handheld.frames_displayed, report.server.frames_sent);
        assert_eq!(report.laptop.frames_displayed, report.server.frames_sent);
    }

    #[test]
    fn naive_swap_corrupts_and_fails_audit() {
        let strategy = Strategy::Naive { skew: SimDuration::from_millis(60) };
        let report = run_video_scenario(&ScenarioConfig::default(), strategy);
        assert!(report.corrupted_packets() > 0, "uncoordinated swap must corrupt packets");
        assert!(!report.audit.is_safe(), "audit must flag the unsafe interleaving");
    }

    #[test]
    fn quiescence_is_safe_but_blocks_more() {
        let q = Strategy::Quiescence { window: SimDuration::from_millis(100) };
        let report_q = run_video_scenario(&ScenarioConfig::default(), q);
        assert_eq!(report_q.corrupted_packets(), 0, "quiescence is also safe");
        let report_s = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
        assert!(
            report_q.server.blocked > report_s.server.blocked,
            "whole-system passivation ({}) must block the server longer than \
             the fine-grained safe protocol ({})",
            report_q.server.blocked,
            report_s.server.blocked
        );
    }

    #[test]
    fn handheld_crash_mid_adaptation_recovers_safely() {
        // The hand-held dies 20 ms into the protocol window and comes back
        // 170 ms later; its agent rejoins with its last durable step and
        // the manager resynchronizes it. The stream survives, the run ends,
        // and the independent audit stays clean (packets that died in the
        // outage are adjudicated lost, not counted as interruptions).
        let handheld = ActorId::from_index(1);
        let cfg = ScenarioConfig {
            faults: FaultPlan::new()
                .crash(handheld, SimTime::from_millis(520))
                .restart(handheld, SimTime::from_millis(690)),
            ..ScenarioConfig::default()
        };
        let report = run_video_scenario(&cfg, Strategy::Safe);
        assert_eq!(report.client_crashes, (1, 0));
        assert!(report.client_rejoins.0 >= 1, "restarted client must announce itself");
        let o = report.outcome.as_ref().expect("outcome recorded");
        assert!(o.success, "adaptation must still reach the target: {o:?}");
        assert!(report.audit.is_safe(), "violations: {:?}", report.audit.violations.first());
        assert_eq!(report.corrupted_packets(), 0, "no corruption despite the crash");
        // The laptop never crashed: it must not lose a single frame.
        assert_eq!(report.laptop.frames_displayed, report.server.frames_sent);
        // The hand-held lost at most the outage's worth of frames.
        assert!(
            report.handheld.frames_displayed + 10 >= report.server.frames_sent,
            "outage loss must be bounded: {} of {}",
            report.handheld.frames_displayed,
            report.server.frames_sent
        );
    }

    #[test]
    fn manager_crash_during_rollback_reissues_rollback_not_resume() {
        use sada_obs::{ManagerPhaseTag, Payload, ProtoEvent, RingSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        // The manager's commands to the hand-held are severed just before
        // the protocol window opens, so the hand-held step's Reset never
        // arrives: the adapt retries exhaust and the manager orders a
        // rollback whose command is also lost. The manager then dies with
        // its journal ending at `rollback issued` and restarts while the
        // partition still holds. The restored incarnation must come back
        // *rolling back* — reconciling agent state and re-issuing the
        // rollback — and must never resume the abandoned attempt. Once the
        // partition lifts, the never-engaged hand-held acknowledges
        // trivially, the retry rung re-runs the step, and the adaptation
        // still lands on the target.
        let handheld = ActorId::from_index(1);
        let manager = ActorId::from_index(3);
        let bus = Bus::new();
        let ring = Rc::new(RefCell::new(RingSink::new(1 << 16)));
        bus.attach(&ring);
        let cfg = ScenarioConfig {
            faults: FaultPlan::new()
                .partition_window(
                    manager,
                    handheld,
                    SimTime::from_millis(400),
                    SimTime::from_millis(6_000),
                )
                .crash(manager, SimTime::from_millis(4_000))
                .restart(manager, SimTime::from_millis(4_150)),
            bus: bus.clone(),
            ..ScenarioConfig::default()
        };
        let report = run_video_scenario(&cfg, Strategy::Safe);

        assert_eq!(report.manager_restores, 1, "one incarnation rebuilt from the journal");
        let o = report.outcome.as_ref().expect("outcome recorded");
        assert!(o.success, "adaptation must still reach the target: {o:?}");
        assert!(report.audit.is_safe(), "violations: {:?}", report.audit.violations.first());
        assert_eq!(report.corrupted_packets(), 0, "no corruption despite the failover");

        // The journal tells the failover story: a rollback was issued, the
        // crash hit before its completion record, and the restored manager
        // finished that same rollback — retrying the step — without ever
        // resuming the abandoned attempt.
        let j = &report.manager_journal;
        let (ix, step) = j
            .iter()
            .enumerate()
            .find_map(|(i, r)| match r {
                JournalRecord::RollbackIssued { step } => Some((i, *step)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("a rollback must have been issued: {j:?}"));
        let done = j[ix..]
            .iter()
            .position(
                |r| matches!(r, JournalRecord::RollbackComplete { step: s, .. } if *s == step),
            )
            .unwrap_or_else(|| panic!("the restored manager must finish the rollback: {j:?}"));
        assert!(
            !j[ix..ix + done].iter().any(|r| matches!(r, JournalRecord::ResumeIssued { .. })),
            "no resume may be issued while the rollback is outstanding: {j:?}"
        );
        assert!(
            matches!(j[ix + done], JournalRecord::RollbackComplete { retry: true, .. }),
            "the retry-once rung re-runs the rolled-back step: {j:?}"
        );
        assert!(
            matches!(j.last(), Some(JournalRecord::Outcome { success: true, .. })),
            "the journal ends with the successful resolution: {j:?}"
        );

        // The event stream confirms the mechanism: the replay landed
        // mid-rollback and the new incarnation probed agent state before
        // acting.
        let events = ring.borrow().events();
        assert!(
            events.iter().any(|e| matches!(
                e.payload,
                Payload::Proto(ProtoEvent::ManagerRestored {
                    phase: ManagerPhaseTag::RollingBack,
                    ..
                })
            )),
            "the journal replay must land in the rolling-back phase"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e.payload, Payload::Proto(ProtoEvent::StateQueried { .. }))),
            "the restored manager must reconcile by probing agent state"
        );
    }

    #[test]
    fn solo_commit_outruns_rollback_and_the_manager_adopts_it() {
        use sada_obs::{ManagerPhaseTag, Payload, ProtoEvent, RingSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        // The reverse partition: the hand-held receives every command but
        // its *replies* are severed. Its solo step runs to completion —
        // reset, in-action, autonomous resume — while the deaf manager
        // exhausts the adapt retries and orders a rollback. Resume was the
        // point of no return: the commit cannot be undone, so the agent
        // answers the rollback by re-acknowledging completion, and the
        // manager (after crashing and restoring mid-rollback for good
        // measure) must adopt the commit instead of re-running the step —
        // re-applying the action would corrupt the component chain.
        let handheld = ActorId::from_index(1);
        let manager = ActorId::from_index(3);
        let bus = Bus::new();
        let ring = Rc::new(RefCell::new(RingSink::new(1 << 16)));
        bus.attach(&ring);
        let cfg = ScenarioConfig {
            faults: FaultPlan::new()
                .partition_window(
                    handheld,
                    manager,
                    SimTime::from_millis(400),
                    SimTime::from_millis(6_000),
                )
                .crash(manager, SimTime::from_millis(4_000))
                .restart(manager, SimTime::from_millis(4_150)),
            bus: bus.clone(),
            ..ScenarioConfig::default()
        };
        let report = run_video_scenario(&cfg, Strategy::Safe);

        assert_eq!(report.manager_restores, 1, "one incarnation rebuilt from the journal");
        let o = report.outcome.as_ref().expect("outcome recorded");
        assert!(o.success, "adaptation must still reach the target: {o:?}");
        assert!(report.audit.is_safe(), "violations: {:?}", report.audit.violations.first());
        assert_eq!(report.corrupted_packets(), 0, "no corruption despite the failover");

        // The journal shows the abandoned rollback: the issued rollback is
        // answered by commit evidence, the step is adopted as committed
        // (never rolled back, never re-run), and the run resolves.
        let j = &report.manager_journal;
        let (ix, step) = j
            .iter()
            .enumerate()
            .find_map(|(i, r)| match r {
                JournalRecord::RollbackIssued { step } => Some((i, *step)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("a rollback must have been issued: {j:?}"));
        assert!(
            matches!(j.get(ix + 1), Some(JournalRecord::StepCommitted { step: s }) if *s == step),
            "the rollback must be abandoned in favor of the commit: {j:?}"
        );
        assert!(
            !j.iter().any(
                |r| matches!(r, JournalRecord::RollbackComplete { step: s, .. } if *s == step)
            ),
            "an adopted commit is never recorded as rolled back: {j:?}"
        );
        let attempts = j.iter().filter(|r| matches!(r, JournalRecord::StepStarted { .. })).count();
        assert_eq!(attempts, 5, "each of the 5 MAP steps runs exactly once: {j:?}");
        assert!(
            matches!(j.last(), Some(JournalRecord::Outcome { success: true, .. })),
            "the journal ends with the successful resolution: {j:?}"
        );
        assert!(
            ring.borrow().events().iter().any(|e| matches!(
                e.payload,
                Payload::Proto(ProtoEvent::ManagerRestored {
                    phase: ManagerPhaseTag::RollingBack,
                    ..
                })
            )),
            "the journal replay must land in the rolling-back phase"
        );
    }

    #[test]
    fn crash_runs_are_deterministic() {
        let handheld = ActorId::from_index(1);
        let cfg = ScenarioConfig {
            faults: FaultPlan::new()
                .crash(handheld, SimTime::from_millis(520))
                .restart(handheld, SimTime::from_millis(690)),
            ..ScenarioConfig::default()
        };
        let a = run_video_scenario(&cfg, Strategy::Safe);
        let b = run_video_scenario(&cfg, Strategy::Safe);
        assert_eq!(a.server, b.server);
        assert_eq!(a.handheld, b.handheld);
        assert_eq!(a.client_rejoins, b.client_rejoins);
        assert_eq!(a.finished_at, b.finished_at);
    }

    #[test]
    fn deterministic_reports() {
        let a = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
        let b = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
        assert_eq!(a.server, b.server);
        assert_eq!(a.handheld, b.handheld);
        assert_eq!(a.finished_at, b.finished_at);
    }
}
