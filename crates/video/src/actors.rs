//! The Figure 3 processes as simulated actors: the video server and the two
//! clients, each embedding an adaptation agent.

use std::collections::{HashMap, VecDeque};

use sada_expr::{CompId, Universe};
use sada_meta::{FilterChain, Packet};
use sada_obs::{AgentStateTag, Payload, ProtoEvent};
use sada_proto::{
    agent_state_tag, AgentCore, AgentEffect, AgentEvent, AgentState, LocalAction, ProtoMsg,
    SessionId, StepId, Wire,
};
use sada_simnet::{Actor, ActorId, Context, GroupId, SimDuration, SimTime, TimerId};

use crate::audit_log::AuditShared;
use crate::catalog::{apply_local_action, designated_decoder, make_filter};
use crate::frame::{fragment, FrameSource, PlayerSink, PlayerStats};

/// Out-of-band control used by the baseline adaptation strategies
/// (Section 6 comparisons); the safe protocol never sends these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlMsg {
    /// Naive hot-swap: apply the change immediately, mid-stream, with no
    /// coordination (the strategy the paper's safety conditions forbid).
    NaiveSwap {
        /// Components to remove.
        removes: Vec<CompId>,
        /// Components to add.
        adds: Vec<CompId>,
    },
    /// Kramer–Magee-style passivation: stop all activity.
    Passivate,
    /// Apply a change while passivated.
    SwapNow {
        /// Components to remove.
        removes: Vec<CompId>,
        /// Components to add.
        adds: Vec<CompId>,
    },
    /// Resume activity after passivation.
    Activate,
}

/// Application traffic of the video system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppMsg {
    /// A video packet plus per-client audit cookies `(client_ix, cid,
    /// designated decoder)` — instrumentation only, invisible to filters.
    Data {
        /// The packet as it left the server's send chain.
        pkt: Packet,
        /// Audit cookies, one per client that can currently decode it.
        audits: Vec<(u32, u64, CompId)>,
    },
    /// Drain marker: everything the server sent before this point has been
    /// flushed onto the wire (FIFO links make reception of the mark imply
    /// reception of all earlier packets) — the Section 3.2 global safe
    /// condition for encoder/decoder compound actions.
    DrainMark {
        /// The adaptation step the drain belongs to.
        step: StepId,
    },
    /// Baseline control (never used by the safe protocol).
    Ctl(CtlMsg),
    /// Periodic client telemetry for the decision-making monitor:
    /// `received` data packets out of `highest_seq + 1` expected.
    LossReport {
        /// Reporting client index.
        client: u32,
        /// Data packets received so far.
        received: u64,
        /// Highest data sequence number observed.
        highest_seq: u64,
    },
    /// The monitor's decision: start the planned adaptation now.
    RequestAdaptation,
}

/// The message type of the video world.
pub type VideoWire = Wire<AppMsg>;

const TAG_FRAME: u64 = 100;
const TAG_DRAIN: u64 = 101;

/// Drains the protocol payloads an embedded agent core buffered while
/// handling an event and publishes them on the run's bus, stamped with the
/// embedding actor's identity and the current virtual time.
fn flush_agent_obs(agent: &mut AgentCore, audit: &AuditShared, ctx: &mut Context<'_, VideoWire>) {
    let obs = agent.drain_obs();
    let bus = audit.bus();
    if !bus.has_sinks() {
        return;
    }
    let (at, actor) = (ctx.now(), ctx.self_id().index() as u32);
    for payload in obs {
        bus.emit(sada_obs::Event { at, actor, session: 0, shard: 0, payload });
    }
}

/// Aggregated server-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Frames captured and transmitted.
    pub frames_sent: u64,
    /// Frames skipped because the process was blocked.
    pub frames_skipped: u64,
    /// Packets put on the wire.
    pub packets_sent: u64,
    /// Total simulated time spent blocked (the paper's "system blocking
    /// time" cost factor).
    pub blocked: SimDuration,
}

/// The video server: camera → fragmenter → send MetaSocket → multicast,
/// with an embedded adaptation agent controlling the send chain.
pub struct ServerActor {
    u: Universe,
    agent: AgentCore,
    manager: Option<ActorId>,
    group: GroupId,
    client_decoders: Vec<Vec<&'static str>>,
    /// The send chain (E1 initially).
    pub chain: FilterChain,
    source: FrameSource,
    frame_period: SimDuration,
    mtu: usize,
    stream_end: SimTime,
    next_seq: u64,
    blocked: bool,
    blocked_since: Option<SimTime>,
    /// Counters.
    pub stats: ServerStats,
    audit: AuditShared,
}

impl ServerActor {
    /// Creates the server with `E1` installed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        u: Universe,
        group: GroupId,
        client_decoders: Vec<Vec<&'static str>>,
        seed: u64,
        frame_size: usize,
        frame_period: SimDuration,
        mtu: usize,
        stream_end: SimTime,
        audit: AuditShared,
    ) -> Self {
        let mut chain = FilterChain::new();
        chain.push_back("E1", make_filter("E1")).expect("fresh chain");
        ServerActor {
            u,
            agent: AgentCore::new(),
            manager: None,
            group,
            client_decoders,
            chain,
            source: FrameSource::new(seed, frame_size),
            frame_period,
            mtu,
            stream_end,
            next_seq: 0,
            blocked: false,
            blocked_since: None,
            stats: ServerStats::default(),
            audit,
        }
    }

    /// Wires the manager's actor id (set after the manager is registered).
    pub fn set_manager(&mut self, manager: ActorId) {
        self.manager = Some(manager);
    }

    fn set_blocked(&mut self, now: SimTime, blocked: bool) {
        if blocked && !self.blocked {
            self.blocked_since = Some(now);
        }
        if !blocked && self.blocked {
            if let Some(since) = self.blocked_since.take() {
                self.stats.blocked += now - since;
            }
        }
        self.blocked = blocked;
    }

    fn emit_frame(&mut self, ctx: &mut Context<'_, VideoWire>) {
        let (no, frame) = self.source.next_frame();
        self.stats.frames_sent += 1;
        let (pkts, next) = fragment(0, self.next_seq, no, &frame, self.mtu);
        self.next_seq = next;
        for pkt in pkts {
            for out in self.chain.push(pkt) {
                let mut audits = Vec::new();
                if let Some(tag) = out.top_tag() {
                    let cfg = self.audit.config();
                    for (ix, decs) in self.client_decoders.iter().enumerate() {
                        if let Some(comp) = designated_decoder(&self.u, &cfg, decs, tag) {
                            let cid = ((ix as u64 + 1) << 48) | out.seq;
                            self.audit.segment_start(ctx.now(), cid, comp);
                            audits.push((ix as u32, cid, comp));
                        }
                    }
                }
                self.stats.packets_sent += 1;
                ctx.multicast(self.group, Wire::App(AppMsg::Data { pkt: out, audits }));
            }
        }
    }

    fn apply_structural(&mut self, now: SimTime, la: &LocalAction, label: &str) {
        apply_local_action(&mut self.chain, &self.u, la)
            .unwrap_or_else(|e| panic!("server in-action {label} failed: {e}"));
        self.audit.in_action(now, label, &la.removes, &la.adds);
    }

    fn drive(&mut self, ctx: &mut Context<'_, VideoWire>, first: AgentEvent) {
        let mut queue = VecDeque::from([first]);
        while let Some(ev) = queue.pop_front() {
            for eff in self.agent.on_event(ev) {
                match eff {
                    AgentEffect::Send(msg) => {
                        let mgr = self.manager.expect("manager wired before protocol traffic");
                        // The server is not part of the crash-fault
                        // experiments; its incarnation never advances.
                        ctx.send(mgr, Wire::Proto { epoch: 0, session: SessionId::SOLO, msg });
                    }
                    AgentEffect::PreAction(_) | AgentEffect::PostAction(_) => {}
                    AgentEffect::BeginReset(la) => {
                        // Local safe state: we are between packets by
                        // construction; stop emitting.
                        self.set_blocked(ctx.now(), true);
                        if la.needs_global_drain {
                            // FIFO links: receiving the mark implies having
                            // received every packet sent before it.
                            let step = self.agent.current_step().expect("resetting implies step");
                            ctx.multicast(self.group, Wire::App(AppMsg::DrainMark { step }));
                        }
                        queue.push_back(AgentEvent::SafeReached);
                    }
                    AgentEffect::DoInAction(la) => {
                        let label = la.action.to_string();
                        self.apply_structural(ctx.now(), &la, &label);
                        queue.push_back(AgentEvent::InActionDone);
                    }
                    AgentEffect::DoResume => {
                        self.set_blocked(ctx.now(), false);
                        self.audit.snapshot(ctx.now());
                        queue.push_back(AgentEvent::ResumeFinished);
                    }
                    AgentEffect::DoRollback(undo) => {
                        if let Some(la) = undo {
                            let label = format!("undo {}", la.action);
                            self.apply_structural(ctx.now(), &la, &label);
                        }
                        self.set_blocked(ctx.now(), false);
                        self.audit.snapshot(ctx.now());
                        queue.push_back(AgentEvent::RollbackFinished);
                    }
                }
            }
        }
        flush_agent_obs(&mut self.agent, &self.audit, ctx);
    }

    fn handle_ctl(&mut self, ctx: &mut Context<'_, VideoWire>, ctl: CtlMsg) {
        match ctl {
            CtlMsg::NaiveSwap { removes, adds } => {
                let la = LocalAction {
                    action: sada_plan::ActionId(u32::MAX - 1),
                    removes,
                    adds,
                    needs_global_drain: false,
                };
                self.apply_structural(ctx.now(), &la, "naive-swap");
                // The naive strategy *claims* the system is consistent now.
                self.audit.snapshot(ctx.now());
            }
            CtlMsg::Passivate => self.set_blocked(ctx.now(), true),
            CtlMsg::SwapNow { removes, adds } => {
                let la = LocalAction {
                    action: sada_plan::ActionId(u32::MAX - 1),
                    removes,
                    adds,
                    needs_global_drain: false,
                };
                self.apply_structural(ctx.now(), &la, "quiesced-swap");
            }
            CtlMsg::Activate => {
                self.set_blocked(ctx.now(), false);
                self.audit.snapshot(ctx.now());
            }
        }
    }
}

impl Actor<VideoWire> for ServerActor {
    fn on_start(&mut self, ctx: &mut Context<'_, VideoWire>) {
        ctx.set_timer(self.frame_period, TAG_FRAME);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, VideoWire>, _from: ActorId, msg: VideoWire) {
        match msg {
            // The manager never crashes, so its epoch needs no tracking.
            Wire::Proto { msg: p, .. } => self.drive(ctx, AgentEvent::Msg(p)),
            Wire::App(AppMsg::Ctl(ctl)) => self.handle_ctl(ctx, ctl),
            Wire::App(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, VideoWire>, tag: u64) {
        if tag != TAG_FRAME {
            return;
        }
        if ctx.now() >= self.stream_end {
            return; // stop capturing; pending protocol work continues
        }
        if self.blocked {
            self.stats.frames_skipped += 1;
        } else {
            self.emit_frame(ctx);
        }
        ctx.set_timer(self.frame_period, TAG_FRAME);
    }
}

/// A video client: receive MetaSocket → reassembly → player, with an
/// embedded adaptation agent controlling the receive chain.
pub struct ClientActor {
    u: Universe,
    agent: AgentCore,
    manager: Option<ActorId>,
    client_ix: u32,
    /// The receive chain (D1 on the hand-held, D4 on the laptop initially).
    pub chain: FilterChain,
    /// The player sink.
    pub player: PlayerSink,
    audit: AuditShared,
    pending_audits: HashMap<u64, (u64, CompId)>,
    resetting_drain: Option<StepId>,
    drain_fallback: Option<TimerId>,
    drain_window: SimDuration,
    blocked_since: Option<SimTime>,
    /// Total simulated time this client's chain spent blocked.
    pub blocked: SimDuration,
    monitor: Option<ActorId>,
    report_period: SimDuration,
    report_until: SimTime,
    /// Data packets received (pre-chain), for loss telemetry.
    pub data_received: u64,
    /// Highest data sequence number observed.
    pub highest_seq: u64,
    /// Incarnation number stamped on outgoing protocol traffic; bumped on
    /// every restart so the manager can discard pre-crash messages.
    epoch: u64,
    /// Rejoin retransmissions left after a restart.
    rejoin_budget: u32,
    /// Crash faults suffered (fault-injection instrumentation).
    pub crashes: u64,
    /// Segments adjudicated lost at restart whose packets might still
    /// arrive (instrumentation: suppresses their normal segment-end).
    lost_cids: std::collections::HashSet<u64>,
    /// Rejoin announcements sent after restarts.
    pub rejoins_sent: u64,
}

impl ClientActor {
    /// Creates a client whose chain initially holds `initial` components
    /// (in chain order).
    pub fn new(
        u: Universe,
        client_ix: u32,
        initial: &[&str],
        drain_window: SimDuration,
        audit: AuditShared,
    ) -> Self {
        let mut chain = FilterChain::new();
        for name in initial {
            chain.push_back(name, make_filter(name)).expect("fresh chain");
        }
        ClientActor {
            u,
            agent: AgentCore::new(),
            manager: None,
            client_ix,
            chain,
            player: PlayerSink::new(),
            audit,
            pending_audits: HashMap::new(),
            resetting_drain: None,
            drain_fallback: None,
            drain_window,
            blocked_since: None,
            blocked: SimDuration::ZERO,
            monitor: None,
            report_period: SimDuration::ZERO,
            report_until: SimTime::ZERO,
            data_received: 0,
            highest_seq: 0,
            epoch: 0,
            rejoin_budget: 0,
            crashes: 0,
            lost_cids: std::collections::HashSet::new(),
            rejoins_sent: 0,
        }
    }

    /// Enables periodic loss telemetry to a decision-making monitor until
    /// `until` (bounded so a finite stream yields a finite simulation).
    pub fn with_monitor(mut self, monitor: ActorId, period: SimDuration, until: SimTime) -> Self {
        self.monitor = Some(monitor);
        self.report_period = period;
        self.report_until = until;
        self
    }

    /// Wires the manager's actor id.
    pub fn set_manager(&mut self, manager: ActorId) {
        self.manager = Some(manager);
    }

    /// Player statistics.
    pub fn stats(&self) -> PlayerStats {
        self.player.stats()
    }

    fn note_block(&mut self, now: SimTime) {
        if self.blocked_since.is_none() {
            self.blocked_since = Some(now);
        }
    }

    fn note_unblock(&mut self, now: SimTime) {
        if let Some(since) = self.blocked_since.take() {
            self.blocked += now - since;
        }
    }

    fn deliver(&mut self, now: SimTime, out: Packet) {
        if out.is_clean_plaintext() {
            if let Some((cid, comp)) = self.pending_audits.remove(&out.seq) {
                self.audit.segment_end(now, cid, comp);
            }
        }
        // Corrupted packets keep their segment open: the audit will flag the
        // interrupted transmission.
        self.player.accept(&out);
    }

    fn apply_structural(&mut self, now: SimTime, la: &LocalAction, label: &str) {
        apply_local_action(&mut self.chain, &self.u, la)
            .unwrap_or_else(|e| panic!("client {} in-action {label} failed: {e}", self.client_ix));
        self.audit.in_action(now, label, &la.removes, &la.adds);
    }

    fn send_rejoin(&mut self, ctx: &mut Context<'_, VideoWire>) {
        let mgr = self.manager.expect("manager wired before protocol traffic");
        self.rejoins_sent += 1;
        ctx.send(
            mgr,
            Wire::Proto {
                epoch: self.epoch,
                session: SessionId::SOLO,
                msg: ProtoMsg::Rejoin { last_completed: self.agent.last_completed() },
            },
        );
        ctx.set_timer(REJOIN_PERIOD, TAG_REJOIN);
    }

    fn finish_reset(&mut self, ctx: &mut Context<'_, VideoWire>) {
        self.resetting_drain = None;
        if let Some(t) = self.drain_fallback.take() {
            ctx.cancel_timer(t);
        }
        self.chain.block();
        self.note_block(ctx.now());
        self.drive(ctx, AgentEvent::SafeReached);
    }

    fn drive(&mut self, ctx: &mut Context<'_, VideoWire>, first: AgentEvent) {
        let mut queue = VecDeque::from([first]);
        while let Some(ev) = queue.pop_front() {
            for eff in self.agent.on_event(ev) {
                match eff {
                    AgentEffect::Send(msg) => {
                        let mgr = self.manager.expect("manager wired before protocol traffic");
                        ctx.send(
                            mgr,
                            Wire::Proto { epoch: self.epoch, session: SessionId::SOLO, msg },
                        );
                    }
                    AgentEffect::PreAction(_) | AgentEffect::PostAction(_) => {}
                    AgentEffect::BeginReset(la) => {
                        if la.needs_global_drain {
                            // Keep decoding until the server's drain mark (or
                            // a conservative fallback window) tells us every
                            // in-flight packet has been processed.
                            self.resetting_drain = self.agent.current_step();
                            self.drain_fallback = Some(ctx.set_timer(self.drain_window, TAG_DRAIN));
                        } else {
                            self.chain.block();
                            self.note_block(ctx.now());
                            queue.push_back(AgentEvent::SafeReached);
                        }
                    }
                    AgentEffect::DoInAction(la) => {
                        let label = la.action.to_string();
                        self.apply_structural(ctx.now(), &la, &label);
                        queue.push_back(AgentEvent::InActionDone);
                    }
                    AgentEffect::DoResume => {
                        let outs = self.chain.unblock();
                        self.note_unblock(ctx.now());
                        for out in outs {
                            self.deliver(ctx.now(), out);
                        }
                        self.audit.snapshot(ctx.now());
                        queue.push_back(AgentEvent::ResumeFinished);
                    }
                    AgentEffect::DoRollback(undo) => {
                        if let Some(la) = undo {
                            let label = format!("undo {}", la.action);
                            self.apply_structural(ctx.now(), &la, &label);
                        }
                        self.resetting_drain = None;
                        let outs = self.chain.unblock();
                        self.note_unblock(ctx.now());
                        for out in outs {
                            self.deliver(ctx.now(), out);
                        }
                        self.audit.snapshot(ctx.now());
                        queue.push_back(AgentEvent::RollbackFinished);
                    }
                }
            }
        }
        flush_agent_obs(&mut self.agent, &self.audit, ctx);
    }

    fn handle_ctl(&mut self, ctx: &mut Context<'_, VideoWire>, ctl: CtlMsg) {
        match ctl {
            CtlMsg::NaiveSwap { removes, adds } => {
                let la = LocalAction {
                    action: sada_plan::ActionId(u32::MAX - 1),
                    removes,
                    adds,
                    needs_global_drain: false,
                };
                self.apply_structural(ctx.now(), &la, "naive-swap");
                self.audit.snapshot(ctx.now());
            }
            CtlMsg::Passivate => {
                self.chain.block();
                self.note_block(ctx.now());
            }
            CtlMsg::SwapNow { removes, adds } => {
                let la = LocalAction {
                    action: sada_plan::ActionId(u32::MAX - 1),
                    removes,
                    adds,
                    needs_global_drain: false,
                };
                self.apply_structural(ctx.now(), &la, "quiesced-swap");
            }
            CtlMsg::Activate => {
                let outs = self.chain.unblock();
                self.note_unblock(ctx.now());
                for out in outs {
                    self.deliver(ctx.now(), out);
                }
                self.audit.snapshot(ctx.now());
            }
        }
    }
}

const TAG_REPORT: u64 = 102;
const TAG_REJOIN: u64 = 103;
const REJOIN_PERIOD: SimDuration = SimDuration::from_millis(100);
const REJOIN_RETRIES: u32 = 12;

impl Actor<VideoWire> for ClientActor {
    fn on_start(&mut self, ctx: &mut Context<'_, VideoWire>) {
        if self.monitor.is_some() {
            ctx.set_timer(self.report_period, TAG_REPORT);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, VideoWire>, _from: ActorId, msg: VideoWire) {
        match msg {
            // The manager never crashes in the video world, so any protocol
            // message it sends is current; no peer-epoch filter is needed.
            Wire::Proto { msg: p, .. } => {
                self.drive(ctx, AgentEvent::Msg(p));
                if self.agent.state() != AgentState::Running {
                    // The manager has re-engaged this incarnation; stop the
                    // rejoin retransmissions. (A Resume ignored while still
                    // Running does not count — that lost-rejoin divergence
                    // is exactly what the retransmissions exist for.)
                    self.rejoin_budget = 0;
                }
            }
            Wire::App(AppMsg::Data { pkt, audits }) => {
                if pkt.top_tag() != Some(sada_meta::tags::FEC) {
                    self.data_received += 1;
                    self.highest_seq = self.highest_seq.max(pkt.seq);
                }
                if let Some(&(_, cid, comp)) =
                    audits.iter().find(|(ix, _, _)| *ix == self.client_ix)
                {
                    if !self.lost_cids.contains(&cid) {
                        self.pending_audits.insert(pkt.seq, (cid, comp));
                    }
                }
                let outs = self.chain.push(pkt);
                for out in outs {
                    self.deliver(ctx.now(), out);
                }
            }
            Wire::App(AppMsg::DrainMark { step }) => {
                if self.resetting_drain == Some(step) {
                    self.finish_reset(ctx);
                }
            }
            Wire::App(AppMsg::Ctl(ctl)) => self.handle_ctl(ctx, ctl),
            Wire::App(AppMsg::LossReport { .. }) | Wire::App(AppMsg::RequestAdaptation) => {}
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        self.crashes += 1;
        // The process image is volatile. Packets received but not yet
        // delivered (including everything buffered in a blocked chain) die
        // with it; their critical segments can never complete, so the
        // instrumentation adjudicates them lost to the fault.
        let mut pending: Vec<_> = self.pending_audits.drain().collect();
        pending.sort_unstable();
        for (_, (cid, comp)) in pending {
            self.audit.segment_lost(now, cid, comp);
        }
        if self.chain.is_blocked() {
            drop(self.chain.unblock());
        }
        // An in-action that never committed (no resume yet) evaporates with
        // the process: the restarted image is rebuilt from the durable
        // (last-committed) configuration. Model that as an inverse
        // in-action so the shared configuration view stays truthful. All of
        // this client's open segments were closed above, so the inverse
        // cannot interrupt anything.
        if let Some(la) = self.agent.uncommitted_action() {
            let undo = LocalAction {
                action: la.action,
                removes: la.adds.clone(),
                adds: la.removes.clone(),
                needs_global_drain: false,
            };
            let label = format!("crash c{}: revert {}", self.client_ix, la.action);
            self.apply_structural(now, &undo, &label);
        }
        self.resetting_drain = None;
        self.drain_fallback = None;
        self.rejoin_budget = 0;
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, VideoWire>) {
        // Fresh incarnation: stale pre-crash traffic must not be mistaken
        // for the restarted process.
        self.epoch += 1;
        // Segments opened for us while we were down belong to packets the
        // outage destroyed; adjudicate them lost *now*, before any re-run
        // in-action could falsely count them as interrupted.
        for (cid, _) in self.audit.adjudicate_lost(ctx.now(), u64::from(self.client_ix) + 1) {
            self.lost_cids.insert(cid);
        }
        // Only `last_completed` survives on durable storage; the protocol
        // state machine restarts in Running.
        let prev = self.agent.state();
        self.agent = AgentCore::restore(self.agent.last_completed());
        // The crash snapped the state machine back to Running without an
        // ordinary transition; publish one so per-phase interval integration
        // closes the dead incarnation's phase at the restart instant.
        if prev != AgentState::Running {
            self.audit.bus().publish(ctx.now(), ctx.self_id().index() as u32, || {
                Payload::Proto(ProtoEvent::AgentState {
                    from: agent_state_tag(prev),
                    to: AgentStateTag::Running,
                    step: None,
                })
            });
        }
        // The outage counted as blocked time; playback resumes now.
        self.note_unblock(ctx.now());
        if self.monitor.is_some() && ctx.now() < self.report_until {
            ctx.set_timer(self.report_period, TAG_REPORT);
        }
        // Announce the new incarnation; retransmit until the manager
        // re-engages us (or the budget runs out and its timeout ladder
        // takes over).
        self.rejoin_budget = REJOIN_RETRIES;
        self.send_rejoin(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, VideoWire>, tag: u64) {
        if tag == TAG_REJOIN && self.rejoin_budget > 0 && self.agent.state() == AgentState::Running
        {
            self.rejoin_budget -= 1;
            self.send_rejoin(ctx);
        }
        if tag == TAG_DRAIN && self.resetting_drain.is_some() {
            self.drain_fallback = None;
            self.finish_reset(ctx);
        }
        if tag == TAG_REPORT {
            if let Some(monitor) = self.monitor {
                ctx.send(
                    monitor,
                    Wire::App(AppMsg::LossReport {
                        client: self.client_ix,
                        received: self.data_received,
                        highest_seq: self.highest_seq,
                    }),
                );
                if ctx.now() < self.report_until {
                    ctx.set_timer(self.report_period, TAG_REPORT);
                }
            }
        }
    }
}
