//! Shared run instrumentation: a single audit log all actors append to,
//! plus the "current configuration" view used to designate decoders.
//!
//! The simulation is single-threaded by construction, so a
//! `Rc<RefCell<…>>` is the right tool; the log leaves the cell only when
//! the run is over.

use std::cell::RefCell;
use std::rc::Rc;

use sada_expr::{CompId, Config};
use sada_model::AuditEvent;

#[derive(Debug)]
struct Inner {
    events: Vec<AuditEvent>,
    config: Config,
}

/// Cloneable handle to the run-wide audit state.
#[derive(Debug, Clone)]
pub struct AuditShared {
    inner: Rc<RefCell<Inner>>,
}

impl AuditShared {
    /// Starts a log with the system in `initial` configuration (recorded as
    /// the first snapshot).
    pub fn new(initial: Config) -> Self {
        let inner = Inner { events: vec![AuditEvent::ConfigSnapshot { config: initial.clone() }], config: initial };
        AuditShared { inner: Rc::new(RefCell::new(inner)) }
    }

    /// The configuration as currently believed by the instrumentation.
    pub fn config(&self) -> Config {
        self.inner.borrow().config.clone()
    }

    /// Records the start of a critical communication segment.
    pub fn segment_start(&self, cid: u64, comp: CompId) {
        self.inner.borrow_mut().events.push(AuditEvent::SegmentStart { cid, comp });
    }

    /// Records the clean completion of a segment.
    pub fn segment_end(&self, cid: u64, comp: CompId) {
        self.inner.borrow_mut().events.push(AuditEvent::SegmentEnd { cid, comp });
    }

    /// Records a segment destroyed by an environmental fault (the packet
    /// died in a crash outage, not under an adaptive action).
    pub fn segment_lost(&self, cid: u64, comp: CompId) {
        self.inner.borrow_mut().events.push(AuditEvent::SegmentLost { cid, comp });
    }

    /// Closes every still-open segment whose cid has the given high-16-bit
    /// `owner` tag as [`AuditEvent::SegmentLost`], returning the closed
    /// set. Called when the owning client restarts after a crash (and again
    /// by the scenario harness at end of run, in case the client never came
    /// back): packets multicast while the client was down were destroyed by
    /// the fault, so their segments can never end normally and must not be
    /// counted as interrupted by later adaptive actions. The caller
    /// suppresses normal segment-ends for the returned cids — a packet
    /// still in flight at restart (at most one link latency's worth) is
    /// conservatively treated as lost too.
    pub fn adjudicate_lost(&self, owner: u64) -> Vec<(u64, CompId)> {
        let open: Vec<(u64, CompId)> = {
            let inner = self.inner.borrow();
            let mut open = std::collections::HashMap::new();
            for ev in &inner.events {
                match ev {
                    AuditEvent::SegmentStart { cid, comp } => {
                        open.insert(*cid, *comp);
                    }
                    AuditEvent::SegmentEnd { cid, .. } | AuditEvent::SegmentLost { cid, .. } => {
                        open.remove(cid);
                    }
                    _ => {}
                }
            }
            let mut v: Vec<_> = open.into_iter().filter(|(cid, _)| cid >> 48 == owner).collect();
            v.sort_unstable();
            v
        };
        for &(cid, comp) in &open {
            self.segment_lost(cid, comp);
        }
        open
    }

    /// Records an atomic structural in-action and updates the configuration
    /// view.
    pub fn in_action(&self, label: &str, removes: &[CompId], adds: &[CompId]) {
        let mut inner = self.inner.borrow_mut();
        for &c in removes {
            inner.config.remove(c);
        }
        for &c in adds {
            inner.config.insert(c);
        }
        let comps = removes.iter().chain(adds).copied().collect();
        inner.events.push(AuditEvent::InAction { label: label.to_string(), comps });
    }

    /// Records a configuration snapshot at a quiescent point.
    pub fn snapshot(&self) {
        let mut inner = self.inner.borrow_mut();
        let config = inner.config.clone();
        inner.events.push(AuditEvent::ConfigSnapshot { config });
    }

    /// Copies the recorded events out for auditing.
    pub fn events(&self) -> Vec<AuditEvent> {
        self.inner.borrow().events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;

    #[test]
    fn log_accumulates_and_tracks_config() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let shared = AuditShared::new(u.config_of(&["A"]));
        let clone = shared.clone();
        clone.segment_start(1, a);
        clone.segment_end(1, a);
        shared.in_action("A->B", &[a], &[b]);
        assert_eq!(shared.config(), u.config_of(&["B"]));
        shared.snapshot();
        let ev = shared.events();
        assert_eq!(ev.len(), 5, "initial snapshot + 4 events");
        assert!(matches!(ev[0], AuditEvent::ConfigSnapshot { .. }));
        assert!(matches!(ev.last(), Some(AuditEvent::ConfigSnapshot { .. })));
    }
}
