//! Shared run instrumentation: the audit face of the unified event bus,
//! plus the "current configuration" view used to designate decoders.
//!
//! Every recorded [`AuditEvent`] is published on the run's [`Bus`] as a
//! timestamped `Payload::Audit` event, so the safety auditor, the temporal
//! monitor, the JSONL trace and the timeline report all replay the *same*
//! stream. The handle keeps an [`AuditTrail`] sink attached for its own
//! reads (`events()`, loss adjudication); callers can attach further sinks
//! to the same bus. The simulation is single-threaded by construction, so
//! `Rc<RefCell<…>>` is the right tool.

use std::cell::RefCell;
use std::rc::Rc;

use sada_expr::{CompId, Config};
use sada_model::AuditEvent;
use sada_obs::{AuditTrail, Bus, Payload, SimTime, NO_ACTOR};

/// Cloneable handle to the run-wide audit instrumentation.
#[derive(Debug, Clone)]
pub struct AuditShared {
    bus: Bus,
    config: Rc<RefCell<Config>>,
    trail: Rc<RefCell<AuditTrail>>,
}

impl AuditShared {
    /// Starts instrumentation on `bus` with the system in `initial`
    /// configuration (published as the first snapshot, at time zero). An
    /// [`AuditTrail`] sink is attached to the bus so the handle can read
    /// back the audit-layer projection of the stream.
    pub fn new(bus: &Bus, initial: Config) -> Self {
        let trail = Rc::new(RefCell::new(AuditTrail::new()));
        bus.attach(&trail);
        let shared =
            AuditShared { bus: bus.clone(), config: Rc::new(RefCell::new(initial.clone())), trail };
        shared.emit(SimTime::ZERO, AuditEvent::ConfigSnapshot { config: initial });
        shared
    }

    /// The bus every audit event is published on.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The configuration as currently believed by the instrumentation.
    pub fn config(&self) -> Config {
        self.config.borrow().clone()
    }

    fn emit(&self, at: SimTime, ev: AuditEvent) {
        // Audit facts are system-level (segments span sender and receiver),
        // so they carry the NO_ACTOR sentinel rather than one process.
        self.bus.publish(at, NO_ACTOR, || Payload::Audit(ev));
    }

    /// Records the start of a critical communication segment.
    pub fn segment_start(&self, now: SimTime, cid: u64, comp: CompId) {
        self.emit(now, AuditEvent::SegmentStart { cid, comp });
    }

    /// Records the clean completion of a segment.
    pub fn segment_end(&self, now: SimTime, cid: u64, comp: CompId) {
        self.emit(now, AuditEvent::SegmentEnd { cid, comp });
    }

    /// Records a segment destroyed by an environmental fault (the packet
    /// died in a crash outage, not under an adaptive action).
    pub fn segment_lost(&self, now: SimTime, cid: u64, comp: CompId) {
        self.emit(now, AuditEvent::SegmentLost { cid, comp });
    }

    /// Closes every still-open segment whose cid has the given high-16-bit
    /// `owner` tag as [`AuditEvent::SegmentLost`], returning the closed
    /// set. Called when the owning client restarts after a crash (and again
    /// by the scenario harness at end of run, in case the client never came
    /// back): packets multicast while the client was down were destroyed by
    /// the fault, so their segments can never end normally and must not be
    /// counted as interrupted by later adaptive actions. The caller
    /// suppresses normal segment-ends for the returned cids — a packet
    /// still in flight at restart (at most one link latency's worth) is
    /// conservatively treated as lost too.
    pub fn adjudicate_lost(&self, now: SimTime, owner: u64) -> Vec<(u64, CompId)> {
        let open: Vec<(u64, CompId)> = {
            let trail = self.trail.borrow();
            let mut open = std::collections::HashMap::new();
            for ev in trail.events() {
                match ev {
                    AuditEvent::SegmentStart { cid, comp } => {
                        open.insert(*cid, *comp);
                    }
                    AuditEvent::SegmentEnd { cid, .. } | AuditEvent::SegmentLost { cid, .. } => {
                        open.remove(cid);
                    }
                    _ => {}
                }
            }
            let mut v: Vec<_> = open.into_iter().filter(|(cid, _)| cid >> 48 == owner).collect();
            v.sort_unstable();
            v
        };
        for &(cid, comp) in &open {
            self.segment_lost(now, cid, comp);
        }
        open
    }

    /// Records an atomic structural in-action and updates the configuration
    /// view.
    pub fn in_action(&self, now: SimTime, label: &str, removes: &[CompId], adds: &[CompId]) {
        {
            let mut config = self.config.borrow_mut();
            for &c in removes {
                config.remove(c);
            }
            for &c in adds {
                config.insert(c);
            }
        }
        let comps = removes.iter().chain(adds).copied().collect();
        self.emit(now, AuditEvent::InAction { label: label.to_string(), comps });
    }

    /// Records a configuration snapshot at a quiescent point.
    pub fn snapshot(&self, now: SimTime) {
        let config = self.config.borrow().clone();
        self.emit(now, AuditEvent::ConfigSnapshot { config });
    }

    /// The audit-layer projection of the bus stream, for the auditor.
    pub fn events(&self) -> Vec<AuditEvent> {
        self.trail.borrow().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;
    use sada_obs::CounterSink;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn log_accumulates_and_tracks_config() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let bus = Bus::new();
        let shared = AuditShared::new(&bus, u.config_of(&["A"]));
        let clone = shared.clone();
        clone.segment_start(t(1), 1, a);
        clone.segment_end(t(2), 1, a);
        shared.in_action(t(3), "A->B", &[a], &[b]);
        assert_eq!(shared.config(), u.config_of(&["B"]));
        shared.snapshot(t(4));
        let ev = shared.events();
        assert_eq!(ev.len(), 5, "initial snapshot + 4 events");
        assert!(matches!(ev[0], AuditEvent::ConfigSnapshot { .. }));
        assert!(matches!(ev.last(), Some(AuditEvent::ConfigSnapshot { .. })));
    }

    #[test]
    fn every_audit_fact_rides_the_shared_bus() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let bus = Bus::new();
        let counters = Rc::new(RefCell::new(CounterSink::new()));
        bus.attach(&counters);
        let shared = AuditShared::new(&bus, u.config_of(&["A"]));
        shared.segment_start(t(1), 7, a);
        shared.segment_lost(t(2), 7, a);
        assert_eq!(counters.borrow().audit, 3, "snapshot + start + lost, all published");
        assert_eq!(counters.borrow().total, 3, "nothing but audit events emitted here");
        assert_eq!(shared.events().len(), 3, "trail sees the same stream");
    }

    #[test]
    fn adjudication_closes_only_the_owners_open_segments() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let bus = Bus::new();
        let shared = AuditShared::new(&bus, u.config_of(&["A"]));
        let owned = (2 << 48) | 5;
        let other = (1 << 48) | 9;
        shared.segment_start(t(1), owned, a);
        shared.segment_start(t(1), other, a);
        let closed = shared.adjudicate_lost(t(3), 2);
        assert_eq!(closed, vec![(owned, a)]);
        let lost: Vec<_> = shared
            .events()
            .into_iter()
            .filter(|e| matches!(e, AuditEvent::SegmentLost { .. }))
            .collect();
        assert_eq!(lost, vec![AuditEvent::SegmentLost { cid: owned, comp: a }]);
    }
}
