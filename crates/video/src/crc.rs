//! CRC-32 (IEEE 802.3), implemented from scratch with a lazily-built
//! lookup table. Frames carry a CRC so the player can detect corruption
//! caused by unsafe adaptation (wrong-cipher decodes) independently of the
//! codec error paths.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        t[i] = crc;
        i += 1;
    }
    t
}

/// Computes the CRC-32 of `data` (IEEE, reflected, init/final `0xFFFFFFFF`).
///
/// # Examples
///
/// ```
/// // The classic check value.
/// assert_eq!(sada_video::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    // The table is tiny; rebuilding per call would be wasteful, so cache it.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let t = TABLE.get_or_init(table);
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the server has to be blocked until the last packet".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let d = vec![7u8; 1000];
        assert_eq!(crc32(&d), crc32(&d));
    }
}
