//! Synthetic video frames, fragmentation to MTU-sized packets, reassembly,
//! and the player sink with its quality statistics.
//!
//! Frame wire format inside packet payloads (big-endian):
//!
//! ```text
//! [frame_no: u32] [frag_ix: u16] [frag_count: u16] [crc32-of-frame: u32] [bytes…]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sada_meta::Packet;
use std::collections::HashMap;

use crate::crc::crc32;

/// Fragment header size in bytes.
pub const FRAG_HEADER: usize = 12;

/// Generates synthetic frames: run-heavy byte patterns (so RLE compresses)
/// with a per-frame CRC, deterministic in the seed.
#[derive(Debug)]
pub struct FrameSource {
    rng: StdRng,
    frame_size: usize,
    next_frame: u32,
}

impl FrameSource {
    /// A source producing `frame_size`-byte frames.
    pub fn new(seed: u64, frame_size: usize) -> Self {
        FrameSource { rng: StdRng::seed_from_u64(seed), frame_size, next_frame: 0 }
    }

    /// Number of frames generated so far.
    pub fn frames_generated(&self) -> u32 {
        self.next_frame
    }

    /// Produces the next frame's content: `(frame_no, bytes)`.
    pub fn next_frame(&mut self) -> (u32, Vec<u8>) {
        let no = self.next_frame;
        self.next_frame += 1;
        let mut bytes = Vec::with_capacity(self.frame_size);
        // Runs of random length/value mimic flat regions of real frames.
        while bytes.len() < self.frame_size {
            let run = self.rng.gen_range(4..64).min(self.frame_size - bytes.len());
            let value: u8 = self.rng.gen();
            bytes.extend(std::iter::repeat_n(value, run));
        }
        (no, bytes)
    }
}

/// Splits a frame into MTU-sized packets with fragment headers.
///
/// `stream` and `first_seq` assign packet identities; returns the packets
/// and the next unused sequence number.
pub fn fragment(
    stream: u32,
    first_seq: u64,
    frame_no: u32,
    frame: &[u8],
    mtu: usize,
) -> (Vec<Packet>, u64) {
    assert!(mtu > FRAG_HEADER, "mtu must exceed the fragment header");
    let chunk = mtu - FRAG_HEADER;
    let count = frame.len().div_ceil(chunk).max(1);
    let crc = crc32(frame);
    let mut out = Vec::with_capacity(count);
    let mut seq = first_seq;
    for (ix, piece) in frame.chunks(chunk).enumerate() {
        let mut payload = Vec::with_capacity(FRAG_HEADER + piece.len());
        payload.extend_from_slice(&frame_no.to_be_bytes());
        payload.extend_from_slice(&(ix as u16).to_be_bytes());
        payload.extend_from_slice(&(count as u16).to_be_bytes());
        payload.extend_from_slice(&crc.to_be_bytes());
        payload.extend_from_slice(piece);
        out.push(Packet::new(stream, seq, payload));
        seq += 1;
    }
    if frame.is_empty() {
        let mut payload = Vec::with_capacity(FRAG_HEADER);
        payload.extend_from_slice(&frame_no.to_be_bytes());
        payload.extend_from_slice(&0u16.to_be_bytes());
        payload.extend_from_slice(&1u16.to_be_bytes());
        payload.extend_from_slice(&crc.to_be_bytes());
        out.push(Packet::new(stream, seq, payload));
        seq += 1;
    }
    (out, seq)
}

/// A decoded fragment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FragInfo {
    frame_no: u32,
    frag_ix: u16,
    frag_count: u16,
    crc: u32,
}

fn parse_header(payload: &[u8]) -> Option<FragInfo> {
    if payload.len() < FRAG_HEADER {
        return None;
    }
    Some(FragInfo {
        frame_no: u32::from_be_bytes(payload[0..4].try_into().ok()?),
        frag_ix: u16::from_be_bytes(payload[4..6].try_into().ok()?),
        frag_count: u16::from_be_bytes(payload[6..8].try_into().ok()?),
        crc: u32::from_be_bytes(payload[8..12].try_into().ok()?),
    })
}

/// Quality statistics accumulated by a [`PlayerSink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlayerStats {
    /// Packets handed to the player.
    pub packets: u64,
    /// Packets arriving corrupted (codec failure) or undecodable.
    pub corrupted_packets: u64,
    /// Frames fully reassembled with a valid CRC.
    pub frames_displayed: u64,
    /// Frames whose reassembled bytes failed the CRC.
    pub frames_corrupted: u64,
    /// Frames abandoned (missing fragments when a much newer frame
    /// completed).
    pub frames_dropped: u64,
}

/// In-progress reassembly: fragments received, payload size so far, and
/// the per-fragment slots (None = still missing).
type PartialFrame = (u16, u32, Vec<Option<Vec<u8>>>);

/// Reassembles fragments into frames and keeps score — the "video player"
/// at the end of each client's receive path.
#[derive(Debug)]
pub struct PlayerSink {
    partial: HashMap<u32, PartialFrame>,
    stats: PlayerStats,
    highest_completed: Option<u32>,
}

impl Default for PlayerSink {
    fn default() -> Self {
        Self::new()
    }
}

impl PlayerSink {
    /// An empty player.
    pub fn new() -> Self {
        PlayerSink {
            partial: HashMap::new(),
            stats: PlayerStats::default(),
            highest_completed: None,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> PlayerStats {
        self.stats
    }

    /// Accepts one packet off the receive chain.
    pub fn accept(&mut self, pkt: &Packet) {
        self.stats.packets += 1;
        // A packet that still carries codec tags was never fully decoded
        // (no matching decoder in the chain) — as corrupt as a failed
        // decrypt for the viewer.
        if pkt.corrupted || !pkt.tags.is_empty() {
            self.stats.corrupted_packets += 1;
            return;
        }
        let info = match parse_header(&pkt.payload) {
            Some(i) if i.frag_count > 0 && i.frag_ix < i.frag_count => i,
            _ => {
                self.stats.corrupted_packets += 1;
                return;
            }
        };
        let entry = self
            .partial
            .entry(info.frame_no)
            .or_insert_with(|| (info.frag_count, info.crc, vec![None; info.frag_count as usize]));
        if entry.0 != info.frag_count || entry.1 != info.crc {
            // Conflicting headers within one frame: corruption slipped past.
            self.stats.corrupted_packets += 1;
            return;
        }
        entry.2[info.frag_ix as usize] = Some(pkt.payload[FRAG_HEADER..].to_vec());
        if entry.2.iter().all(Option::is_some) {
            let (_, crc, parts) = self.partial.remove(&info.frame_no).expect("just inserted");
            let frame: Vec<u8> = parts.into_iter().flatten().flatten().collect();
            if crc32(&frame) == crc {
                self.stats.frames_displayed += 1;
            } else {
                self.stats.frames_corrupted += 1;
            }
            self.highest_completed =
                Some(self.highest_completed.map_or(info.frame_no, |h| h.max(info.frame_no)));
            self.garbage_collect();
        }
    }

    /// Drops partial frames that can never complete (far older than the
    /// newest displayed frame).
    fn garbage_collect(&mut self) {
        if let Some(h) = self.highest_completed {
            let stale: Vec<u32> = self.partial.keys().copied().filter(|&f| f + 30 < h).collect();
            for f in stale {
                self.partial.remove(&f);
                self.stats.frames_dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_reassemble_round_trip() {
        let mut src = FrameSource::new(1, 3000);
        let mut player = PlayerSink::new();
        let mut seq = 0;
        for _ in 0..10 {
            let (no, frame) = src.next_frame();
            let (pkts, next) = fragment(1, seq, no, &frame, 512);
            assert!(pkts.len() > 1, "3000B frame fragments at 512B MTU");
            seq = next;
            for p in &pkts {
                player.accept(p);
            }
        }
        let s = player.stats();
        assert_eq!(s.frames_displayed, 10);
        assert_eq!(s.frames_corrupted, 0);
        assert_eq!(s.corrupted_packets, 0);
    }

    #[test]
    fn out_of_order_fragments_still_complete() {
        let (no, frame) = FrameSource::new(2, 2000).next_frame();
        let (mut pkts, _) = fragment(1, 0, no, &frame, 300);
        pkts.reverse();
        let mut player = PlayerSink::new();
        for p in &pkts {
            player.accept(p);
        }
        assert_eq!(player.stats().frames_displayed, 1);
    }

    #[test]
    fn tampered_fragment_fails_crc() {
        let (no, frame) = FrameSource::new(3, 1000).next_frame();
        let (mut pkts, _) = fragment(1, 0, no, &frame, 400);
        let last = pkts.len() - 1;
        let plen = pkts[last].payload.len();
        pkts[last].payload[plen - 1] ^= 0xFF;
        let mut player = PlayerSink::new();
        for p in &pkts {
            player.accept(p);
        }
        assert_eq!(player.stats().frames_corrupted, 1);
        assert_eq!(player.stats().frames_displayed, 0);
    }

    #[test]
    fn corrupted_flag_counts_without_parsing() {
        let mut player = PlayerSink::new();
        let mut pkt = Packet::new(1, 0, vec![0; 64]);
        pkt.corrupted = true;
        player.accept(&pkt);
        assert_eq!(player.stats().corrupted_packets, 1);
    }

    #[test]
    fn undecoded_tagged_packet_counts_corrupted() {
        let mut player = PlayerSink::new();
        let mut pkt = Packet::new(1, 0, vec![0; 64]);
        pkt.tags.push(sada_meta::tags::DES128);
        player.accept(&pkt);
        assert_eq!(player.stats().corrupted_packets, 1);
    }

    #[test]
    fn garbage_payload_counts_corrupted() {
        let mut player = PlayerSink::new();
        player.accept(&Packet::new(1, 0, vec![1, 2, 3])); // shorter than header
        let mut bad_header = vec![0u8; FRAG_HEADER];
        bad_header[6] = 0; // frag_count = 0
        bad_header[7] = 0;
        player.accept(&Packet::new(1, 1, bad_header));
        assert_eq!(player.stats().corrupted_packets, 2);
    }

    #[test]
    fn empty_frame_round_trips() {
        let (pkts, next) = fragment(1, 5, 9, &[], 100);
        assert_eq!(pkts.len(), 1);
        assert_eq!(next, 6);
        let mut player = PlayerSink::new();
        player.accept(&pkts[0]);
        assert_eq!(player.stats().frames_displayed, 1);
    }

    #[test]
    fn frames_are_run_heavy() {
        let (_, frame) = FrameSource::new(4, 4096).next_frame();
        let compressed = sada_meta::filters::rle::rle_compress(&frame);
        assert!(compressed.len() < frame.len(), "synthetic frames must compress");
    }

    #[test]
    fn stale_partials_get_dropped() {
        let mut player = PlayerSink::new();
        // Frame 0: only first fragment of two arrives.
        let (no, frame) = FrameSource::new(5, 1000).next_frame();
        let (pkts, mut seq) = fragment(1, 0, no, &frame, 520);
        assert!(pkts.len() >= 2);
        player.accept(&pkts[0]);
        // Then 40 complete single-fragment frames push it out of the window.
        let mut src = FrameSource::new(6, 100);
        let (_, _) = src.next_frame(); // skip frame 0 to keep numbers ahead
        for n in 1..=40u32 {
            let (_, f) = src.next_frame();
            let (ps, next) = fragment(1, seq, n, &f, 500);
            seq = next;
            for p in &ps {
                player.accept(p);
            }
        }
        assert_eq!(player.stats().frames_dropped, 1);
    }
}
