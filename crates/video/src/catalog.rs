//! The case study's component catalog: maps the paper's component names
//! (`E1`, `E2`, `D1`…`D5`) to concrete MetaSocket filters, and applies
//! [`LocalAction`]s to filter chains.

use sada_expr::{CompId, Config, Universe};
use sada_meta::filters::des::{CipherDecoder, CipherEncoder};
use sada_meta::filters::fec::{FecDecoder, FecEncoder};
use sada_meta::filters::rle::{RleDecoder, RleEncoder};
use sada_meta::{tags, ChainError, Filter, FilterChain};
use sada_proto::LocalAction;

/// Shared DES-64 key (E1 / D1 / D4).
pub const DES64_KEY: u64 = 0x1334_5779_9BBC_DFF1;
/// First DES-128 key (E2 / D2 / D3 / D5).
pub const DES128_KEY1: u64 = 0x0123_4567_89AB_CDEF;
/// Second DES-128 key.
pub const DES128_KEY2: u64 = 0xFEDC_BA98_7654_3210;

/// FEC group size used by the bandwidth-adaptation scenario.
pub const FEC_GROUP: usize = 4;

/// Instantiates the filter for a case-study component name.
///
/// Beyond the paper's `E1, E2, D1..D5`, the catalog knows the FEC
/// components of the bandwidth-adaptation scenario: `FE` (server-side
/// parity encoder) and `FDH`/`FDL` (client-side recovery decoders).
///
/// # Panics
///
/// Panics on any other name — the catalog is intentionally closed.
pub fn make_filter(name: &str) -> Box<dyn Filter> {
    match name {
        "E1" => Box::new(CipherEncoder::des64(DES64_KEY)),
        "E2" => Box::new(CipherEncoder::des128(DES128_KEY1, DES128_KEY2)),
        "D1" | "D4" => Box::new(CipherDecoder::des64(DES64_KEY)),
        "D2" => Box::new(CipherDecoder::des128_compat(DES128_KEY1, DES128_KEY2, DES64_KEY)),
        "D3" | "D5" => Box::new(CipherDecoder::des128(DES128_KEY1, DES128_KEY2)),
        "FE" => Box::new(FecEncoder::new(FEC_GROUP)),
        "FDH" | "FDL" => Box::new(FecDecoder::new(256)),
        "CE" => Box::new(RleEncoder::new()),
        "CDH" | "CDL" => Box::new(RleDecoder::new()),
        other => panic!("unknown case-study component {other:?}"),
    }
}

/// Where a newly-inserted component belongs in its chain: the FEC encoder
/// goes at the tail of the send chain (parity over the final ciphertext);
/// the RLE compressor (`CE`) at the head of the send chain (compress
/// plaintext, not ciphertext) and its decompressors (`CDH`/`CDL`) at the
/// tail of the receive chain (after decryption); everything else —
/// decoders — goes at the head of the receive chain so it runs before the
/// cipher decoders.
pub fn insert_position(chain: &FilterChain, name: &str) -> usize {
    match name {
        "FE" | "CDH" | "CDL" => chain.len(),
        _ => 0,
    }
}

/// Which packet tags a component can decode (encoders return an empty
/// slice).
pub fn accepts(name: &str) -> &'static [u16] {
    match name {
        "D1" | "D4" => &[tags::DES64],
        "D3" | "D5" => &[tags::DES128],
        "D2" => &[tags::DES128, tags::DES64],
        _ => &[],
    }
}

/// The decoder component (among `candidates`, e.g. a client's possible
/// decoders) that the configuration `cfg` designates for packets tagged
/// `tag`: present in `cfg` and accepting `tag`. `None` means such packets
/// are currently undecodable on that client — a dependency violation in the
/// making.
pub fn designated_decoder(
    u: &Universe,
    cfg: &Config,
    candidates: &[&str],
    tag: u16,
) -> Option<CompId> {
    candidates.iter().find_map(|name| {
        let id = u.id(name)?;
        (cfg.contains(id) && accepts(name).contains(&tag)).then_some(id)
    })
}

/// Applies a local action to a filter chain: paired removes/adds become
/// in-place replacements; leftovers become removals or head insertions.
///
/// # Errors
///
/// Propagates [`ChainError`] when the chain's current contents do not match
/// the action (e.g. removing an absent component) — the runtime treats that
/// as a failed in-action.
pub fn apply_local_action(
    chain: &mut FilterChain,
    u: &Universe,
    la: &LocalAction,
) -> Result<(), ChainError> {
    let removes: Vec<&str> = la.removes.iter().map(|&c| u.name(c)).collect();
    let adds: Vec<&str> = la.adds.iter().map(|&c| u.name(c)).collect();
    let paired = removes.len().min(adds.len());
    for i in 0..paired {
        chain.replace(removes[i], adds[i], make_filter(adds[i]))?;
    }
    for name in &removes[paired..] {
        chain.remove(name)?;
    }
    for name in &adds[paired..] {
        chain.insert(insert_position(chain, name), name, make_filter(name))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_meta::Packet;
    use sada_plan::ActionId;

    fn u7() -> Universe {
        let mut u = Universe::new();
        for n in ["E1", "E2", "D1", "D2", "D3", "D4", "D5"] {
            u.intern(n);
        }
        u
    }

    fn la(u: &Universe, removes: &[&str], adds: &[&str]) -> LocalAction {
        LocalAction {
            action: ActionId(0),
            removes: removes.iter().map(|n| u.id(n).unwrap()).collect(),
            adds: adds.iter().map(|n| u.id(n).unwrap()).collect(),
            needs_global_drain: false,
        }
    }

    #[test]
    fn every_component_constructs_and_codes() {
        let pkt = Packet::new(0, 1, b"frame bytes".to_vec());
        for (enc, dec) in
            [("E1", "D1"), ("E1", "D4"), ("E2", "D3"), ("E2", "D5"), ("E2", "D2"), ("E1", "D2")]
        {
            let mut e = make_filter(enc);
            let mut d = make_filter(dec);
            let wire = e.process(pkt.clone()).pop().unwrap();
            let out = d.process(wire).pop().unwrap();
            assert!(out.is_clean_plaintext(), "{enc} -> {dec}");
            assert_eq!(out.payload, pkt.payload, "{enc} -> {dec}");
        }
    }

    #[test]
    fn rle_components_round_trip_through_cipher() {
        // Send chain [CE, E1]; receive chain [D1, CDH].
        let mut send = FilterChain::new();
        send.push_back("CE", make_filter("CE")).unwrap();
        send.push_back("E1", make_filter("E1")).unwrap();
        let mut recv = FilterChain::new();
        recv.push_back("D1", make_filter("D1")).unwrap();
        recv.push_back("CDH", make_filter("CDH")).unwrap();
        let pkt = Packet::new(0, 1, vec![7u8; 400]);
        let wire = send.push(pkt.clone()).pop().unwrap();
        assert!(wire.payload.len() < 400, "compressed before encryption");
        let out = recv.push(wire).pop().unwrap();
        assert!(out.is_clean_plaintext());
        assert_eq!(out.payload, pkt.payload);
    }

    #[test]
    fn insert_positions_by_component_kind() {
        let mut send = FilterChain::new();
        send.push_back("E1", make_filter("E1")).unwrap();
        assert_eq!(insert_position(&send, "CE"), 0, "compressor before cipher");
        assert_eq!(insert_position(&send, "FE"), 1, "parity after cipher");
        let mut recv = FilterChain::new();
        recv.push_back("D1", make_filter("D1")).unwrap();
        assert_eq!(insert_position(&recv, "CDH"), 1, "decompress after decrypt");
        assert_eq!(insert_position(&recv, "FDH"), 0, "FEC recovery before decrypt");
    }

    #[test]
    #[should_panic(expected = "unknown case-study component")]
    fn unknown_component_panics() {
        let _ = make_filter("E9");
    }

    #[test]
    fn designated_decoder_follows_config_and_tag() {
        let u = u7();
        let handheld = ["D1", "D2", "D3"];
        let cfg = u.config_of(&["D1", "D4", "E1"]);
        assert_eq!(designated_decoder(&u, &cfg, &handheld, tags::DES64), u.id("D1"));
        assert_eq!(designated_decoder(&u, &cfg, &handheld, tags::DES128), None, "D1 can't do 128");
        let cfg2 = u.config_of(&["D2", "D4", "D5", "E2"]);
        assert_eq!(designated_decoder(&u, &cfg2, &handheld, tags::DES128), u.id("D2"));
        assert_eq!(designated_decoder(&u, &cfg2, &handheld, tags::DES64), u.id("D2"), "compat");
        let laptop = ["D4", "D5"];
        assert_eq!(designated_decoder(&u, &cfg2, &laptop, tags::DES128), u.id("D5"));
    }

    #[test]
    fn apply_replacement() {
        let u = u7();
        let mut chain = FilterChain::new();
        chain.push_back("D1", make_filter("D1")).unwrap();
        apply_local_action(&mut chain, &u, &la(&u, &["D1"], &["D2"])).unwrap();
        assert_eq!(chain.names(), vec!["D2"]);
    }

    #[test]
    fn apply_insert_and_remove() {
        let u = u7();
        let mut chain = FilterChain::new();
        chain.push_back("D4", make_filter("D4")).unwrap();
        apply_local_action(&mut chain, &u, &la(&u, &[], &["D5"])).unwrap();
        assert_eq!(chain.names(), vec!["D5", "D4"], "insert at head");
        apply_local_action(&mut chain, &u, &la(&u, &["D4"], &[])).unwrap();
        assert_eq!(chain.names(), vec!["D5"]);
    }

    #[test]
    fn apply_mismatched_chain_errors() {
        let u = u7();
        let mut chain = FilterChain::new();
        chain.push_back("D2", make_filter("D2")).unwrap();
        assert!(apply_local_action(&mut chain, &u, &la(&u, &["D1"], &["D3"])).is_err());
    }

    #[test]
    fn inverse_action_restores_chain() {
        let u = u7();
        let mut chain = FilterChain::new();
        chain.push_back("E1", make_filter("E1")).unwrap();
        let action = la(&u, &["E1"], &["E2"]);
        apply_local_action(&mut chain, &u, &action).unwrap();
        assert_eq!(chain.names(), vec!["E2"]);
        apply_local_action(&mut chain, &u, &action.inverse()).unwrap();
        assert_eq!(chain.names(), vec!["E1"]);
    }
}
