//! The bandwidth-adaptation scenario: a second, fully dynamic use of the
//! safe adaptation process. The link degrades mid-stream, the
//! decision-making monitor notices rising packet loss in client telemetry
//! and asks the manager to insert forward-error-correction filters; the
//! manager plans and executes a safe path that installs the FEC decoders
//! *before* the parity encoder (enforced by an inferred-style dependency
//! invariant `FE ⇒ FDH ∧ FDL`), and frame delivery recovers.
//!
//! This exercises the pieces the DES case study does not: component
//! *insertion* driven by a runtime monitor rather than an operator, and
//! the FEC substrate filters.

use std::collections::HashSet;

use sada_core::AdaptationSpec;
use sada_expr::{Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::Action;
use sada_proto::{ManagerActor, Outcome, ProtoTiming};
use sada_simnet::{ActorId, LinkConfig, SimDuration, SimTime, Simulator};

use crate::actors::{AppMsg, ClientActor, ServerActor, VideoWire};
use crate::audit_log::AuditShared;
use crate::monitor::LossMonitorActor;

/// Tunables for the FEC adaptation run.
#[derive(Debug, Clone)]
pub struct FecScenarioConfig {
    /// RNG seed.
    pub seed: u64,
    /// Frame size in bytes.
    pub frame_size: usize,
    /// Frame period.
    pub frame_period: SimDuration,
    /// Fragmentation MTU.
    pub mtu: usize,
    /// When the server stops capturing.
    pub stream_end: SimTime,
    /// When the network degrades.
    pub loss_starts: SimDuration,
    /// Data-link loss probability after degradation.
    pub loss: f64,
    /// Monitor trigger threshold (loss ratio).
    pub threshold: f64,
    /// Client telemetry period.
    pub report_period: SimDuration,
}

impl Default for FecScenarioConfig {
    fn default() -> Self {
        FecScenarioConfig {
            seed: 21,
            frame_size: 3_000,
            frame_period: SimDuration::from_millis(33),
            mtu: 512,
            stream_end: SimTime::from_millis(4_000),
            loss_starts: SimDuration::from_millis(1_000),
            loss: 0.10,
            threshold: 0.04,
            report_period: SimDuration::from_millis(100),
        }
    }
}

/// What the run produced.
#[derive(Debug, Clone)]
pub struct FecReport {
    /// Protocol outcome of the FEC insertion.
    pub outcome: Option<Outcome>,
    /// When the monitor requested adaptation.
    pub triggered_at: Option<SimTime>,
    /// Frame delivery ratio (displayed / sent) on the degraded link
    /// *before* FEC was active.
    pub lossy_ratio_before: f64,
    /// Frame delivery ratio on the degraded link *after* FEC was active.
    pub lossy_ratio_after: f64,
    /// Packets reconstructed by the FEC decoders across both clients.
    pub recovered_packets: u64,
}

/// The FEC-extended adaptation specification: the DES components (static
/// here) plus `FE`, `FDH`, `FDL` with insertion/removal actions.
pub fn fec_spec() -> (AdaptationSpec, Config, Config) {
    let mut u = Universe::new();
    for n in ["E1", "E2", "D1", "D2", "D3", "D4", "D5", "FE", "FDH", "FDL"] {
        u.intern(n);
    }
    let invariants = InvariantSet::parse(
        &[
            "one_of(D1, D2, D3)",
            "one_of(E1, E2)",
            "E1 => (D1 | D2) & D4",
            "E2 => (D3 | D2) & D5",
            // Parity packets are only useful (and only harmless) when every
            // receiver can consume them.
            "FE => FDH & FDL",
        ],
        &mut u,
    )
    .expect("invariants parse");
    let c = |names: &[&str]| u.config_of(names);
    let actions = vec![
        Action::insert(0, "+FDH", &c(&["FDH"]), 10),
        Action::insert(1, "+FDL", &c(&["FDL"]), 10),
        Action::insert(2, "+FE", &c(&["FE"]), 10),
        Action::remove(3, "-FE", &c(&["FE"]), 10),
        Action::remove(4, "-FDH", &c(&["FDH"]), 10),
        Action::remove(5, "-FDL", &c(&["FDL"]), 10),
    ];
    let mut model = SystemModel::new();
    let server = model.add_process("video-server");
    let handheld = model.add_process("handheld-client");
    let laptop = model.add_process("laptop-client");
    model.place_all(
        &u,
        &[
            ("E1", server),
            ("E2", server),
            ("FE", server),
            ("D1", handheld),
            ("D2", handheld),
            ("D3", handheld),
            ("FDH", handheld),
            ("D4", laptop),
            ("D5", laptop),
            ("FDL", laptop),
        ],
    );
    let source = u.config_of(&["E1", "D1", "D4"]);
    let target = u.config_of(&["E1", "D1", "D4", "FE", "FDH", "FDL"]);
    let spec = AdaptationSpec::new(u, invariants, actions, model, vec![0, 1, 2], HashSet::new());
    (spec, source, target)
}

/// Runs the full monitor-triggered FEC adaptation.
pub fn run_fec_scenario(cfg: &FecScenarioConfig) -> FecReport {
    let (spec, source, target) = fec_spec();
    let bus = sada_obs::Bus::new();
    let audit = AuditShared::new(&bus, source.clone());
    let mut sim: Simulator<VideoWire> = Simulator::new(cfg.seed);
    sim.set_bus(bus);
    sim.set_default_link(LinkConfig::reliable(SimDuration::from_millis(5)));

    let u = spec.universe().clone();
    let server_id = ActorId::from_index(0);
    let handheld_id = ActorId::from_index(1);
    let laptop_id = ActorId::from_index(2);
    let manager_id = ActorId::from_index(3);
    let group = sim.create_group(&[server_id, handheld_id, laptop_id]);

    let server = ServerActor::new(
        u.clone(),
        group,
        vec![vec!["D1", "D2", "D3"], vec!["D4", "D5"]],
        cfg.seed ^ 0xFEC,
        cfg.frame_size,
        cfg.frame_period,
        cfg.mtu,
        cfg.stream_end,
        audit.clone(),
    );
    let s = sim.add_actor("video-server", server);
    let h = sim.add_actor(
        "handheld-client",
        ClientActor::new(u.clone(), 0, &["D1"], SimDuration::from_millis(50), audit.clone())
            .with_monitor(ActorId::from_index(4), cfg.report_period, cfg.stream_end),
    );
    let l = sim.add_actor(
        "laptop-client",
        ClientActor::new(u.clone(), 1, &["D4"], SimDuration::from_millis(50), audit.clone())
            .with_monitor(ActorId::from_index(4), cfg.report_period, cfg.stream_end),
    );
    let manager = sim.add_actor(
        "adaptation-manager",
        ManagerActor::<AppMsg>::new(
            ProtoTiming::default(),
            Box::new(spec.runtime_planner()),
            vec![s, h, l],
            source,
            target,
        )
        .with_request_trigger(Box::new(|m: &AppMsg| matches!(m, AppMsg::RequestAdaptation))),
    );
    let monitor = sim.add_actor("loss-monitor", LossMonitorActor::new(manager, cfg.threshold, 50));
    debug_assert_eq!(
        (s, h, l, manager, monitor.index() as u32),
        (server_id, handheld_id, laptop_id, manager_id, 4)
    );
    sim.actor_mut::<ServerActor>(s).unwrap().set_manager(manager);
    sim.actor_mut::<ClientActor>(h).unwrap().set_manager(manager);
    sim.actor_mut::<ClientActor>(l).unwrap().set_manager(manager);

    // Phase 1: healthy stream.
    sim.run_until(SimTime::ZERO + cfg.loss_starts);
    // Degrade the data links server -> clients (control links stay clean —
    // the manager's channel is a separate wired path in the paper's setup).
    for &client in &[h, l] {
        sim.set_link(s, client, LinkConfig::lossy(SimDuration::from_millis(5), cfg.loss));
    }
    let displayed_at = |sim: &Simulator<VideoWire>| {
        let hh = sim.actor::<ClientActor>(h).unwrap().stats().frames_displayed;
        let lp = sim.actor::<ClientActor>(l).unwrap().stats().frames_displayed;
        hh + lp
    };
    let sent_at =
        |sim: &Simulator<VideoWire>| sim.actor::<ServerActor>(s).unwrap().stats.frames_sent;
    let (d0, s0) = (displayed_at(&sim), sent_at(&sim));

    // Phase 2: run until the monitor fires and the adaptation settles (or
    // a hard deadline passes). The deadline advances in fixed increments of
    // *virtual* time, so an empty queue cannot spin the loop forever.
    let deadline = SimTime::ZERO + cfg.loss_starts + SimDuration::from_secs(2);
    let mut t = sim.now();
    while t < deadline {
        t = (t + SimDuration::from_millis(25)).min(deadline);
        sim.run_until(t);
        let fec_active =
            sim.actor::<ManagerActor<AppMsg>>(manager).and_then(|m| m.outcome.clone()).is_some();
        if fec_active {
            break;
        }
    }
    let (d1, s1) = (displayed_at(&sim), sent_at(&sim));

    // Phase 3: degraded link, FEC active.
    sim.run();
    let (d2, s2) = (displayed_at(&sim), sent_at(&sim));

    let ratio = |dd: u64, ds: u64| {
        if ds == 0 {
            0.0
        } else {
            dd as f64 / (2 * ds) as f64 // two clients per sent frame
        }
    };
    let mgr = sim.actor::<ManagerActor<AppMsg>>(manager).unwrap();
    let mon = sim.actor::<LossMonitorActor>(monitor).unwrap();
    // Count recoveries directly off the concrete FEC decoders.
    let recovered_direct: u64 = [h, l]
        .iter()
        .map(|&c| {
            let client = sim.actor::<ClientActor>(c).unwrap();
            ["FDH", "FDL"]
                .iter()
                .filter_map(|n| {
                    client.chain.filter(n).and_then(|f| {
                        f.as_any().downcast_ref::<sada_meta::filters::fec::FecDecoder>()
                    })
                })
                .map(|d| d.recovered)
                .sum::<u64>()
        })
        .sum();

    FecReport {
        outcome: mgr.outcome.clone(),
        triggered_at: mon.fired_at,
        lossy_ratio_before: ratio(d1 - d0, s1 - s0),
        lossy_ratio_after: ratio(d2 - d1, s2 - s1),
        recovered_packets: recovered_direct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fec_spec_orders_decoders_before_encoder() {
        let (spec, source, target) = fec_spec();
        let map = spec.minimum_adaptation_path(&source, &target).expect("path exists");
        assert_eq!(map.steps.len(), 3);
        let names: Vec<&str> =
            map.action_ids().iter().map(|a| spec.actions()[a.index()].name()).collect();
        assert_eq!(names.last(), Some(&"+FE"), "encoder inserted last");
        assert!(names[..2].contains(&"+FDH") && names[..2].contains(&"+FDL"));
    }

    #[test]
    fn monitor_triggers_and_fec_improves_delivery() {
        let report = run_fec_scenario(&FecScenarioConfig::default());
        let outcome = report.outcome.as_ref().expect("adaptation ran");
        assert!(outcome.success, "FEC insertion must succeed");
        assert!(report.triggered_at.is_some(), "monitor must fire");
        assert!(report.recovered_packets > 0, "FEC must actually recover losses");
        assert!(
            report.lossy_ratio_after > report.lossy_ratio_before + 0.08,
            "delivery must improve: before={:.3} after={:.3}",
            report.lossy_ratio_before,
            report.lossy_ratio_after
        );
    }

    #[test]
    fn without_degradation_monitor_stays_quiet() {
        let cfg = FecScenarioConfig {
            loss: 0.0,
            stream_end: SimTime::from_millis(1_500),
            ..FecScenarioConfig::default()
        };
        let report = run_fec_scenario(&cfg);
        assert!(report.triggered_at.is_none());
        assert!(report.outcome.is_none(), "no request, no adaptation");
        assert_eq!(report.recovered_packets, 0);
    }
}
