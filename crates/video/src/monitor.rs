//! The decision-making component (one of the paper's four tasks of dynamic
//! adaptation, Section 1): a monitor that watches client telemetry and
//! decides *when* the system should adapt. Here: a loss-rate trigger that
//! tells the adaptation manager to insert forward error correction when
//! packet delivery degrades.

use sada_simnet::{Actor, ActorId, Context, SimTime};

use crate::actors::{AppMsg, VideoWire};
use sada_proto::Wire;

/// Watches [`AppMsg::LossReport`] telemetry; when any client's observed
/// loss ratio exceeds `threshold` (with a minimum sample size), sends
/// [`AppMsg::RequestAdaptation`] to the manager exactly once.
pub struct LossMonitorActor {
    manager: ActorId,
    threshold: f64,
    min_samples: u64,
    /// When the trigger fired, if it did.
    pub fired_at: Option<SimTime>,
    /// Latest loss ratio per client (diagnostics).
    pub last_loss: Vec<(u32, f64)>,
}

impl LossMonitorActor {
    /// Creates a monitor reporting to `manager`. `threshold` is the loss
    /// ratio in `[0, 1]` above which adaptation is requested; reports with
    /// fewer than `min_samples` expected packets are ignored (startup
    /// noise).
    pub fn new(manager: ActorId, threshold: f64, min_samples: u64) -> Self {
        assert!((0.0..1.0).contains(&threshold), "threshold must be in [0,1)");
        LossMonitorActor { manager, threshold, min_samples, fired_at: None, last_loss: Vec::new() }
    }
}

impl Actor<VideoWire> for LossMonitorActor {
    fn on_message(&mut self, ctx: &mut Context<'_, VideoWire>, _from: ActorId, msg: VideoWire) {
        let Wire::App(AppMsg::LossReport { client, received, highest_seq }) = msg else {
            return;
        };
        let expected = highest_seq + 1;
        if expected < self.min_samples {
            return;
        }
        // `highest_seq` is itself a received packet, so `received >= 1` and
        // the ratio is conservative (trailing losses are invisible until a
        // later packet arrives).
        let loss = 1.0 - (received as f64 / expected as f64);
        match self.last_loss.iter_mut().find(|(c, _)| *c == client) {
            Some(slot) => slot.1 = loss,
            None => self.last_loss.push((client, loss)),
        }
        if self.fired_at.is_none() && loss > self.threshold {
            self.fired_at = Some(ctx.now());
            ctx.send(self.manager, Wire::App(AppMsg::RequestAdaptation));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_simnet::{SimDuration, Simulator};

    /// Records what the "manager" receives.
    #[derive(Default)]
    struct Sink {
        requests: u32,
    }
    impl Actor<VideoWire> for Sink {
        fn on_message(
            &mut self,
            _ctx: &mut Context<'_, VideoWire>,
            _from: ActorId,
            msg: VideoWire,
        ) {
            if matches!(msg, Wire::App(AppMsg::RequestAdaptation)) {
                self.requests += 1;
            }
        }
    }

    fn report(client: u32, received: u64, highest_seq: u64) -> VideoWire {
        Wire::App(AppMsg::LossReport { client, received, highest_seq })
    }

    #[test]
    fn fires_once_above_threshold() {
        let mut sim: Simulator<VideoWire> = Simulator::new(0);
        let sink = sim.add_actor("sink", Sink::default());
        let mon = sim.add_actor("monitor", LossMonitorActor::new(sink, 0.10, 20));
        // Healthy, then degraded, then degraded again.
        sim.inject(sink, mon, report(0, 99, 99), SimDuration::from_millis(1));
        sim.inject(sink, mon, report(0, 80, 99), SimDuration::from_millis(2));
        sim.inject(sink, mon, report(1, 70, 99), SimDuration::from_millis(3));
        sim.run();
        assert_eq!(sim.actor::<Sink>(sink).unwrap().requests, 1, "exactly one request");
        let m = sim.actor::<LossMonitorActor>(mon).unwrap();
        assert!(m.fired_at.is_some());
        assert_eq!(m.last_loss.len(), 2);
    }

    #[test]
    fn ignores_small_samples_and_healthy_streams() {
        let mut sim: Simulator<VideoWire> = Simulator::new(0);
        let sink = sim.add_actor("sink", Sink::default());
        let mon = sim.add_actor("monitor", LossMonitorActor::new(sink, 0.10, 50));
        sim.inject(sink, mon, report(0, 1, 9), SimDuration::from_millis(1)); // tiny sample
        sim.inject(sink, mon, report(0, 97, 99), SimDuration::from_millis(2)); // 3% loss
        sim.run();
        assert_eq!(sim.actor::<Sink>(sink).unwrap().requests, 0);
        assert!(sim.actor::<LossMonitorActor>(mon).unwrap().fired_at.is_none());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = LossMonitorActor::new(ActorId::from_index(0), 1.5, 1);
    }
}
