//! # sada-video — the Figure 3 video multicasting application
//!
//! The DSN 2004 case study: a video server multicasts an encrypted stream
//! to a hand-held and a laptop client through MetaSocket filter chains, and
//! the system is hardened from DES-64 to DES-128 at runtime by the safe
//! adaptation process.
//!
//! * [`FrameSource`] / [`fragment`] / [`PlayerSink`] — synthetic capture,
//!   MTU fragmentation with per-frame CRC-32 ([`crc32`], from scratch), and
//!   the player with corruption statistics.
//! * [`ServerActor`] / [`ClientActor`] — the three processes, each
//!   embedding a `sada-proto` agent that blocks, drains, and recomposes its
//!   filter chain on the manager's command.
//! * [`run_video_scenario`] — one-call runs of the whole world under the
//!   safe protocol, a naive hot-swap baseline, or a Kramer–Magee-style
//!   quiescence baseline, each independently audited by
//!   [`sada_model::SafetyAuditor`].
//!
//! ```
//! use sada_video::{run_video_scenario, ScenarioConfig, Strategy};
//!
//! let report = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
//! assert!(report.outcome.as_ref().unwrap().success);
//! assert_eq!(report.corrupted_packets(), 0);
//! ```

mod actors;
mod audit_log;
pub mod catalog;
mod crc;
mod fec_scenario;
mod frame;
mod monitor;
mod scenario;

pub use actors::{AppMsg, ClientActor, CtlMsg, ServerActor, ServerStats, VideoWire};
pub use audit_log::AuditShared;
pub use crc::crc32;
pub use fec_scenario::{fec_spec, run_fec_scenario, FecReport, FecScenarioConfig};
pub use frame::{fragment, FrameSource, PlayerSink, PlayerStats, FRAG_HEADER};
pub use monitor::LossMonitorActor;
pub use scenario::{run_video_scenario, run_video_with, ScenarioConfig, Strategy, VideoReport};
