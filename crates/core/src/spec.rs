//! The analysis-phase data structure *P = (S, I, T, R, A)* (Section 4.1).

use std::collections::HashSet;

use sada_expr::{enumerate, Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{lazy, Action, ActionId, Path, Sag};
use sada_proto::SagPlanner;

/// Everything the developers prepare at development time (Section 4.1):
///
/// * *S* — the configuration space, implied by the component [`Universe`];
/// * *I* — the conjunction of dependency-relationship predicates;
/// * *T* — the set of adaptive [`Action`]s;
/// * *R* — the mapping from actions to implementation code, represented
///   here by per-process [`LocalAction`]s compiled for the runtime (the
///   actual reconfiguration code lives with the application's agents);
/// * *A* — the fixed cost of each action (carried on [`Action`]).
///
/// Plus the deployment information the runtime needs: which process hosts
/// which component ([`SystemModel`]) and which actions require draining
/// in-flight traffic before their global safe state holds.
///
/// [`LocalAction`]: sada_proto::LocalAction
#[derive(Debug)]
pub struct AdaptationSpec {
    universe: Universe,
    invariants: InvariantSet,
    actions: Vec<Action>,
    model: SystemModel,
    agent_of_process: Vec<usize>,
    drain_actions: HashSet<ActionId>,
}

impl AdaptationSpec {
    /// Bundles a fully-specified system.
    ///
    /// # Panics
    ///
    /// Panics if action ids are not the dense sequence `0..n` (the planner
    /// indexes the table by id).
    pub fn new(
        universe: Universe,
        invariants: InvariantSet,
        actions: Vec<Action>,
        model: SystemModel,
        agent_of_process: Vec<usize>,
        drain_actions: HashSet<ActionId>,
    ) -> Self {
        for (ix, a) in actions.iter().enumerate() {
            assert_eq!(a.id().index(), ix, "action ids must be dense and ordered");
        }
        AdaptationSpec { universe, invariants, actions, model, agent_of_process, drain_actions }
    }

    /// The component universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The dependency invariants *I*.
    pub fn invariants(&self) -> &InvariantSet {
        &self.invariants
    }

    /// The adaptive action table *T* (with costs *A*).
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Component placement and process structure.
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// Actions whose global safe condition requires draining the stream.
    pub fn drain_actions(&self) -> &HashSet<ActionId> {
        &self.drain_actions
    }

    /// Detection-and-setup step 1: the safe configuration set.
    pub fn safe_configs(&self) -> Vec<Config> {
        enumerate::safe_configs(&self.universe, &self.invariants)
    }

    /// Detection-and-setup step 2: the safe adaptation graph.
    pub fn build_sag(&self) -> Sag {
        Sag::build(self.safe_configs(), &self.actions)
    }

    /// Detection-and-setup step 3: the minimum adaptation path, or `None`
    /// when no safe path connects the configurations.
    pub fn minimum_adaptation_path(&self, source: &Config, target: &Config) -> Option<Path> {
        self.build_sag().shortest_path(source, target)
    }

    /// The lazy-planning variant (future-work heuristic): identical result,
    /// no SAG materialization.
    pub fn minimum_adaptation_path_lazy(&self, source: &Config, target: &Config) -> Option<Path> {
        lazy::plan(&self.invariants, &self.actions, source, target)
    }

    /// Builds the runtime planner handed to the adaptation manager.
    pub fn runtime_planner(&self) -> SagPlanner {
        SagPlanner::new(
            self.build_sag(),
            self.actions.clone(),
            self.model.clone(),
            self.agent_of_process.clone(),
            self.drain_actions.clone(),
        )
    }

    /// True when `cfg` satisfies every dependency invariant.
    pub fn is_safe(&self, cfg: &Config) -> bool {
        self.invariants.satisfied_by(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::InvariantSet;

    fn tiny() -> AdaptationSpec {
        let mut u = Universe::new();
        for n in ["A", "B"] {
            u.intern(n);
        }
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let actions =
            vec![Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 3)];
        let mut model = SystemModel::new();
        let p = model.add_process("host");
        model.place_all(&u, &[("A", p), ("B", p)]);
        AdaptationSpec::new(u, inv, actions, model, vec![0], HashSet::new())
    }

    #[test]
    fn phases_fit_together() {
        let spec = tiny();
        assert_eq!(spec.safe_configs().len(), 2);
        let sag = spec.build_sag();
        assert_eq!(sag.node_count(), 2);
        assert_eq!(sag.edge_count(), 1);
        let u = spec.universe();
        let map = spec.minimum_adaptation_path(&u.config_of(&["A"]), &u.config_of(&["B"])).unwrap();
        assert_eq!(map.cost, 3);
        let lazy =
            spec.minimum_adaptation_path_lazy(&u.config_of(&["A"]), &u.config_of(&["B"])).unwrap();
        assert_eq!(lazy.cost, map.cost);
        assert!(spec.is_safe(&u.config_of(&["A"])));
        assert!(!spec.is_safe(&u.config_of(&["A", "B"])));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_action_ids_rejected() {
        let mut u = Universe::new();
        u.intern("A");
        let inv = InvariantSet::new();
        let actions = vec![Action::insert(5, "+A", &u.config_of(&["A"]), 1)];
        let model = SystemModel::new();
        let _ = AdaptationSpec::new(u, inv, actions, model, vec![], HashSet::new());
    }
}
