//! Realization-phase harness: run a planned adaptation on the simulated
//! network with scripted agents.
//!
//! This is the generic driver used by examples and benches when the real
//! application (the video system) is not needed: one [`ManagerActor`] plus
//! one [`ScriptedAgent`] per process, wired over configurable links.

use sada_expr::Config;
use sada_obs::Bus;
use sada_proto::{
    AgentTiming, BreakerConfig, JournalRecord, ManagerActor, Outcome, ProtoTiming, ScriptedAgent,
    Wire,
};
use sada_simnet::{ActorId, FaultPlan, LinkConfig, SimTime, Simulator};

use crate::spec::AdaptationSpec;

/// Knobs for a simulated adaptation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// RNG seed (runs are reproducible per seed).
    pub seed: u64,
    /// Manager policy.
    pub timing: ProtoTiming,
    /// Local operation delays applied to every agent.
    pub agent_timing: AgentTiming,
    /// Link used between the manager and every agent (both directions).
    pub link: LinkConfig,
    /// Processes (by index) that exhibit fail-to-reset.
    pub fail_to_reset: Vec<usize>,
    /// Injected faults (crashes, restarts, partitions); empty by default.
    /// Agent process indexes map to actor ids directly; the manager is the
    /// actor *after* the last agent.
    pub faults: FaultPlan,
    /// Observability bus shared by the network, the manager, and every
    /// agent. Defaults to a bus with no sinks (near-zero cost); attach
    /// sinks to a clone before the run to capture the unified event stream.
    pub bus: Bus,
    /// Per-agent circuit breakers between the manager core and the wire.
    /// `None` (the default) preserves the historical always-retransmit
    /// behaviour; `Some` stops retry ladders from hammering an agent that
    /// keeps timing out and re-engages it through a seeded half-open probe.
    pub breaker: Option<BreakerConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0,
            timing: ProtoTiming::default(),
            agent_timing: AgentTiming::default(),
            link: LinkConfig::default(),
            fail_to_reset: Vec::new(),
            faults: FaultPlan::new(),
            bus: Bus::new(),
            breaker: None,
        }
    }
}

/// What a simulated adaptation run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The manager's final outcome.
    pub outcome: Outcome,
    /// Virtual time at which the simulation quiesced.
    pub finished_at: SimTime,
    /// Total protocol messages put on the wire.
    pub messages_sent: u64,
    /// Messages lost to the network.
    pub messages_dropped: u64,
    /// The manager's progress log.
    pub infos: Vec<String>,
    /// Crash faults injected over the run.
    pub crashes: u64,
    /// Restarts injected over the run.
    pub restarts: u64,
    /// Rejoin announcements agents sent after restarting.
    pub rejoins: u64,
    /// Manager incarnations rebuilt from the write-ahead journal (0 when
    /// the manager never crashed).
    pub manager_restores: u64,
    /// The manager's write-ahead adaptation journal as it stood at the end
    /// of the run — the forensic record of every decision point, and the
    /// input [`sada_proto::ManagerCore::restore`] replays after a crash.
    pub journal: Vec<JournalRecord>,
    /// Times any per-agent circuit breaker tripped open (0 when breakers
    /// are disabled or never saw enough consecutive failures).
    pub breaker_trips: u64,
    /// Retransmissions refused by open breakers instead of hitting the wire.
    pub suppressed_sends: u64,
}

/// Plans and executes `source → target` for `spec` on a fresh simulation.
///
/// # Panics
///
/// Panics if the simulation quiesces without the manager reporting an
/// outcome (which would indicate a protocol deadlock — the tests treat that
/// as a failure by design).
pub fn run_adaptation(
    spec: &AdaptationSpec,
    source: &Config,
    target: &Config,
    cfg: &RunConfig,
) -> RunReport {
    let mut sim: Simulator<Wire<()>> = Simulator::new(cfg.seed);
    sim.set_bus(cfg.bus.clone());
    let n_proc = spec.model().process_count();
    let manager_id = ActorId::from_index(n_proc); // agents registered first
    let mut agents = Vec::with_capacity(n_proc);
    for p in 0..n_proc {
        let mut agent = ScriptedAgent::new(manager_id, cfg.agent_timing).with_bus(cfg.bus.clone());
        agent.fail_to_reset = cfg.fail_to_reset.contains(&p);
        agents.push(sim.add_actor(&format!("agent-{p}"), agent));
    }
    let mut mgr_actor = ManagerActor::<()>::new(
        cfg.timing,
        Box::new(spec.runtime_planner()),
        agents.clone(),
        source.clone(),
        target.clone(),
    )
    .with_bus(cfg.bus.clone());
    if let Some(breaker) = cfg.breaker {
        mgr_actor = mgr_actor.with_breakers(breaker);
    }
    let manager = sim.add_actor("manager", mgr_actor);
    debug_assert_eq!(manager, manager_id);
    for &a in &agents {
        sim.set_link(manager, a, cfg.link);
        sim.set_link(a, manager, cfg.link);
    }
    sim.schedule_faults(&cfg.faults);
    sim.run();
    let rejoins = agents
        .iter()
        .map(|&a| sim.actor::<ScriptedAgent>(a).expect("agent actor").rejoins_sent)
        .sum();
    let m = sim.actor::<ManagerActor<()>>(manager).expect("manager actor");
    RunReport {
        outcome: m.outcome.clone().expect("manager must resolve every request"),
        finished_at: m.completed_at.unwrap_or_else(|| sim.now()),
        messages_sent: sim.stats().sent,
        messages_dropped: sim.stats().dropped,
        infos: m.infos.clone(),
        crashes: sim.stats().crashes,
        restarts: sim.stats().restarts,
        rejoins,
        manager_restores: m.restores,
        journal: m.journal.clone(),
        breaker_trips: m.breaker_trips,
        suppressed_sends: m.suppressed_sends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::{case_study, PAPER_MAP_COST};
    use sada_simnet::SimDuration;

    #[test]
    fn case_study_adaptation_succeeds_end_to_end() {
        let cs = case_study();
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &RunConfig::default());
        assert!(report.outcome.success, "{:?}", report.infos);
        assert_eq!(report.outcome.final_config, cs.target);
        assert_eq!(report.outcome.steps_committed, 5, "the five MAP steps");
        assert!(report.outcome.warnings.is_empty());
        let _ = PAPER_MAP_COST;
    }

    #[test]
    fn case_study_with_loss_still_lands_safe() {
        let cs = case_study();
        for seed in 0..4 {
            let cfg = RunConfig {
                seed,
                link: LinkConfig::lossy(SimDuration::from_millis(1), 0.2),
                ..RunConfig::default()
            };
            let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
            assert!(
                cs.spec.is_safe(&report.outcome.final_config),
                "seed {seed} landed unsafe: {}",
                report.outcome.final_config
            );
        }
    }

    #[test]
    fn fail_to_reset_on_handheld_strands_safely() {
        let cs = case_study();
        let cfg = RunConfig { fail_to_reset: vec![1], ..RunConfig::default() };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        // Every path from source to target goes through a hand-held action
        // (the decoder must change), so the adaptation cannot succeed.
        assert!(!report.outcome.success);
        // It may abort cleanly at the source, or — after committing +D5 on
        // the laptop, for which Table 2 provides no inverse — give up at a
        // safe intermediate configuration and wait for the user (ladder
        // rung 4). Either way the system is never left unsafe.
        assert!(cs.spec.is_safe(&report.outcome.final_config));
        if report.outcome.final_config != cs.source {
            assert!(report.outcome.gave_up, "stranded => explicit user-wait state");
        }
    }

    #[test]
    fn crashed_agent_rejoins_and_the_adaptation_completes() {
        let cs = case_study();
        // Kill the hand-held agent (process 1) mid-protocol and bring it
        // back 150 ms later; the rejoin protocol must resynchronize it and
        // the whole adaptation must still land on the target.
        let victim = ActorId::from_index(1);
        let cfg = RunConfig {
            faults: FaultPlan::new()
                .crash(victim, SimTime::from_millis(5))
                .restart(victim, SimTime::from_millis(155)),
            ..RunConfig::default()
        };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        assert_eq!((report.crashes, report.restarts), (1, 1));
        assert!(report.rejoins >= 1, "restarted agent must announce itself");
        assert!(report.outcome.success, "{:?}", report.infos);
        assert_eq!(report.outcome.final_config, cs.target);
        // Bounded overhead: the outage plus a few timeout ladders, not an
        // unbounded retry storm.
        assert!(
            report.finished_at <= SimTime::from_millis(2_000),
            "recovery took too long: {}",
            report.finished_at
        );
    }

    #[test]
    fn crashed_manager_restores_from_its_journal_and_completes() {
        let cs = case_study();
        // Kill the *manager* (the actor after the last agent) mid-protocol.
        // The restored incarnation must replay its write-ahead journal,
        // reconcile the agents, and still land the adaptation on the target.
        let victim = ActorId::from_index(cs.spec.model().process_count());
        let cfg = RunConfig {
            faults: FaultPlan::new()
                .crash(victim, SimTime::from_millis(5))
                .restart(victim, SimTime::from_millis(155)),
            ..RunConfig::default()
        };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        assert_eq!((report.crashes, report.restarts), (1, 1));
        assert_eq!(report.manager_restores, 1, "one incarnation rebuilt from the journal");
        assert!(report.outcome.success, "{:?}", report.infos);
        assert_eq!(report.outcome.final_config, cs.target);
        assert!(
            matches!(report.journal.last(), Some(JournalRecord::Outcome { success: true, .. })),
            "journal records the resolution: {:?}",
            report.journal
        );
        // The journal is the durable medium: its text form must round-trip.
        let text = sada_proto::encode_journal(&report.journal);
        assert_eq!(sada_proto::parse_journal(&text).unwrap(), report.journal);
        assert!(
            report.finished_at <= SimTime::from_millis(2_000),
            "failover took too long: {}",
            report.finished_at
        );
    }

    #[test]
    fn unified_bus_captures_network_protocol_and_plan_layers() {
        use sada_obs::{Metrics, Payload, ProtoEvent, RingSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let cs = case_study();
        let bus = Bus::new();
        let ring = Rc::new(RefCell::new(RingSink::new(1 << 16)));
        bus.attach(&ring);
        let cfg = RunConfig { bus: bus.clone(), ..RunConfig::default() };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        assert!(report.outcome.success);

        let events = ring.borrow().events();
        let m = Metrics::from_events(&events);
        assert_eq!(m.steps_committed, 5, "one commit event per MAP step");
        assert_eq!(m.sent, report.messages_sent, "net layer mirrors NetStats");
        assert_eq!(m.dropped, report.messages_dropped);
        assert!(m.reset_to_safe > SimDuration::ZERO, "agents spent time resetting");
        assert!(events.iter().any(|e| matches!(
            e.payload,
            Payload::Proto(ProtoEvent::OutcomeReached { success: true, .. })
        )));
        assert!(
            events.iter().any(|e| matches!(e.payload, Payload::Plan(_))),
            "planner decisions ride the same stream"
        );
    }

    #[test]
    fn breaker_stops_retransmissions_to_a_dead_agent() {
        let cs = case_study();
        // Keep the hand-held dead long enough for a full retry ladder (the
        // exponential backoff stretches the three retransmissions over
        // seconds). A threshold of 3 equals the ladder's retransmission
        // budget, so one exhausted ladder is exactly the evidence that
        // trips the breaker.
        let victim = ActorId::from_index(1);
        let faults = FaultPlan::new()
            .crash(victim, SimTime::from_millis(5))
            .restart(victim, SimTime::from_millis(5_000));
        let cfg = RunConfig {
            breaker: Some(BreakerConfig { failure_threshold: 3, ..BreakerConfig::default() }),
            faults: faults.clone(),
            ..RunConfig::default()
        };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        assert!(report.breaker_trips >= 1, "exhausted ladder must trip the breaker");
        assert!(report.suppressed_sends >= 1, "open breaker must absorb a retransmission");
        // Gating the wire never compromises the protocol: once the agent
        // rejoins, the half-open probe re-engages it and the adaptation
        // still lands on the target with a journaled outcome.
        assert!(report.outcome.success, "{:?}", report.infos);
        assert_eq!(report.outcome.final_config, cs.target);
        assert!(matches!(report.journal.last(), Some(JournalRecord::Outcome { .. })));
        // Without the breaker the same outage is all retransmissions.
        let base = RunConfig { faults, ..RunConfig::default() };
        let base = run_adaptation(&cs.spec, &cs.source, &cs.target, &base);
        assert_eq!((base.breaker_trips, base.suppressed_sends), (0, 0));
        assert!(cs.spec.is_safe(&base.outcome.final_config));
    }

    #[test]
    fn laptop_failure_also_aborts() {
        let cs = case_study();
        let cfg = RunConfig { fail_to_reset: vec![2], ..RunConfig::default() };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        assert!(!report.outcome.success);
        assert!(cs.spec.is_safe(&report.outcome.final_config));
    }
}
