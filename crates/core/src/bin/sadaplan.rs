//! Command-line planner: load a spec file, enumerate the safe
//! configurations, build the SAG, and print the minimum adaptation path.
//!
//! ```text
//! sadaplan <spec-file> [<source> <target> [k]]
//! ```
//!
//! `source`/`target` are bit strings (paper order) or `{A,B,C}` component
//! lists; `k` asks for the k cheapest paths. Without source/target, prints
//! the safe-configuration set and SAG only.

use std::process::ExitCode;

use sada_core::specfile::{parse_config_arg, parse_spec_file};

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args.first().ok_or("usage: sadaplan <spec-file> [<source> <target> [k]]")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec = parse_spec_file(&src).map_err(|e| e.to_string())?;
    let u = spec.universe();

    println!("components: {}", u.len());
    println!("actions:    {}", spec.actions().len());
    let safe = spec.safe_configs();
    println!("safe configurations ({}):", safe.len());
    for cfg in &safe {
        println!("  {}  {}", cfg.to_bit_string(), cfg.to_names(u));
    }
    let sag = spec.build_sag();
    println!("SAG: {} nodes, {} arcs", sag.node_count(), sag.edge_count());

    if args.len() >= 3 {
        let source = parse_config_arg(u, &args[1])?;
        let target = parse_config_arg(u, &args[2])?;
        if !spec.is_safe(&source) {
            return Err(format!("source {source} is not a safe configuration"));
        }
        if !spec.is_safe(&target) {
            return Err(format!("target {target} is not a safe configuration"));
        }
        let k: usize = args
            .get(3)
            .map(|s| s.parse().map_err(|_| "k must be a number"))
            .transpose()?
            .unwrap_or(1);
        let paths = sag.k_shortest_paths(&source, &target, k.max(1));
        if paths.is_empty() {
            return Err("no safe adaptation path exists".into());
        }
        for (rank, p) in paths.iter().enumerate() {
            println!("path #{}: {p}", rank + 1);
            for step in &p.steps {
                println!(
                    "    {}  {:<26} {} -> {}",
                    step.action,
                    spec.actions()[step.action.index()].name(),
                    step.from.to_bit_string(),
                    step.to.to_bit_string()
                );
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
