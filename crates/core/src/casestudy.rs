//! The paper's Section 5 case study, encoded exactly: the video
//! multicasting system's components, invariants, adaptive actions (Table 2),
//! deployment, and the adaptation request (DES-64 → DES-128 hardening).
//!
//! Component registration order is `E1, E2, D1, D2, D3, D4, D5`, so
//! [`Config::to_bit_string`] prints the paper's `(D5,D4,D3,D2,D1,E2,E1)`
//! vectors verbatim (source `0100101`, target `1010010`).
//!
//! [`Config::to_bit_string`]: sada_expr::Config::to_bit_string

use std::collections::HashSet;

use sada_expr::{Config, InvariantSet, Universe};
use sada_model::{ProcessId, SystemModel};
use sada_plan::{Action, ActionId};

use crate::spec::AdaptationSpec;

/// The three processes of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deployment {
    /// The video server (hosts encoders E1, E2).
    pub server: ProcessId,
    /// The hand-held client (hosts decoders D1, D2, D3 — at most one at a
    /// time, per the resource constraint).
    pub handheld: ProcessId,
    /// The laptop client (hosts decoders D4, D5).
    pub laptop: ProcessId,
}

/// The full case-study bundle.
#[derive(Debug)]
pub struct CaseStudy {
    /// *P = (S, I, T, R, A)* plus deployment.
    pub spec: AdaptationSpec,
    /// Which process is which.
    pub deployment: Deployment,
    /// `0100101` — `{D4, D1, E1}`.
    pub source: Config,
    /// `1010010` — `{D5, D3, E2}`.
    pub target: Config,
}

/// Builds the Section 5 system.
pub fn case_study() -> CaseStudy {
    let mut u = Universe::new();
    for name in ["E1", "E2", "D1", "D2", "D3", "D4", "D5"] {
        u.intern(name);
    }

    // System invariants (Section 5.1):
    //   resource constraint  — exactly one of D1, D2, D3 on the hand-held;
    //   security constraint  — exactly one encoder so data stays encoded;
    // Dependency invariants:
    //   E1 → (D1 ∨ D2) ∧ D4     E2 → (D3 ∨ D2) ∧ D5
    let invariants = InvariantSet::parse(
        &["one_of(D1, D2, D3)", "one_of(E1, E2)", "E1 => (D1 | D2) & D4", "E2 => (D3 | D2) & D5"],
        &mut u,
    )
    .expect("case-study invariants parse");

    // Table 2, verbatim. Ids are zero-based (A1 = id 0); costs in ms.
    let c = |names: &[&str]| u.config_of(names);
    let actions = vec![
        Action::replace(0, "E1 -> E2", &c(&["E1"]), &c(&["E2"]), 10),
        Action::replace(1, "D1 -> D2", &c(&["D1"]), &c(&["D2"]), 10),
        Action::replace(2, "D1 -> D3", &c(&["D1"]), &c(&["D3"]), 10),
        Action::replace(3, "D2 -> D3", &c(&["D2"]), &c(&["D3"]), 10),
        Action::replace(4, "D4 -> D5", &c(&["D4"]), &c(&["D5"]), 10),
        Action::replace(5, "(D1,E1) -> (D2,E2)", &c(&["D1", "E1"]), &c(&["D2", "E2"]), 100),
        Action::replace(6, "(D1,E1) -> (D3,E2)", &c(&["D1", "E1"]), &c(&["D3", "E2"]), 100),
        Action::replace(7, "(D2,E1) -> (D3,E2)", &c(&["D2", "E1"]), &c(&["D3", "E2"]), 100),
        Action::replace(8, "(D4,E1) -> (D5,E2)", &c(&["D4", "E1"]), &c(&["D5", "E2"]), 100),
        Action::replace(9, "(D1,D4) -> (D2,D5)", &c(&["D1", "D4"]), &c(&["D2", "D5"]), 50),
        Action::replace(10, "(D1,D4) -> (D3,D5)", &c(&["D1", "D4"]), &c(&["D3", "D5"]), 50),
        Action::replace(11, "(D2,D4) -> (D3,D5)", &c(&["D2", "D4"]), &c(&["D3", "D5"]), 50),
        Action::replace(
            12,
            "(D1,D4,E1) -> (D2,D5,E2)",
            &c(&["D1", "D4", "E1"]),
            &c(&["D2", "D5", "E2"]),
            150,
        ),
        Action::replace(
            13,
            "(D1,D4,E1) -> (D3,D5,E2)",
            &c(&["D1", "D4", "E1"]),
            &c(&["D3", "D5", "E2"]),
            150,
        ),
        Action::replace(
            14,
            "(D2,D4,E1) -> (D3,D5,E2)",
            &c(&["D2", "D4", "E1"]),
            &c(&["D3", "D5", "E2"]),
            150,
        ),
        Action::remove(15, "-D4", &c(&["D4"]), 10),
        Action::insert(16, "+D5", &c(&["D5"]), 10),
    ];

    let mut model = SystemModel::new();
    let server = model.add_process("video-server");
    let handheld = model.add_process("handheld-client");
    let laptop = model.add_process("laptop-client");
    model.place_all(
        &u,
        &[
            ("E1", server),
            ("E2", server),
            ("D1", handheld),
            ("D2", handheld),
            ("D3", handheld),
            ("D4", laptop),
            ("D5", laptop),
        ],
    );
    model.connect(u.id("E1").unwrap(), u.id("D1").unwrap());
    model.connect(u.id("E1").unwrap(), u.id("D4").unwrap());
    model.connect(u.id("E2").unwrap(), u.id("D3").unwrap());
    model.connect(u.id("E2").unwrap(), u.id("D5").unwrap());

    // Actions pairing an encoder swap with decoder swaps need the stream
    // drained ("the server has to be blocked until the last packet processed
    // by the encoder has been decoded", Section 5.1) — A6..A15.
    let drain_actions: HashSet<ActionId> = (5u32..15).map(ActionId).collect();

    let source = u.config_from_bits("0100101");
    let target = u.config_from_bits("1010010");
    let spec = AdaptationSpec::new(u, invariants, actions, model, vec![0, 1, 2], drain_actions);
    CaseStudy { spec, deployment: Deployment { server, handheld, laptop }, source, target }
}

/// Table 1's safe configuration set, as printed in the paper (bit vector,
/// member list), in the paper's row order.
pub const TABLE1_ROWS: [(&str, &str); 8] = [
    ("0100101", "{D4,D1,E1}"),
    ("1100101", "{D5,D4,D1,E1}"),
    ("1101001", "{D5,D4,D2,E1}"),
    ("1101010", "{D5,D4,D2,E2}"),
    ("1110010", "{D5,D4,D3,E2}"),
    ("0101001", "{D4,D2,E1}"),
    ("1001010", "{D5,D2,E2}"),
    ("1010010", "{D5,D3,E2}"),
];

/// The paper's reported minimum adaptation path (Section 5.1): action
/// labels in execution order, total cost 50 ms.
pub const PAPER_MAP: [&str; 5] = ["A2", "A17", "A1", "A16", "A4"];

/// Total cost of the paper's MAP.
pub const PAPER_MAP_COST: u64 = 50;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn table1_exact() {
        let cs = case_study();
        let safe = cs.spec.safe_configs();
        assert_eq!(safe.len(), 8, "Table 1 has eight safe configurations");
        let got: BTreeSet<String> = safe.iter().map(|c| c.to_bit_string()).collect();
        let want: BTreeSet<String> = TABLE1_ROWS.iter().map(|(b, _)| b.to_string()).collect();
        assert_eq!(got, want);
        // Names render as in the paper too.
        let u = cs.spec.universe();
        for (bits, names) in TABLE1_ROWS {
            let cfg = u.config_from_bits(bits);
            assert_eq!(cfg.to_names(u), names);
        }
    }

    #[test]
    fn table2_action_labels_and_costs() {
        let cs = case_study();
        let actions = cs.spec.actions();
        assert_eq!(actions.len(), 17);
        let costs: Vec<u64> = actions.iter().map(|a| a.cost()).collect();
        assert_eq!(
            costs,
            vec![10, 10, 10, 10, 10, 100, 100, 100, 100, 50, 50, 50, 150, 150, 150, 10, 10]
        );
        assert_eq!(actions[0].id().to_string(), "A1");
        assert_eq!(actions[16].id().to_string(), "A17");
        assert_eq!(actions[15].name(), "-D4");
        assert_eq!(actions[16].name(), "+D5");
    }

    #[test]
    fn source_and_target_are_safe() {
        let cs = case_study();
        assert!(cs.spec.is_safe(&cs.source));
        assert!(cs.spec.is_safe(&cs.target));
        assert_eq!(cs.source.to_bit_string(), "0100101");
        assert_eq!(cs.target.to_bit_string(), "1010010");
    }

    #[test]
    fn figure4_sag_shape() {
        let cs = case_study();
        let sag = cs.spec.build_sag();
        assert_eq!(sag.node_count(), 8, "Figure 4 has the 8 safe configurations");
        // Exhaustively derived arc set (see EXPERIMENTS.md): 16 arcs.
        assert_eq!(sag.edge_count(), 16);
        // Spot-check the arcs legible in Figure 4.
        let u = cs.spec.universe();
        let arc = |from: &str, to: &str, label: &str| {
            let f = sag.index_of(&u.config_from_bits(from)).unwrap();
            let t = sag.index_of(&u.config_from_bits(to)).unwrap();
            assert!(
                sag.edges()
                    .iter()
                    .any(|e| e.from == f && e.to == t && e.action.to_string() == label),
                "missing arc {from} --{label}--> {to}"
            );
        };
        arc("0100101", "0101001", "A2"); // D1->D2
        arc("0100101", "1100101", "A17"); // +D5
        arc("0101001", "1101001", "A17");
        arc("1100101", "1101001", "A2");
        arc("1101001", "1101010", "A1"); // E1->E2
        arc("1101010", "1001010", "A16"); // -D4
        arc("1101010", "1110010", "A4"); // D2->D3
        arc("1110010", "1010010", "A16");
        arc("1001010", "1010010", "A4");
        arc("0100101", "1001010", "A13");
        arc("0100101", "1010010", "A14");
        arc("0101001", "1010010", "A15");
        arc("0101001", "1001010", "A9");
        arc("1100101", "1110010", "A7");
        arc("1101001", "1110010", "A8");
        arc("1100101", "1101010", "A6");
    }

    #[test]
    fn map_is_a2_a17_a1_a16_a4_at_cost_50() {
        let cs = case_study();
        let map = cs.spec.minimum_adaptation_path(&cs.source, &cs.target).expect("MAP exists");
        assert_eq!(map.cost, PAPER_MAP_COST);
        let labels: Vec<String> = map.action_ids().iter().map(|a| a.to_string()).collect();
        assert_eq!(labels, PAPER_MAP.to_vec());
        assert!(map.is_well_formed());
        // Intermediate configurations match Section 5.2's steps.
        let u = cs.spec.universe();
        let bits: Vec<String> = map.configs().iter().map(|c| c.to_bit_string()).collect();
        assert_eq!(bits, vec!["0100101", "0101001", "1101001", "1101010", "1001010", "1010010"]);
        let _ = u;
    }

    #[test]
    fn lazy_planner_matches_map_cost() {
        let cs = case_study();
        let lazy = cs.spec.minimum_adaptation_path_lazy(&cs.source, &cs.target).unwrap();
        assert_eq!(lazy.cost, PAPER_MAP_COST);
    }

    #[test]
    fn alternate_paths_are_ranked() {
        let cs = case_study();
        let sag = cs.spec.build_sag();
        let paths = sag.k_shortest_paths(&cs.source, &cs.target, 5);
        assert!(paths.len() >= 3);
        assert_eq!(paths[0].cost, 50);
        assert!(paths.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn deployment_placement_matches_figure3() {
        let cs = case_study();
        let u = cs.spec.universe();
        let m = cs.spec.model();
        assert_eq!(m.host_of(u.id("E1").unwrap()), Some(cs.deployment.server));
        assert_eq!(m.host_of(u.id("D2").unwrap()), Some(cs.deployment.handheld));
        assert_eq!(m.host_of(u.id("D5").unwrap()), Some(cs.deployment.laptop));
        // A13 touches all three processes; A2 only the handheld.
        let a13 = &cs.spec.actions()[12];
        assert_eq!(m.processes_hosting(&a13.touched_config(u.len())).len(), 3);
        let a2 = &cs.spec.actions()[1];
        assert_eq!(m.processes_hosting(&a2.touched_config(u.len())), vec![cs.deployment.handheld]);
    }

    #[test]
    fn drain_set_is_a6_through_a15() {
        let cs = case_study();
        for a in cs.spec.actions() {
            let needs = cs.spec.drain_actions().contains(&a.id());
            let expected = (5..15).contains(&(a.id().index()));
            assert_eq!(needs, expected, "{}", a.id());
        }
    }
}
