//! # sada-core — safe dynamic component-based software adaptation
//!
//! Reproduction of *Enabling Safe Dynamic Component-Based Software
//! Adaptation* (Zhang, Cheng, Yang, McKinley — DSN 2004 / Architecting
//! Dependable Systems III). The library organizes the paper's three phases:
//!
//! 1. **Analysis phase** (development time) — [`AdaptationSpec`] bundles
//!    *P = (S, I, T, R, A)*: the component universe, dependency invariants,
//!    adaptive actions with costs, and deployment placement.
//! 2. **Detection and setup phase** (runtime, on an adaptation request) —
//!    [`AdaptationSpec::safe_configs`] enumerates the safe configuration
//!    set, [`AdaptationSpec::build_sag`] constructs the safe adaptation
//!    graph, and [`AdaptationSpec::minimum_adaptation_path`] runs Dijkstra
//!    to obtain the MAP.
//! 3. **Realization phase** — [`run_adaptation`] drives the manager/agent
//!    protocol (`sada-proto`) over the simulated network, with rollback and
//!    re-planning under injected failures.
//!
//! The paper's video multicasting case study is encoded verbatim in
//! [`casestudy`]; its tests pin Table 1, Table 2, Figure 4, and the
//! reported minimum adaptation path (`A2, A17, A1, A16, A4`, 50 ms).
//!
//! ```
//! use sada_core::casestudy::case_study;
//!
//! let cs = case_study();
//! let map = cs.spec.minimum_adaptation_path(&cs.source, &cs.target).unwrap();
//! assert_eq!(map.cost, 50);
//! assert_eq!(map.action_ids()[0].to_string(), "A2");
//! ```

pub mod calibrate;
pub mod casestudy;
pub mod infer;
mod realize;
mod spec;
pub mod specfile;

pub use realize::{run_adaptation, RunConfig, RunReport};
pub use spec::AdaptationSpec;
