//! Empirical cost calibration.
//!
//! Section 4.1 fixes a cost per adaptive action, noting that "factors
//! affecting cost values include system blocking time, adaptation duration,
//! delay of packet delivery, resource usage". The paper's Table 2 numbers
//! came from measurements on the authors' testbed; this module closes the
//! same loop against *our* testbed: it executes each action as a
//! single-step adaptation on the simulator, measures the realization
//! latency, and emits a re-costed action table that planning can use
//! instead of the hand-assigned values.

use sada_expr::Config;
use sada_plan::Action;
use sada_simnet::SimDuration;

use crate::realize::{run_adaptation, RunConfig};
use crate::spec::AdaptationSpec;

/// One action's measured realization cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibratedCost {
    /// The action's index in the spec's table.
    pub action: usize,
    /// Realization latency of a single-step adaptation running this action
    /// (request to completion, simulated time).
    pub latency: SimDuration,
    /// Protocol messages used.
    pub messages: u64,
    /// The safe configuration the measurement started from.
    pub measured_from: Config,
}

/// Measures every action that appears on some SAG arc.
///
/// For each action, the cheapest-to-find applicable safe configuration is
/// used as the source and the action's result as the target; the returned
/// vector is ordered by action index and skips actions with no safe arc
/// (they can never execute anyway).
pub fn calibrate(spec: &AdaptationSpec, run: &RunConfig) -> Vec<CalibratedCost> {
    let safe = spec.safe_configs();
    let mut out = Vec::new();
    for (ix, action) in spec.actions().iter().enumerate() {
        let Some(from) =
            safe.iter().find(|cfg| action.applicable(cfg) && spec.is_safe(&action.apply(cfg)))
        else {
            continue;
        };
        let to = action.apply(from);
        // Plan restricted to exactly this transition: the MAP from `from`
        // to `to` may legitimately pick a cheaper multi-step route, so we
        // measure the action via a single-action spec instead.
        let single = single_action_spec(spec, ix);
        let report = run_adaptation(&single, from, &to, run);
        if report.outcome.success {
            out.push(CalibratedCost {
                action: ix,
                latency: report.finished_at.saturating_since(sada_simnet::SimTime::ZERO),
                messages: report.messages_sent,
                measured_from: from.clone(),
            });
        }
    }
    out
}

/// Rebuilds the action table with measured costs (in microseconds of
/// realization latency), preserving names and effects.
pub fn recost_actions(spec: &AdaptationSpec, measurements: &[CalibratedCost]) -> Vec<Action> {
    spec.actions()
        .iter()
        .enumerate()
        .map(|(ix, a)| {
            let cost = measurements
                .iter()
                .find(|m| m.action == ix)
                .map(|m| m.latency.as_micros().max(1))
                .unwrap_or_else(|| a.cost());
            Action::from_ids(ix as u32, a.name(), a.removes().to_vec(), a.adds().to_vec(), cost)
        })
        .collect()
}

fn single_action_spec(spec: &AdaptationSpec, action_ix: usize) -> AdaptationSpec {
    let a = &spec.actions()[action_ix];
    let renumbered =
        Action::from_ids(0, a.name(), a.removes().to_vec(), a.adds().to_vec(), a.cost());
    let drain = if spec.drain_actions().contains(&a.id()) {
        [sada_plan::ActionId(0)].into()
    } else {
        std::collections::HashSet::new()
    };
    AdaptationSpec::new(
        spec.universe().clone(),
        spec.invariants().clone(),
        vec![renumbered],
        spec.model().clone(),
        (0..spec.model().process_count()).collect(),
        drain,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::case_study;

    #[test]
    fn calibration_covers_every_sag_action() {
        let cs = case_study();
        let costs = calibrate(&cs.spec, &RunConfig::default());
        // Actions that appear on SAG arcs (A1, A2, A4, A6..A9, A13..A17).
        let measured: Vec<usize> = costs.iter().map(|c| c.action).collect();
        for expect in [0usize, 1, 3, 5, 6, 7, 8, 12, 13, 14, 15, 16] {
            assert!(measured.contains(&expect), "action index {expect} unmeasured");
        }
        // A3, A5, A10..A12 never connect two safe configurations.
        for absent in [2usize, 4, 9, 10, 11] {
            assert!(!measured.contains(&absent), "action index {absent} has no safe arc");
        }
    }

    #[test]
    fn measured_costs_reproduce_table2_ordering() {
        let cs = case_study();
        let costs = calibrate(&cs.spec, &RunConfig::default());
        let latency_of =
            |ix: usize| costs.iter().find(|c| c.action == ix).map(|c| c.latency).expect("measured");
        // Singles (A1, A2) are cheap; drain-requiring compounds (A13 = ix 12)
        // cost more — the ordering Table 2 asserts.
        let single = latency_of(0).max(latency_of(1));
        let triple = latency_of(12);
        assert!(triple > single, "compound ({triple}) must out-cost single ({single})");
    }

    #[test]
    fn recost_preserves_semantics_and_uses_measurements() {
        let cs = case_study();
        let costs = calibrate(&cs.spec, &RunConfig::default());
        let recosted = recost_actions(&cs.spec, &costs);
        assert_eq!(recosted.len(), cs.spec.actions().len());
        for (orig, new) in cs.spec.actions().iter().zip(&recosted) {
            assert_eq!(orig.removes(), new.removes());
            assert_eq!(orig.adds(), new.adds());
            assert_eq!(orig.name(), new.name());
        }
        // Measured actions got measured costs.
        let first = costs.first().expect("some measurement");
        assert_eq!(recosted[first.action].cost(), first.latency.as_micros().max(1));
        // Unmeasurable actions keep their paper costs.
        assert_eq!(recosted[2].cost(), cs.spec.actions()[2].cost());
    }

    #[test]
    fn replanning_with_measured_costs_exposes_the_metric_choice() {
        // A deliberately interesting negative result: when the cost metric
        // is end-to-end *realization latency*, the direct compound action
        // A14 (one coordination round, one drain) beats the paper's
        // five-step MAP (five coordination rounds), so the re-costed
        // planner picks it. Table 2's preference for fine-grained steps
        // reflects a *per-process blocking / packet delay* metric instead —
        // the solo steps never stall the stream, while the compound blocks
        // all three processes at once. Both plans are safe; which is
        // "minimum" depends on which of Section 4.1's cost factors the
        // operator optimizes.
        let cs = case_study();
        let costs = calibrate(&cs.spec, &RunConfig::default());
        let recosted = recost_actions(&cs.spec, &costs);
        let sag = sada_plan::Sag::build(cs.spec.safe_configs(), &recosted);
        let map = sag.shortest_path(&cs.source, &cs.target).expect("path");
        assert!(map.is_well_formed());
        let latency_map: u64 = map.cost;
        // The paper's original (packet-delay) MAP is still available and
        // still safe under the measured table; it is just not latency-min.
        let paper_route: u64 = [1usize, 16, 0, 15, 3].iter().map(|&ix| recosted[ix].cost()).sum();
        assert!(
            latency_map <= paper_route,
            "measured-latency MAP ({latency_map}) can't exceed the paper route ({paper_route})"
        );
        // And the compound route's win is precisely the coordination rounds
        // it saves: it uses fewer steps.
        assert!(map.steps.len() < 5);
    }
}
