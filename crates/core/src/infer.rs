//! Automatic generation of dependency relationships (Section 7).
//!
//! "We are investigating techniques that enable automatic generation of
//! dependency relationships from formal software requirements
//! specifications." This module implements the structural half of that
//! program: given the communication topology ([`SystemModel`] channels), a
//! codec-compatibility catalog (which tags each component produces or
//! accepts), and resource constraints, it derives the paper's invariants
//! mechanically:
//!
//! 1. **Resource constraints** — each declared exclusive group becomes
//!    `one_of(group)`.
//! 2. **Security constraint** — exactly one producer must be deployed
//!    (`one_of(encoders)`), so the stream is never plaintext.
//! 3. **Dependency invariants** — for every encoder `E` producing tag `t`
//!    and every receiving process `P` (a process hosting a decoder that an
//!    encoder feeds), `E ⇒ ⋁ {decoders on P accepting t}`, conjoined over
//!    all receiving processes: exactly the shape of the paper's
//!    `E1 → (D1 ∨ D2) ∧ D4`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sada_expr::{CompId, Expr, InvariantSet, Universe};
use sada_model::SystemModel;

/// Which packet tag each component produces (encoders) or accepts
/// (decoders). A component may accept several tags (the paper's
/// 128/64-compatible `D2`).
#[derive(Debug, Clone, Default)]
pub struct CodecCatalog {
    produces: HashMap<CompId, u16>,
    accepts: HashMap<CompId, Vec<u16>>,
}

impl CodecCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        CodecCatalog::default()
    }

    /// Declares `comp` an encoder producing `tag`.
    pub fn producer(&mut self, comp: CompId, tag: u16) -> &mut Self {
        self.produces.insert(comp, tag);
        self
    }

    /// Declares `comp` a decoder accepting `tags`.
    pub fn acceptor(&mut self, comp: CompId, tags: &[u16]) -> &mut Self {
        self.accepts.insert(comp, tags.to_vec());
        self
    }

    /// All declared encoders, in id order.
    pub fn encoders(&self) -> Vec<CompId> {
        let mut v: Vec<CompId> = self.produces.keys().copied().collect();
        v.sort();
        v
    }

    /// All declared decoders, in id order.
    pub fn decoders(&self) -> Vec<CompId> {
        let mut v: Vec<CompId> = self.accepts.keys().copied().collect();
        v.sort();
        v
    }
}

/// Inference inputs beyond the topology.
#[derive(Debug, Clone, Default)]
pub struct InferenceConfig {
    /// Groups of components that are mutually exclusive (resource
    /// constraints): each becomes a `one_of` invariant.
    pub exclusive_groups: Vec<Vec<CompId>>,
    /// Require exactly one encoder at all times (the paper's security
    /// constraint).
    pub one_encoder: bool,
}

/// Derives the dependency invariant set from structure.
///
/// Receiving processes are those hosting a decoder that some encoder feeds
/// through a declared channel; for each encoder and each receiving process,
/// a decoder accepting the encoder's tag must be present.
pub fn infer_invariants(
    u: &Universe,
    model: &SystemModel,
    catalog: &CodecCatalog,
    cfg: &InferenceConfig,
) -> InvariantSet {
    let mut inv = InvariantSet::new();

    for group in &cfg.exclusive_groups {
        inv.push(Expr::exactly_one(group.iter().map(|&c| Expr::var(c)).collect()));
    }

    let encoders = catalog.encoders();
    if cfg.one_encoder && !encoders.is_empty() {
        inv.push(Expr::exactly_one(encoders.iter().map(|&c| Expr::var(c)).collect()));
    }

    // Receiving processes: hosts of decoders fed (directly) by any encoder.
    let mut receiving = BTreeSet::new();
    for ch in model.channels() {
        if catalog.produces.contains_key(&ch.from) && catalog.accepts.contains_key(&ch.to) {
            if let Some(p) = model.host_of(ch.to) {
                receiving.insert(p);
            }
        }
    }

    // Decoders grouped by hosting process, id order for determinism.
    let mut decoders_by_proc: BTreeMap<_, Vec<CompId>> = BTreeMap::new();
    for d in catalog.decoders() {
        if let Some(p) = model.host_of(d) {
            decoders_by_proc.entry(p).or_default().push(d);
        }
    }

    for e in encoders {
        let tag = catalog.produces[&e];
        let mut conjuncts = Vec::new();
        for p in &receiving {
            let accepting: Vec<Expr> = decoders_by_proc
                .get(p)
                .into_iter()
                .flatten()
                .filter(|d| catalog.accepts[d].contains(&tag))
                .map(|&d| Expr::var(d))
                .collect();
            // A receiving process with no compatible decoder component at
            // all makes the encoder undeployable: empty Or == false.
            conjuncts.push(if accepting.len() == 1 {
                accepting.into_iter().next().expect("len checked")
            } else {
                Expr::or(accepting)
            });
        }
        if !conjuncts.is_empty() {
            let rhs = if conjuncts.len() == 1 {
                conjuncts.into_iter().next().expect("len checked")
            } else {
                Expr::and(conjuncts)
            };
            inv.push(Expr::var(e).implies(rhs));
        }
    }
    let _ = u;
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::case_study;
    use sada_expr::enumerate;
    use sada_meta::tags;

    /// Rebuilds the case-study's codec facts and checks the inferred
    /// invariants define *exactly* the paper's safe-configuration set.
    #[test]
    fn inferred_invariants_reproduce_table1() {
        let cs = case_study();
        let u = cs.spec.universe();
        let id = |n: &str| u.id(n).unwrap();

        let mut catalog = CodecCatalog::new();
        catalog
            .producer(id("E1"), tags::DES64)
            .producer(id("E2"), tags::DES128)
            .acceptor(id("D1"), &[tags::DES64])
            .acceptor(id("D2"), &[tags::DES128, tags::DES64])
            .acceptor(id("D3"), &[tags::DES128])
            .acceptor(id("D4"), &[tags::DES64])
            .acceptor(id("D5"), &[tags::DES128]);

        let cfg = InferenceConfig {
            exclusive_groups: vec![vec![id("D1"), id("D2"), id("D3")]],
            one_encoder: true,
        };
        let inferred = infer_invariants(u, cs.spec.model(), &catalog, &cfg);

        let from_paper = enumerate::safe_configs(u, cs.spec.invariants());
        let from_inference = enumerate::safe_configs(u, &inferred);
        assert_eq!(from_inference, from_paper, "inference must reconstruct Table 1 exactly");
    }

    #[test]
    fn inferred_dependency_shape_matches_paper() {
        let cs = case_study();
        let u = cs.spec.universe();
        let id = |n: &str| u.id(n).unwrap();
        let mut catalog = CodecCatalog::new();
        catalog
            .producer(id("E1"), tags::DES64)
            .acceptor(id("D1"), &[tags::DES64])
            .acceptor(id("D2"), &[tags::DES128, tags::DES64])
            .acceptor(id("D4"), &[tags::DES64]);
        let inferred = infer_invariants(u, cs.spec.model(), &catalog, &InferenceConfig::default());
        assert_eq!(inferred.exprs().len(), 1);
        // E1 => (D1 | D2) & D4 — the paper's first dependency invariant.
        assert_eq!(inferred.exprs()[0].display(u).to_string(), "(E1 => ((D1 | D2) & D4))");
    }

    #[test]
    fn process_without_compatible_decoder_blocks_encoder() {
        let mut u = Universe::new();
        let e = u.intern("E");
        let d = u.intern("D");
        let mut model = SystemModel::new();
        let server = model.add_process("server");
        let client = model.add_process("client");
        model.place(e, server);
        model.place(d, client);
        model.connect(e, d);
        let mut catalog = CodecCatalog::new();
        catalog.producer(e, 7).acceptor(d, &[9]); // incompatible tag
        let inv = infer_invariants(&u, &model, &catalog, &InferenceConfig::default());
        // E => false: no configuration with E is safe.
        let safe = enumerate::safe_configs(&u, &inv);
        assert!(safe.iter().all(|c| !c.contains(e)));
        assert!(safe.iter().any(|c| c.contains(d)), "decoder alone is fine");
    }

    #[test]
    fn no_channels_no_dependencies() {
        let mut u = Universe::new();
        let e = u.intern("E");
        let mut model = SystemModel::new();
        let p = model.add_process("p");
        model.place(e, p);
        let mut catalog = CodecCatalog::new();
        catalog.producer(e, 1);
        let inv = infer_invariants(&u, &model, &catalog, &InferenceConfig::default());
        assert!(inv.exprs().is_empty(), "nothing receives, nothing depends");
    }
}
