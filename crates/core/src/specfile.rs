//! A textual format for adaptation specifications, so systems can be
//! described, planned, and checked without writing Rust (the analysis
//! phase's deliverable as a reviewable artifact).
//!
//! ## Format
//!
//! Line-oriented, `#` comments, four sections:
//!
//! ```text
//! [processes]
//! video-server
//! handheld-client
//!
//! [components]
//! E1 @ video-server
//! D1 @ handheld-client
//!
//! [invariants]
//! one_of(E1, E2)
//! E1 => D1
//!
//! [actions]
//! E1 -> E2 cost 10
//! (D1, E1) -> (D2, E2) cost 100 drain
//! +D5 cost 10
//! -D4 cost 10
//! ```
//!
//! Components must be declared (with their hosting process) before use;
//! invariants use the `sada-expr` language; actions are replacements
//! (`old -> new`, either side a single name or a parenthesized list),
//! insertions (`+C`), or removals (`-C`), each with a mandatory
//! `cost <n>` and an optional trailing `drain` marker for actions whose
//! global safe condition requires draining in-flight traffic.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use sada_expr::{parse_expr, Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{Action, ActionId};

use crate::spec::AdaptationSpec;

/// A spec-file parsing error with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecFileError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for SpecFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec file line {}: {}", self.line, self.msg)
    }
}

impl Error for SpecFileError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Processes,
    Components,
    Invariants,
    Actions,
}

fn err(line: usize, msg: impl Into<String>) -> SpecFileError {
    SpecFileError { line, msg: msg.into() }
}

/// Splits a component list: either `Name` or `(A, B, C)`.
fn parse_comp_list(s: &str, line: usize) -> Result<Vec<String>, SpecFileError> {
    let s = s.trim();
    let inner = if let Some(stripped) = s.strip_prefix('(') {
        stripped
            .strip_suffix(')')
            .ok_or_else(|| err(line, format!("unbalanced parentheses in {s:?}")))?
    } else {
        s
    };
    let parts: Vec<String> =
        inner.split(',').map(|p| p.trim().to_string()).filter(|p| !p.is_empty()).collect();
    if parts.is_empty() {
        return Err(err(line, format!("empty component list in {s:?}")));
    }
    Ok(parts)
}

/// Parses a spec file into an executable [`AdaptationSpec`].
///
/// # Errors
///
/// Returns a [`SpecFileError`] naming the first offending line: unknown
/// sections, undeclared components or processes, malformed actions, or
/// invariant syntax errors.
pub fn parse_spec_file(src: &str) -> Result<AdaptationSpec, SpecFileError> {
    let mut section = Section::None;
    let mut universe = Universe::new();
    let mut model = SystemModel::new();
    let mut proc_names: Vec<String> = Vec::new();
    let mut invariants = InvariantSet::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut drain: HashSet<ActionId> = HashSet::new();
    let mut declared: HashSet<String> = HashSet::new();

    for (ix, raw) in src.lines().enumerate() {
        let line_no = ix + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated section header"))?;
            section = match name.trim() {
                "processes" => Section::Processes,
                "components" => Section::Components,
                "invariants" => Section::Invariants,
                "actions" => Section::Actions,
                other => return Err(err(line_no, format!("unknown section {other:?}"))),
            };
            continue;
        }
        match section {
            Section::None => return Err(err(line_no, "content before any [section]")),
            Section::Processes => {
                if proc_names.iter().any(|p| p == line) {
                    return Err(err(line_no, format!("duplicate process {line:?}")));
                }
                proc_names.push(line.to_string());
                model.add_process(line);
            }
            Section::Components => {
                let (comp, proc) = line
                    .split_once('@')
                    .ok_or_else(|| err(line_no, "expected 'Component @ process'"))?;
                let comp = comp.trim();
                let proc = proc.trim();
                if declared.contains(comp) {
                    return Err(err(line_no, format!("duplicate component {comp:?}")));
                }
                let pix = proc_names
                    .iter()
                    .position(|p| p == proc)
                    .ok_or_else(|| err(line_no, format!("undeclared process {proc:?}")))?;
                let id = universe.intern(comp);
                declared.insert(comp.to_string());
                model.place(id, sada_model::ProcessId(pix as u32));
            }
            Section::Invariants => {
                let before = universe.len();
                let e = parse_expr(line, &mut universe).map_err(|e| err(line_no, e.to_string()))?;
                if universe.len() != before {
                    return Err(err(line_no, "invariant mentions an undeclared component"));
                }
                invariants.push(e);
            }
            Section::Actions => {
                // Forms: "old -> new cost N [drain]" | "+C cost N" | "-C cost N"
                let drain_marked = line.ends_with("drain");
                let body = line.strip_suffix("drain").unwrap_or(line).trim();
                let (head, cost_str) = body
                    .rsplit_once("cost")
                    .ok_or_else(|| err(line_no, "action missing 'cost <n>'"))?;
                let cost: u64 = cost_str
                    .trim()
                    .parse()
                    .map_err(|_| err(line_no, format!("invalid cost {:?}", cost_str.trim())))?;
                let head = head.trim();
                let id = actions.len() as u32;
                let cfg_of = |names: &[String], line_no: usize| -> Result<Config, SpecFileError> {
                    let mut cfg = universe.empty_config();
                    for n in names {
                        let cid = universe
                            .id(n)
                            .ok_or_else(|| err(line_no, format!("undeclared component {n:?}")))?;
                        cfg.insert(cid);
                    }
                    Ok(cfg)
                };
                let action = if let Some(rest) = head.strip_prefix('+') {
                    let adds = parse_comp_list(rest, line_no)?;
                    Action::insert(id, head, &cfg_of(&adds, line_no)?, cost)
                } else if let Some(rest) = head.strip_prefix('-') {
                    let removes = parse_comp_list(rest, line_no)?;
                    Action::remove(id, head, &cfg_of(&removes, line_no)?, cost)
                } else {
                    let (old, new) = head
                        .split_once("->")
                        .ok_or_else(|| err(line_no, "expected 'old -> new', '+C', or '-C'"))?;
                    let removes = parse_comp_list(old, line_no)?;
                    let adds = parse_comp_list(new, line_no)?;
                    Action::replace(
                        id,
                        head,
                        &cfg_of(&removes, line_no)?,
                        &cfg_of(&adds, line_no)?,
                        cost,
                    )
                };
                if drain_marked {
                    drain.insert(action.id());
                }
                actions.push(action);
            }
        }
    }
    if proc_names.is_empty() {
        return Err(err(src.lines().count().max(1), "no [processes] declared"));
    }
    let agent_of_process = (0..proc_names.len()).collect();
    Ok(AdaptationSpec::new(universe, invariants, actions, model, agent_of_process, drain))
}

/// Parses a configuration argument: either a bit string (`0100101`, paper
/// order) or a brace/comma list of component names (`{E1,D1,D4}` or
/// `E1,D1,D4`).
///
/// # Errors
///
/// Returns a message naming the unknown component or malformed bit string.
pub fn parse_config_arg(u: &Universe, s: &str) -> Result<Config, String> {
    let s = s.trim();
    if s.len() == u.len() && s.chars().all(|c| c == '0' || c == '1') {
        return Ok(u.config_from_bits(s));
    }
    let inner = s.strip_prefix('{').and_then(|x| x.strip_suffix('}')).unwrap_or(s);
    let mut cfg = u.empty_config();
    for name in inner.split(',').map(str::trim).filter(|x| !x.is_empty()) {
        let id = u.id(name).ok_or_else(|| format!("unknown component {name:?}"))?;
        cfg.insert(id);
    }
    Ok(cfg)
}

/// The paper's case study, rendered in the spec-file format (kept in sync
/// by a unit test against [`crate::casestudy::case_study`]).
pub const CASE_STUDY_SPEC: &str = r#"
# DSN 2004 video multicasting case study (Section 5)
[processes]
video-server
handheld-client
laptop-client

[components]
E1 @ video-server
E2 @ video-server
D1 @ handheld-client
D2 @ handheld-client
D3 @ handheld-client
D4 @ laptop-client
D5 @ laptop-client

[invariants]
one_of(D1, D2, D3)      # hand-held resource constraint
one_of(E1, E2)          # security constraint
E1 => (D1 | D2) & D4
E2 => (D3 | D2) & D5

[actions]
E1 -> E2 cost 10
D1 -> D2 cost 10
D1 -> D3 cost 10
D2 -> D3 cost 10
D4 -> D5 cost 10
(D1, E1) -> (D2, E2) cost 100 drain
(D1, E1) -> (D3, E2) cost 100 drain
(D2, E1) -> (D3, E2) cost 100 drain
(D4, E1) -> (D5, E2) cost 100 drain
(D1, D4) -> (D2, D5) cost 50 drain
(D1, D4) -> (D3, D5) cost 50 drain
(D2, D4) -> (D3, D5) cost 50 drain
(D1, D4, E1) -> (D2, D5, E2) cost 150 drain
(D1, D4, E1) -> (D3, D5, E2) cost 150 drain
(D2, D4, E1) -> (D3, D5, E2) cost 150 drain
-D4 cost 10
+D5 cost 10
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::case_study;

    #[test]
    fn case_study_spec_file_matches_builtin() {
        let parsed = parse_spec_file(CASE_STUDY_SPEC).expect("case-study spec parses");
        let builtin = case_study();
        // Same safe configurations, same SAG shape, same MAP.
        assert_eq!(parsed.safe_configs(), builtin.spec.safe_configs());
        let ps = parsed.build_sag();
        let bs = builtin.spec.build_sag();
        assert_eq!(ps.node_count(), bs.node_count());
        assert_eq!(ps.edge_count(), bs.edge_count());
        let u = parsed.universe();
        let src = parse_config_arg(u, "0100101").unwrap();
        let dst = parse_config_arg(u, "{D5,D3,E2}").unwrap();
        let map = parsed.minimum_adaptation_path(&src, &dst).unwrap();
        assert_eq!(map.cost, 50);
        let labels: Vec<String> = map.action_ids().iter().map(|a| a.to_string()).collect();
        assert_eq!(labels, vec!["A2", "A17", "A1", "A16", "A4"]);
        // Drain markers carried over.
        assert_eq!(parsed.drain_actions().len(), 10);
    }

    #[test]
    fn minimal_spec_parses() {
        let spec = parse_spec_file(
            "[processes]\nhost\n[components]\nA @ host\nB @ host\n[invariants]\none_of(A, B)\n[actions]\nA -> B cost 5\n",
        )
        .unwrap();
        assert_eq!(spec.universe().len(), 2);
        assert_eq!(spec.actions().len(), 1);
        assert_eq!(spec.safe_configs().len(), 2);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_spec_file("[processes]\nhost\n[components]\nA @ nowhere\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("nowhere"));
    }

    #[test]
    fn undeclared_component_in_invariant_rejected() {
        let e = parse_spec_file(
            "[processes]\nhost\n[components]\nA @ host\n[invariants]\nA => GHOST\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.msg.contains("undeclared"));
    }

    #[test]
    fn malformed_actions_rejected() {
        let base = "[processes]\nhost\n[components]\nA @ host\nB @ host\n[actions]\n";
        for (bad, needle) in [
            ("A -> B\n", "cost"),
            ("A -> B cost x\n", "invalid cost"),
            ("A B cost 5\n", "expected"),
            ("+GHOST cost 5\n", "undeclared"),
            ("(A, B -> C cost 5\n", "unbalanced"),
        ] {
            let e = parse_spec_file(&format!("{base}{bad}")).unwrap_err();
            assert!(e.msg.contains(needle), "{bad:?} gave {e}");
        }
    }

    #[test]
    fn content_before_section_rejected() {
        let e = parse_spec_file("hello\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn unknown_section_rejected() {
        let e = parse_spec_file("[wat]\n").unwrap_err();
        assert!(e.msg.contains("unknown section"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec =
            parse_spec_file("# header\n\n[processes]\nhost # trailing\n[components]\nA @ host\n")
                .unwrap();
        assert_eq!(spec.universe().len(), 1);
    }

    #[test]
    fn config_arg_both_forms() {
        let cs = case_study();
        let u = cs.spec.universe();
        assert_eq!(parse_config_arg(u, "0100101").unwrap(), cs.source);
        assert_eq!(parse_config_arg(u, "{D4,D1,E1}").unwrap(), cs.source);
        assert_eq!(parse_config_arg(u, "D4, D1, E1").unwrap(), cs.source);
        assert!(parse_config_arg(u, "{NOPE}").is_err());
    }
}
