//! Deterministic fault injection: crash/restart schedules, partition
//! windows, targeted drops, and latency bursts.
//!
//! A [`FaultPlan`] is a list of [`Fault`]s installed into a
//! [`Simulator`](crate::Simulator) with
//! [`schedule_faults`](crate::Simulator::schedule_faults). Faults execute
//! at their scheduled virtual times interleaved with ordinary events, so a
//! run with a fault plan is still a pure function of `(seed, actors,
//! inputs, plan)`.
//!
//! Plans serialize to a line-oriented text form ([`FaultPlan::to_text`] /
//! [`FaultPlan::parse`]) so a failing chaos-sweep case can be dumped to a
//! regression file and replayed exactly.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::ActorId;
use sada_obs::{SimDuration, SimTime};

/// A (from, to) wildcard pattern over message routes; `None` matches any
/// actor. This is the `predicate` of [`Fault::DropMatching`] — kept as
/// data, not a closure, so plans stay comparable and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgPattern {
    /// Required sender, or `None` for any.
    pub from: Option<ActorId>,
    /// Required receiver, or `None` for any.
    pub to: Option<ActorId>,
}

impl MsgPattern {
    /// Matches every message.
    pub const ANY: MsgPattern = MsgPattern { from: None, to: None };

    /// True when the pattern matches a `from → to` route.
    pub fn matches(&self, from: ActorId, to: ActorId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// A single scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Kill actor `id` at `at`: its in-flight messages and pending timers
    /// die with it, and messages routed to it while down are dropped.
    CrashActor { at: SimTime, id: ActorId },
    /// Revive actor `id` at `at`; `Actor::on_restart` runs at that instant.
    /// A no-op if the actor is not down.
    RestartActor { at: SimTime, id: ActorId },
    /// Sever the directed link `from → to` during `[start, end)`.
    PartitionWindow { from: ActorId, to: ActorId, start: SimTime, end: SimTime },
    /// Drop the `nth` message (1-based) matching `predicate`, counted from
    /// the moment the plan is installed.
    DropMatching { nth: u32, predicate: MsgPattern },
    /// Add `extra_latency` to every message routed while the clock is in
    /// `[window.0, window.1)`.
    DelayBurst { window: (SimTime, SimTime), extra_latency: SimDuration },
}

/// An ordered collection of faults to install into a simulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in insertion order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a crash of `id` at `at`.
    pub fn crash(mut self, id: ActorId, at: SimTime) -> Self {
        self.faults.push(Fault::CrashActor { at, id });
        self
    }

    /// Adds a restart of `id` at `at`.
    pub fn restart(mut self, id: ActorId, at: SimTime) -> Self {
        self.faults.push(Fault::RestartActor { at, id });
        self
    }

    /// Adds a directed partition window.
    pub fn partition_window(
        mut self,
        from: ActorId,
        to: ActorId,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        self.faults.push(Fault::PartitionWindow { from, to, start, end });
        self
    }

    /// Adds a targeted drop of the `nth` message matching `predicate`.
    pub fn drop_matching(mut self, nth: u32, predicate: MsgPattern) -> Self {
        self.faults.push(Fault::DropMatching { nth, predicate });
        self
    }

    /// Adds a latency burst over `window`.
    pub fn delay_burst(mut self, window: (SimTime, SimTime), extra_latency: SimDuration) -> Self {
        self.faults.push(Fault::DelayBurst { window, extra_latency });
        self
    }

    /// Serializes the plan to its line-oriented text form.
    pub fn to_text(&self) -> String {
        self.to_string()
    }

    /// Parses the text form produced by [`FaultPlan::to_text`]. Blank lines
    /// and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            plan.faults.push(parse_fault(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(plan)
    }
}

fn fmt_actor(id: Option<ActorId>) -> String {
    match id {
        Some(a) => a.index().to_string(),
        None => "*".to_string(),
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fault in &self.faults {
            match *fault {
                Fault::CrashActor { at, id } => {
                    writeln!(f, "crash at={} id={}", at.as_micros(), id.index())?;
                }
                Fault::RestartActor { at, id } => {
                    writeln!(f, "restart at={} id={}", at.as_micros(), id.index())?;
                }
                Fault::PartitionWindow { from, to, start, end } => {
                    writeln!(
                        f,
                        "partition from={} to={} start={} end={}",
                        from.index(),
                        to.index(),
                        start.as_micros(),
                        end.as_micros()
                    )?;
                }
                Fault::DropMatching { nth, predicate } => {
                    writeln!(
                        f,
                        "drop nth={nth} from={} to={}",
                        fmt_actor(predicate.from),
                        fmt_actor(predicate.to)
                    )?;
                }
                Fault::DelayBurst { window, extra_latency } => {
                    writeln!(
                        f,
                        "delay start={} end={} extra={}",
                        window.0.as_micros(),
                        window.1.as_micros(),
                        extra_latency.as_micros()
                    )?;
                }
            }
        }
        Ok(())
    }
}

fn parse_fault(line: &str) -> Result<Fault, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or("empty fault line")?;
    let mut fields = std::collections::HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or_else(|| format!("expected key=value, got '{w}'"))?;
        fields.insert(k, v);
    }
    let num = |k: &str| -> Result<u64, String> {
        fields
            .get(k)
            .ok_or_else(|| format!("missing field '{k}'"))?
            .parse::<u64>()
            .map_err(|e| format!("field '{k}': {e}"))
    };
    let actor = |k: &str| -> Result<ActorId, String> { Ok(ActorId::from_index(num(k)? as usize)) };
    let opt_actor = |k: &str| -> Result<Option<ActorId>, String> {
        match fields.get(k) {
            None => Err(format!("missing field '{k}'")),
            Some(&"*") => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(|n| Some(ActorId::from_index(n as usize)))
                .map_err(|e| format!("field '{k}': {e}")),
        }
    };
    match verb {
        "crash" => Ok(Fault::CrashActor { at: SimTime::from_micros(num("at")?), id: actor("id")? }),
        "restart" => {
            Ok(Fault::RestartActor { at: SimTime::from_micros(num("at")?), id: actor("id")? })
        }
        "partition" => Ok(Fault::PartitionWindow {
            from: actor("from")?,
            to: actor("to")?,
            start: SimTime::from_micros(num("start")?),
            end: SimTime::from_micros(num("end")?),
        }),
        "drop" => Ok(Fault::DropMatching {
            nth: num("nth")? as u32,
            predicate: MsgPattern { from: opt_actor("from")?, to: opt_actor("to")? },
        }),
        "delay" => Ok(Fault::DelayBurst {
            window: (SimTime::from_micros(num("start")?), SimTime::from_micros(num("end")?)),
            extra_latency: SimDuration::from_micros(num("extra")?),
        }),
        other => Err(format!("unknown fault verb '{other}'")),
    }
}

/// Targets and bounds for the [`chaos`] generator.
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Actors eligible for crash/restart pairs. Every generated crash is
    /// paired with a restart well inside `horizon`, so a protocol with
    /// bounded retry ladders can always resynchronize the victim. Roles are
    /// not distinguished: coordinators that persist their own recovery
    /// state belong here as much as workers — the chaos sweep crashes the
    /// adaptation manager (which restores from its write-ahead journal) as
    /// readily as its agents.
    pub crashable: Vec<ActorId>,
    /// Actors among which partition windows, targeted drops, and the
    /// endpoints of delay bursts are sampled.
    pub partitionable: Vec<ActorId>,
    /// The virtual-time span faults are scheduled within.
    pub horizon: SimDuration,
}

/// Samples a random fault plan, reproducibly: the same `(seed, intensity,
/// opts)` always yields the same plan.
///
/// `intensity` in `[0, 1]` scales both the per-actor crash probability and
/// the expected number of partition windows, targeted drops, and delay
/// bursts. At `0.0` the plan is empty.
pub fn chaos(seed: u64, intensity: f64, opts: &ChaosOpts) -> FaultPlan {
    assert!((0.0..=1.0).contains(&intensity), "intensity must be in [0,1], got {intensity}");
    let mut rng = StdRng::seed_from_u64(seed ^ intensity.to_bits().rotate_left(17));
    let mut plan = FaultPlan::new();
    let h = opts.horizon.as_micros().max(1000);
    let t = |frac_lo: f64, frac_hi: f64, rng: &mut StdRng| -> SimTime {
        SimTime::from_micros((rng.gen_range(frac_lo..frac_hi) * h as f64) as u64)
    };

    // Crash/restart pairs: each crash restarts after a bounded outage so
    // the victim is back before retry ladders are exhausted.
    for &id in &opts.crashable {
        if rng.gen_bool((0.15 + 0.55 * intensity).min(1.0)) {
            let crash_at = t(0.05, 0.55, &mut rng);
            let outage = SimDuration::from_micros((rng.gen_range(0.02..0.20) * h as f64) as u64);
            plan = plan.crash(id, crash_at).restart(id, crash_at + outage);
        }
    }

    // Directed partition windows between random pairs.
    if opts.partitionable.len() >= 2 {
        let n_part = (intensity * 3.0 * rng.gen::<f64>()).round() as usize;
        for _ in 0..n_part {
            let a = opts.partitionable[rng.gen_range(0..opts.partitionable.len())];
            let b = loop {
                let b = opts.partitionable[rng.gen_range(0..opts.partitionable.len())];
                if b != a {
                    break b;
                }
            };
            let start = t(0.0, 0.7, &mut rng);
            let len = SimDuration::from_micros((rng.gen_range(0.01..0.15) * h as f64) as u64);
            plan = plan.partition_window(a, b, start, start + len);
        }
    }

    // Targeted drops with wildcard patterns.
    let n_drop = (intensity * 4.0 * rng.gen::<f64>()).round() as usize;
    for _ in 0..n_drop {
        let pick = |rng: &mut StdRng| -> Option<ActorId> {
            if opts.partitionable.is_empty() || rng.gen_bool(0.4) {
                None
            } else {
                Some(opts.partitionable[rng.gen_range(0..opts.partitionable.len())])
            }
        };
        let predicate = MsgPattern { from: pick(&mut rng), to: pick(&mut rng) };
        plan = plan.drop_matching(rng.gen_range(1..12), predicate);
    }

    // Latency bursts.
    let n_delay = (intensity * 2.0 * rng.gen::<f64>()).round() as usize;
    for _ in 0..n_delay {
        let start = t(0.0, 0.8, &mut rng);
        let len = SimDuration::from_micros((rng.gen_range(0.02..0.2) * h as f64) as u64);
        let extra = SimDuration::from_micros(rng.gen_range(500..50_000));
        plan = plan.delay_burst((start, start + len), extra);
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new()
            .crash(ActorId::from_index(2), SimTime::from_millis(120))
            .restart(ActorId::from_index(2), SimTime::from_millis(250))
            .partition_window(
                ActorId::from_index(0),
                ActorId::from_index(1),
                SimTime::from_millis(10),
                SimTime::from_millis(90),
            )
            .drop_matching(3, MsgPattern { from: None, to: Some(ActorId::from_index(1)) })
            .delay_burst(
                (SimTime::from_millis(5), SimTime::from_millis(20)),
                SimDuration::from_micros(1500),
            )
    }

    #[test]
    fn text_round_trip_is_identity() {
        let plan = sample_plan();
        let text = plan.to_text();
        let parsed = FaultPlan::parse(&text).unwrap();
        assert_eq!(plan, parsed, "text:\n{text}");
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let parsed = FaultPlan::parse("# a comment\n\ncrash at=5 id=0\n").unwrap();
        assert_eq!(parsed.faults.len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(FaultPlan::parse("explode at=5 id=0").is_err());
        assert!(FaultPlan::parse("crash at=x id=0").is_err());
        assert!(FaultPlan::parse("crash id=0").is_err());
        assert!(FaultPlan::parse("drop nth=1 from=q to=*").is_err());
    }

    #[test]
    fn pattern_wildcards_match() {
        let a = ActorId::from_index(1);
        let b = ActorId::from_index(2);
        assert!(MsgPattern::ANY.matches(a, b));
        assert!(MsgPattern { from: Some(a), to: None }.matches(a, b));
        assert!(!MsgPattern { from: Some(b), to: None }.matches(a, b));
        assert!(MsgPattern { from: Some(a), to: Some(b) }.matches(a, b));
        assert!(!MsgPattern { from: Some(a), to: Some(a) }.matches(a, b));
    }

    #[test]
    fn chaos_is_reproducible_and_scales_with_intensity() {
        let opts = ChaosOpts {
            crashable: vec![ActorId::from_index(0), ActorId::from_index(1), ActorId::from_index(2)],
            partitionable: (0..4).map(ActorId::from_index).collect(),
            horizon: SimDuration::from_millis(4_000),
        };
        assert_eq!(chaos(7, 0.6, &opts), chaos(7, 0.6, &opts));
        assert_ne!(chaos(7, 0.6, &opts), chaos(8, 0.6, &opts));
        // Zero intensity can only emit the rare baseline crash pair; over
        // many seeds, high intensity must produce strictly more faults.
        assert!(chaos(1, 0.0, &opts)
            .faults
            .iter()
            .all(|f| matches!(f, Fault::CrashActor { .. } | Fault::RestartActor { .. })));
        let total = |i: f64| -> usize { (0..40).map(|s| chaos(s, i, &opts).faults.len()).sum() };
        assert!(total(0.9) > total(0.1));
    }

    #[test]
    fn chaos_crashes_always_pair_with_restarts() {
        let opts = ChaosOpts {
            crashable: (0..3).map(ActorId::from_index).collect(),
            partitionable: (0..4).map(ActorId::from_index).collect(),
            horizon: SimDuration::from_millis(2_000),
        };
        for seed in 0..60 {
            let plan = chaos(seed, 0.8, &opts);
            for f in &plan.faults {
                if let Fault::CrashActor { at, id } = *f {
                    let restart = plan.faults.iter().find_map(|g| match *g {
                        Fault::RestartActor { at: rat, id: rid } if rid == id && rat > at => {
                            Some(rat)
                        }
                        _ => None,
                    });
                    assert!(restart.is_some(), "unpaired crash of {id} in seed {seed}");
                }
            }
        }
    }
}
