//! Hierarchical timer wheel: the simulator's event queue.
//!
//! Replaces the former `BinaryHeap` event queue with an O(1)-amortized
//! structure while preserving the heap's (time, seq) pop order bit-for-bit
//! (property-tested against a retained `BinaryHeap` baseline below).
//!
//! # Layout
//!
//! Times are split into 6-bit digits: 11 levels of 64 slots cover the full
//! `u64` microsecond range (64^11 = 2^66). An item is bucketed by the
//! *most significant digit in which its time differs from the horizon*
//! (the time of the most recently popped batch):
//!
//! ```text
//! level = highest set 6-bit digit of (time XOR horizon)
//! slot  = (time >> 6*level) & 63
//! ```
//!
//! This is a radix-trie placement, not the classic delta-based one, and it
//! buys three invariants the pop path leans on:
//!
//! 1. **No lap mixing.** Every item at level `l` agrees with the horizon on
//!    all digits above `l` and exceeds it at digit `l`, so a level's slots
//!    are *linearly* ordered by time — no ring cursor, no wraparound.
//! 2. **The global minimum is the first occupied slot of the lowest
//!    non-empty level** (items at higher levels exceed the horizon at a
//!    more significant digit), found with two `trailing_zeros` probes.
//! 3. **Advancing the horizon drains exactly one slot.** Items of the new
//!    minimum time are staged for popping; later items from the same
//!    bucket re-bucket at a *strictly lower* level against the new
//!    horizon, so the cascade cannot revisit a slot.
//!
//! Slot 0-of-level-0 relative to the horizon (`horizon & 63` when the item
//! time *equals* the horizon) holds same-time inserts made while the
//! current batch drains; they pop after the in-flight batch, exactly as
//! their larger seqs would order them in a heap.

use std::cell::Cell;
use std::fmt;

const SLOT_BITS: usize = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
const LEVELS: usize = 11;

/// An O(1)-amortized priority queue over `(time, seq)` keys that pops in
/// exactly the order `BinaryHeap<Reverse<(time, seq, _)>>` would.
///
/// The one structural requirement — natural for a discrete-event
/// simulator — is that pushes never precede the time of the last popped
/// item (checked by `debug_assert`).
pub struct TimerWheel<T> {
    /// `LEVELS * SLOTS` buckets, indexed `level * SLOTS + slot`.
    slots: Vec<Vec<(u64, u64, T)>>,
    /// Per-level occupancy bitmask; bit `s` set iff `slots[l*SLOTS+s]` is
    /// non-empty.
    occ: [u64; LEVELS],
    /// Time of the most recently staged batch; all live items are ≥ this.
    horizon: u64,
    /// The current minimum-time batch, sorted by seq *descending* so pops
    /// come off the back in ascending seq order.
    staged: Vec<(u64, T)>,
    staged_time: u64,
    /// Memo of the wheel-side (non-staged) minimum time; `None` when
    /// unknown. Pushes can only lower it, drains invalidate it.
    cached_next: Cell<Option<u64>>,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel with horizon 0.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            horizon: 0,
            staged: Vec::new(),
            staged_time: 0,
            cached_next: Cell::new(None),
            len: 0,
        }
    }

    /// Number of queued items (staged batch included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn position(&self, time: u64) -> (usize, usize) {
        let x = time ^ self.horizon;
        let level = if x == 0 { 0 } else { (63 - x.leading_zeros()) as usize / SLOT_BITS };
        let slot = ((time >> (SLOT_BITS * level)) & SLOT_MASK) as usize;
        (level, slot)
    }

    fn insert(&mut self, time: u64, seq: u64, item: T) {
        let (level, slot) = self.position(time);
        self.slots[level * SLOTS + slot].push((time, seq, item));
        self.occ[level] |= 1 << slot;
    }

    /// Queues `item` at `(time, seq)`. `time` must be at or after the last
    /// popped time; `seq` keys same-time FIFO order and must be unique.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        debug_assert!(time >= self.horizon, "push at {time} precedes horizon {}", self.horizon);
        self.insert(time, seq, item);
        self.len += 1;
        if let Some(c) = self.cached_next.get() {
            if time < c {
                self.cached_next.set(Some(time));
            }
        }
    }

    /// Drains the slot holding the minimum time into `staged`.
    fn refill(&mut self) {
        debug_assert!(self.staged.is_empty());
        if self.len == 0 {
            return;
        }
        self.cached_next.set(None);
        let c0 = (self.horizon & SLOT_MASK) as usize;
        let (level, slot) = if self.occ[0] & (1 << c0) != 0 {
            // Same-time inserts made while the previous batch drained:
            // they are the minimum and the horizon does not move.
            (0, c0)
        } else {
            let level =
                (0..LEVELS).find(|&l| self.occ[l] != 0).expect("len > 0 implies an occupied level");
            (level, self.occ[level].trailing_zeros() as usize)
        };
        let bucket = std::mem::take(&mut self.slots[level * SLOTS + slot]);
        self.occ[level] &= !(1u64 << slot);
        if level == 0 {
            // A level-0 slot holds exactly one time: the horizon's upper
            // digits with `slot` as the low digit.
            let t = (self.horizon & !SLOT_MASK) | slot as u64;
            self.horizon = t;
            self.staged_time = t;
            self.staged.extend(bucket.into_iter().map(|(bt, seq, item)| {
                debug_assert_eq!(bt, t);
                (seq, item)
            }));
        } else {
            let t = bucket.iter().map(|e| e.0).min().expect("occupied slot is non-empty");
            self.horizon = t;
            self.staged_time = t;
            // Re-bucket the rest against the new horizon; each lands at a
            // level strictly below `level`, never back in this slot.
            for (bt, seq, item) in bucket {
                if bt == t {
                    self.staged.push((seq, item));
                } else {
                    self.insert(bt, seq, item);
                }
            }
        }
        // Bucket order mixes direct pushes with cascade re-inserts, so the
        // batch is seq-sorted here (descending: pops come off the back).
        self.staged.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
    }

    /// Removes and returns the minimum `(time, seq, item)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.staged.is_empty() {
            self.refill();
        }
        let (seq, item) = self.staged.pop()?;
        self.len -= 1;
        Some((self.staged_time, seq, item))
    }

    /// The minimum queued time, without disturbing the queue.
    pub fn peek_time(&self) -> Option<u64> {
        if !self.staged.is_empty() {
            return Some(self.staged_time);
        }
        if self.len == 0 {
            return None;
        }
        let c0 = (self.horizon & SLOT_MASK) as usize;
        if self.occ[0] & (1 << c0) != 0 {
            return Some(self.horizon);
        }
        if let Some(t) = self.cached_next.get() {
            return Some(t);
        }
        let level = (0..LEVELS).find(|&l| self.occ[l] != 0)?;
        let slot = self.occ[level].trailing_zeros() as usize;
        let t = if level == 0 {
            (self.horizon & !SLOT_MASK) | slot as u64
        } else {
            self.slots[level * SLOTS + slot].iter().map(|e| e.0).min()?
        };
        self.cached_next.set(Some(t));
        Some(t)
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len)
            .field("horizon", &self.horizon)
            .field("staged", &self.staged.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The retained baseline: exactly the ordering the simulator's former
    /// `BinaryHeap` event queue produced.
    #[derive(Default)]
    struct HeapBaseline {
        heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    }

    impl HeapBaseline {
        fn push(&mut self, time: u64, seq: u64, item: usize) {
            self.heap.push(Reverse((time, seq, item)));
        }

        fn pop(&mut self) -> Option<(u64, u64, usize)> {
            self.heap.pop().map(|Reverse(e)| e)
        }

        fn peek_time(&self) -> Option<u64> {
            self.heap.peek().map(|Reverse(e)| e.0)
        }
    }

    #[test]
    fn empty_wheel_pops_nothing() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert_eq!(w.pop(), None);
        assert_eq!(w.peek_time(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn same_time_pops_in_seq_order() {
        let mut w = TimerWheel::new();
        w.push(10, 2, 'b');
        w.push(10, 0, 'a');
        w.push(10, 5, 'c');
        assert_eq!(w.peek_time(), Some(10));
        assert_eq!(w.pop(), Some((10, 0, 'a')));
        assert_eq!(w.pop(), Some((10, 2, 'b')));
        assert_eq!(w.pop(), Some((10, 5, 'c')));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn widely_spread_times_pop_sorted() {
        let mut w = TimerWheel::new();
        let times = [u64::MAX, 0, 1, 63, 64, 4095, 4096, 1 << 30, (1 << 30) + 1, 1 << 62];
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, t);
        }
        let mut sorted = times;
        sorted.sort_unstable();
        for &t in &sorted {
            assert_eq!(w.peek_time(), Some(t));
            let (pt, _, item) = w.pop().unwrap();
            assert_eq!((pt, item), (t, t));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn push_at_current_time_pops_after_inflight_batch() {
        let mut w = TimerWheel::new();
        w.push(100, 0, "first");
        w.push(100, 1, "second");
        assert_eq!(w.pop(), Some((100, 0, "first")));
        // A push at the in-flight batch's own time must pop after it, in
        // seq order — the heap would order it the same way.
        w.push(100, 2, "late");
        w.push(200, 3, "future");
        assert_eq!(w.pop(), Some((100, 1, "second")));
        assert_eq!(w.pop(), Some((100, 2, "late")));
        assert_eq!(w.pop(), Some((200, 3, "future")));
    }

    #[test]
    fn cascade_rebuckets_across_levels() {
        let mut w = TimerWheel::new();
        // All three share their top digits, so they start in one high
        // slot; draining the minimum must re-bucket the others correctly.
        w.push(5_000_000, 0, 0u32);
        w.push(5_000_001, 1, 1);
        w.push(5_004_096, 2, 2);
        w.push(7, 3, 3);
        assert_eq!(w.pop(), Some((7, 3, 3)));
        assert_eq!(w.pop(), Some((5_000_000, 0, 0)));
        assert_eq!(w.peek_time(), Some(5_000_001));
        assert_eq!(w.pop(), Some((5_000_001, 1, 1)));
        assert_eq!(w.pop(), Some((5_004_096, 2, 2)));
    }

    /// Deltas mixing zero, sub-slot, cross-slot, cross-level, and huge
    /// jumps, so placements exercise every wheel level.
    fn delta() -> impl Strategy<Value = u64> {
        prop_oneof![
            Just(0u64),
            0u64..64,
            0u64..4096,
            0u64..1_000_000,
            0u64..(1u64 << 32),
            0u64..(1u64 << 48),
        ]
    }

    proptest! {
        /// Pop order is identical to the `BinaryHeap` baseline under
        /// interleaved pushes and pops, including peeks between ops.
        #[test]
        fn pop_order_matches_binary_heap_baseline(
            ops in proptest::collection::vec((delta(), 0usize..4), 1..200),
        ) {
            let mut wheel = TimerWheel::new();
            let mut heap = HeapBaseline::default();
            let mut floor = 0u64; // time of the last popped item
            for (seq, (d, pops)) in ops.into_iter().enumerate() {
                let seq = seq as u64;
                let t = floor.saturating_add(d);
                wheel.push(t, seq, seq as usize);
                heap.push(t, seq, seq as usize);
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                for _ in 0..pops {
                    let got = wheel.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want);
                    if let Some((t, _, _)) = got {
                        floor = t;
                    }
                }
            }
            loop {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                let got = wheel.pop();
                let want = heap.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
            prop_assert!(wheel.is_empty());
        }
    }
}
