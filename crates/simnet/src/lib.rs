//! # sada-simnet — deterministic discrete-event network simulation
//!
//! This crate is the testbed substrate for the DSN 2004 safe-adaptation
//! reproduction. The paper evaluated its protocol on a physical wireless
//! testbed (a video server multicasting to an iPAQ and a laptop). Because the
//! protocol's correctness argument is entirely about *message orderings,
//! losses and timeouts*, we replace the testbed with a seeded discrete-event
//! simulator: every run is a deterministic function of its seed, which lets
//! the test suite replay the paper's failure scenarios (loss-of-message,
//! fail-to-reset) exactly.
//!
//! ## Model
//!
//! * [`Simulator`] owns a virtual clock ([`SimTime`], microsecond
//!   resolution), a priority queue of events, and a set of [`Actor`]s.
//! * Actors communicate by sending messages over directed links configured
//!   with latency, jitter and loss probability ([`LinkConfig`]), or to
//!   multicast groups.
//! * Actors set one-shot timers and are woken with a caller-chosen tag.
//! * Ties in delivery time are broken by a global sequence number so runs
//!   are reproducible bit-for-bit.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`] schedules process- and network-level faults alongside
//! the ordinary event queue: [`Fault::CrashActor`] /
//! [`Fault::RestartActor`] pairs, directed [`Fault::PartitionWindow`]s,
//! targeted [`Fault::DropMatching`] rules, and [`Fault::DelayBurst`]s.
//! Crashing an actor bumps its *incarnation number*: every message in
//! flight toward it and every timer it had armed is discarded at dispatch,
//! and traffic routed to it while down is dropped — so a crash is a real
//! process death, not a pause. Restart runs [`Actor::on_restart`]
//! (defaulting to `on_start`) on the surviving state; actors model
//! volatile-state loss in [`Actor::on_crash`]. Fault plans are plain data:
//! they compare, clone, and round-trip through a line-oriented text form
//! ([`FaultPlan::to_text`] / [`FaultPlan::parse`]) so failing chaos cases
//! can be stored as replayable regression files. [`chaos`] samples random
//! plans reproducibly from a seed and an intensity knob.
//!
//! ## Example
//!
//! ```
//! use sada_simnet::{Actor, ActorId, Context, Simulator};
//!
//! struct Ping { peer: Option<ActorId>, got: u32 }
//! impl Actor<u32> for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if let Some(p) = self.peer { ctx.send(p, 1); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ActorId, msg: u32) {
//!         self.got += 1;
//!         if msg < 3 { ctx.send(from, msg + 1); }
//!     }
//! }
//!
//! let mut sim = Simulator::new(7);
//! let a = sim.add_actor("a", Ping { peer: None, got: 0 });
//! let b = sim.add_actor("b", Ping { peer: Some(a), got: 0 });
//! sim.run();
//! assert_eq!(sim.actor::<Ping>(a).unwrap().got + sim.actor::<Ping>(b).unwrap().got, 3);
//! assert!(sim.now().as_micros() > 0);
//! # let _ = b;
//! ```

mod actor;
mod fault;
mod link;
mod sim;
mod trace;
mod wheel;

pub use actor::{Actor, ActorId, ArenaActor, AsAny, Context, TimerId};
pub use fault::{chaos, ChaosOpts, Fault, FaultPlan, MsgPattern};
pub use link::LinkConfig;
pub use sim::{ArenaId, GroupId, NetStats, Simulator};
pub use wheel::TimerWheel;
// The clock lives in the observability spine so every layer shares it; the
// historical `sada_simnet::SimTime` path keeps working via this re-export.
pub use sada_obs::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind};
