//! Actors and their interaction surface with the simulator.

use std::any::Any;
use std::fmt;

use rand::rngs::StdRng;

use crate::sim::GroupId;
use sada_obs::{SimDuration, SimTime};

/// Identifies an actor registered with a [`Simulator`].
///
/// Ids are dense indices assigned in registration order, which makes them
/// convenient map keys for protocol bookkeeping.
///
/// [`Simulator`]: crate::Simulator
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub(crate) u32);

impl ActorId {
    /// Returns the dense index of this actor.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// Only useful for table-driven tests; sending to an unregistered id is
    /// silently dropped by the simulator.
    pub const fn from_index(ix: usize) -> Self {
        ActorId(ix as u32)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Handle to a pending one-shot timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// Upcast support so `dyn Actor` state can be inspected after a run.
///
/// Blanket-implemented for every `'static` type; user code never implements
/// this directly.
pub trait AsAny {
    /// Borrows the value as [`Any`].
    fn as_any(&self) -> &dyn Any;
    /// Mutably borrows the value as [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated process.
///
/// An actor reacts to three stimuli: the start of the run, message delivery,
/// and timer expiry. All interaction with the outside world goes through the
/// [`Context`] passed to each callback; the callbacks themselves must not
/// block (there is nothing to block on — time only advances between events).
pub trait Actor<M>: AsAny {
    /// Called once, at `SimTime::ZERO`, before any message flows.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    ///
    /// `tag` is the value supplied when the timer was armed; cancelled timers
    /// never fire.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when fault injection crashes this actor.
    ///
    /// There is no [`Context`]: a dead process takes no actions. `now` is
    /// the crash instant, so post-mortem instrumentation (e.g. adjudicating
    /// destroyed work) can be timestamped. Implement this to model the loss
    /// of *volatile* state — anything the process held only in memory —
    /// while keeping what would have survived on durable storage. The
    /// default keeps all state (pure snapshot-restore semantics).
    fn on_crash(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Called when fault injection restarts this actor after a crash.
    ///
    /// Defaults to re-running [`Actor::on_start`], which is right for
    /// stateless actors; recovery-aware actors override this to re-announce
    /// themselves instead of re-issuing their boot sequence.
    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        self.on_start(ctx);
    }
}

/// A struct-of-arrays actor family: one boxed object backing many
/// registered actors ("members"), each addressed by a dense member index.
///
/// Members are registered with `Simulator::add_arena_member` and are
/// indistinguishable from solo actors on the wire: each gets its own
/// [`ActorId`], name, crash/incarnation state, link configuration, and
/// event stamps. Only the *state storage* is shared, which lets a
/// 100k-agent fleet keep its per-agent state in parallel flat vectors
/// instead of 100k separately boxed actors.
pub trait ArenaActor<M>: AsAny {
    /// Called once per member, at `SimTime::ZERO`, before any message flows.
    fn on_start(&mut self, member: u32, ctx: &mut Context<'_, M>) {
        let _ = (member, ctx);
    }

    /// Called when a message addressed to `member` is delivered.
    fn on_message(&mut self, member: u32, ctx: &mut Context<'_, M>, from: ActorId, msg: M);

    /// Called when a timer armed by `member` fires.
    fn on_timer(&mut self, member: u32, ctx: &mut Context<'_, M>, tag: u64) {
        let _ = (member, ctx, tag);
    }

    /// Called when fault injection crashes `member` (no [`Context`]: a dead
    /// process takes no actions).
    fn on_crash(&mut self, member: u32, now: SimTime) {
        let _ = (member, now);
    }

    /// Called when fault injection restarts `member` after a crash.
    /// Defaults to re-running [`ArenaActor::on_start`] for that member.
    fn on_restart(&mut self, member: u32, ctx: &mut Context<'_, M>) {
        self.on_start(member, ctx);
    }
}

/// Deferred side effects produced by an actor callback.
#[derive(Debug)]
pub(crate) enum Op<M> {
    Send { to: ActorId, msg: M },
    Multicast { group: GroupId, msg: M },
    SetTimer { id: TimerId, delay: SimDuration, tag: u64 },
    CancelTimer { id: TimerId },
    Halt,
}

/// The capability surface handed to an [`Actor`] callback.
///
/// Effects requested through the context (sends, timers) are applied by the
/// simulator *after* the callback returns, in request order.
pub struct Context<'a, M> {
    pub(crate) self_id: ActorId,
    pub(crate) now: SimTime,
    pub(crate) ops: &'a mut Vec<Op<M>>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) next_timer: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// The id of the actor whose callback is running.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` over the configured link (latency/loss apply).
    ///
    /// Sending to self is allowed and goes through the default link.
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.ops.push(Op::Send { to, msg });
    }

    /// Sends `msg` to every member of `group`; per-member links apply
    /// independently, mirroring UDP multicast over heterogeneous receivers.
    pub fn multicast(&mut self, group: GroupId, msg: M) {
        self.ops.push(Op::Multicast { group, msg });
    }

    /// Arms a one-shot timer that fires `delay` from now with `tag`.
    ///
    /// Returns a [`TimerId`] that can be passed to [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.ops.push(Op::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.ops.push(Op::CancelTimer { id });
    }

    /// Requests that the simulation stop after the current event.
    pub fn halt(&mut self) {
        self.ops.push(Op::Halt);
    }

    /// Deterministic per-run random source (shared across actors).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_queues_ops_in_order() {
        let mut ops = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut next_timer = 0;
        let mut ctx: Context<'_, u8> = Context {
            self_id: ActorId(0),
            now: SimTime::from_millis(1),
            ops: &mut ops,
            rng: &mut rng,
            next_timer: &mut next_timer,
        };
        ctx.send(ActorId(1), 42);
        let t = ctx.set_timer(SimDuration::from_millis(5), 9);
        ctx.cancel_timer(t);
        assert_eq!(ctx.now(), SimTime::from_millis(1));
        assert_eq!(ctx.self_id(), ActorId(0));
        assert_eq!(ops.len(), 3);
        matches!(&ops[0], Op::Send { to, msg: 42 } if *to == ActorId(1));
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut ops = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut next_timer = 0;
        let mut ctx: Context<'_, u8> = Context {
            self_id: ActorId(0),
            now: SimTime::ZERO,
            ops: &mut ops,
            rng: &mut rng,
            next_timer: &mut next_timer,
        };
        let a = ctx.set_timer(SimDuration::ZERO, 0);
        let b = ctx.set_timer(SimDuration::ZERO, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn actor_id_round_trips_index() {
        let id = ActorId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "actor#5");
    }
}
