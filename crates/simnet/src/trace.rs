//! Run tracing: the network-level projection of the unified event bus.
//!
//! [`TraceEvent`] is the simulator's historical, actor-typed view of net
//! events. Since the observability refactor the simulator emits everything
//! onto a [`sada_obs::Bus`]; [`TraceSink`] is a bus sink that projects the
//! `Net` payloads back into this form, so `Simulator::trace()` keeps
//! working while every other consumer reads the same unified stream.

use sada_obs::{Event, NetEvent, Payload, Sink};

use crate::actor::ActorId;
use sada_obs::SimTime;

/// What happened at a traced instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message left `from` headed to `to` (it may still be dropped).
    Sent,
    /// A message reached `to`.
    Delivered,
    /// The link dropped the message (loss or partition).
    Dropped,
    /// A timer fired at `to` (`from == to`).
    TimerFired,
    /// Fault injection crashed `to` (`from == to`).
    Crashed,
    /// Fault injection restarted `to` (`from == to`).
    Restarted,
}

/// One entry in the simulator's event trace.
///
/// Traces exist so tests and the safety auditor can reconstruct exactly what
/// the network did, independent of actor-level bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened on the simulated clock.
    pub at: SimTime,
    /// Sender (or the timer's owner).
    pub from: ActorId,
    /// Receiver (or the timer's owner).
    pub to: ActorId,
    /// Event class.
    pub kind: TraceKind,
}

/// Bounded bus sink projecting `Net` payloads into [`TraceEvent`]s.
#[derive(Debug, Default)]
pub(crate) struct TraceSink {
    events: Vec<TraceEvent>,
    cap: usize,
}

impl TraceSink {
    pub(crate) fn new() -> Self {
        TraceSink { events: Vec::new(), cap: 1 << 20 }
    }

    pub(crate) fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl Sink for TraceSink {
    fn accept(&mut self, ev: &Event) {
        if self.events.len() >= self.cap {
            return;
        }
        let owner = ActorId(ev.actor);
        let (from, to, kind) = match &ev.payload {
            Payload::Net(NetEvent::Sent { from, to }) => {
                (ActorId(*from), ActorId(*to), TraceKind::Sent)
            }
            Payload::Net(NetEvent::Delivered { from, to }) => {
                (ActorId(*from), ActorId(*to), TraceKind::Delivered)
            }
            Payload::Net(NetEvent::Dropped { from, to }) => {
                (ActorId(*from), ActorId(*to), TraceKind::Dropped)
            }
            Payload::Net(NetEvent::TimerFired { .. }) => (owner, owner, TraceKind::TimerFired),
            Payload::Net(NetEvent::Crashed) => (owner, owner, TraceKind::Crashed),
            Payload::Net(NetEvent::Restarted) => (owner, owner, TraceKind::Restarted),
            _ => return,
        };
        self.events.push(TraceEvent { at: ev.at, from, to, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_net_payloads_and_ignores_the_rest() {
        let mut t = TraceSink::new();
        t.accept(&Event {
            at: SimTime::from_micros(1),
            actor: 0,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Sent { from: 0, to: 1 }),
        });
        t.accept(&Event {
            at: SimTime::from_micros(2),
            actor: 1,
            session: 0,
            shard: 0,
            payload: Payload::Net(NetEvent::Crashed),
        });
        t.accept(&Event {
            at: SimTime::from_micros(3),
            actor: 0,
            session: 0,
            shard: 0,
            payload: Payload::Proto(sada_obs::ProtoEvent::StepCommitted { step: 1 }),
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, TraceKind::Sent);
        assert_eq!(t.events()[0].to, ActorId(1));
        assert_eq!(
            t.events()[1],
            TraceEvent {
                at: SimTime::from_micros(2),
                from: ActorId(1),
                to: ActorId(1),
                kind: TraceKind::Crashed,
            }
        );
    }
}
