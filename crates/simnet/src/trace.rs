//! Run tracing: a bounded, inspectable log of network-level events.

use crate::actor::ActorId;
use crate::time::SimTime;

/// What happened at a traced instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message left `from` headed to `to` (it may still be dropped).
    Sent,
    /// A message reached `to`.
    Delivered,
    /// The link dropped the message (loss or partition).
    Dropped,
    /// A timer fired at `to` (`from == to`).
    TimerFired,
    /// Fault injection crashed `to` (`from == to`).
    Crashed,
    /// Fault injection restarted `to` (`from == to`).
    Restarted,
}

/// One entry in the simulator's event trace.
///
/// Traces exist so tests and the safety auditor can reconstruct exactly what
/// the network did, independent of actor-level bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened on the simulated clock.
    pub at: SimTime,
    /// Sender (or the timer's owner).
    pub from: ActorId,
    /// Receiver (or the timer's owner).
    pub to: ActorId,
    /// Event class.
    pub kind: TraceKind,
}

/// Bounded in-memory trace buffer.
#[derive(Debug, Default)]
pub(crate) struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    cap: usize,
}

impl Trace {
    pub(crate) fn new() -> Self {
        Trace { events: Vec::new(), enabled: false, cap: 1 << 20 }
    }

    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.enabled && self.events.len() < self.cap {
            self.events.push(ev);
        }
    }

    pub(crate) fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.push(TraceEvent { at: SimTime::ZERO, from: ActorId(0), to: ActorId(1), kind: TraceKind::Sent });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.set_enabled(true);
        for i in 0..3 {
            t.push(TraceEvent {
                at: SimTime::from_micros(i),
                from: ActorId(0),
                to: ActorId(1),
                kind: TraceKind::Delivered,
            });
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[2].at, SimTime::from_micros(2));
    }
}
