//! Per-link network characteristics.

use sada_obs::SimDuration;

/// Delivery characteristics of a directed actor-to-actor link.
///
/// Message latency is `latency + U(0, jitter)` where `U` is uniform and drawn
/// from the simulator's seeded RNG; each message is independently dropped
/// with probability `loss`. A partitioned link drops everything.
///
/// The paper's two failure classes map directly onto this type:
/// *loss-of-message* failures are produced by `loss > 0` or `partitioned`,
/// and transient vs. long-term network failures are modelled by toggling
/// `partitioned` during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Base one-way delay.
    pub latency: SimDuration,
    /// Maximum additional uniform random delay.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss: f64,
    /// When `true`, every message on the link is dropped.
    pub partitioned: bool,
    /// Transmission capacity in bytes per second; `None` = infinite.
    ///
    /// With a capacity set (and a message sizer installed on the
    /// simulator), messages serialize onto the link one at a time: a burst
    /// queues and each message adds `size / bandwidth` of transmission
    /// delay behind its predecessors — the queueing behaviour that makes
    /// "packet delay" a real cost during adaptation blackouts.
    pub bandwidth: Option<u64>,
}

impl LinkConfig {
    /// A reliable link with the given fixed latency and no jitter or loss.
    pub fn reliable(latency: SimDuration) -> Self {
        LinkConfig {
            latency,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            partitioned: false,
            bandwidth: None,
        }
    }

    /// A lossy link: fixed latency plus independent drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]` or is NaN.
    pub fn lossy(latency: SimDuration, loss: f64) -> Self {
        assert!(
            loss.is_finite() && (0.0..=1.0).contains(&loss),
            "loss must be in [0,1], got {loss}"
        );
        LinkConfig { latency, jitter: SimDuration::ZERO, loss, partitioned: false, bandwidth: None }
    }

    /// Returns a copy with a transmission capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Returns a copy with the given jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Returns a copy with the partition flag set.
    pub fn with_partitioned(mut self, partitioned: bool) -> Self {
        self.partitioned = partitioned;
        self
    }

    /// True when the configuration is semantically valid: `loss` is finite
    /// and within `[0, 1]`, and `bandwidth`, if set, is positive.
    ///
    /// Negative latency or jitter are unrepresentable by construction —
    /// [`SimDuration`] is unsigned — so they need no check here.
    pub fn is_valid(&self) -> bool {
        self.loss.is_finite()
            && (0.0..=1.0).contains(&self.loss)
            && self.bandwidth.is_none_or(|b| b > 0)
    }

    /// Validation parity for field-struct construction: the named
    /// constructors assert their ranges, but `LinkConfig { .. }` literals
    /// bypass them. Call this to get the same guarantee.
    ///
    /// # Panics
    ///
    /// Panics if [`LinkConfig::is_valid`] is false. The simulator also
    /// debug-asserts validity on every enqueue, so an invalid literal is
    /// caught in test builds even without an explicit call.
    pub fn validate(self) -> Self {
        assert!(
            self.is_valid(),
            "invalid LinkConfig: loss={} (must be finite, in [0,1]), bandwidth={:?} (must be positive)",
            self.loss,
            self.bandwidth
        );
        self
    }
}

impl Default for LinkConfig {
    /// A 1 ms reliable link — close to the paper's wired LAN hop between the
    /// adaptation manager and its agents.
    fn default() -> Self {
        LinkConfig::reliable(SimDuration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one_millisecond_reliable() {
        let l = LinkConfig::default();
        assert_eq!(l.latency, SimDuration::from_millis(1));
        assert_eq!(l.loss, 0.0);
        assert!(!l.partitioned);
    }

    #[test]
    fn builder_methods_compose() {
        let l = LinkConfig::lossy(SimDuration::from_millis(5), 0.25)
            .with_jitter(SimDuration::from_millis(2))
            .with_partitioned(true)
            .with_bandwidth(1_000_000);
        assert_eq!(l.latency, SimDuration::from_millis(5));
        assert_eq!(l.jitter, SimDuration::from_millis(2));
        assert_eq!(l.loss, 0.25);
        assert!(l.partitioned);
        assert_eq!(l.bandwidth, Some(1_000_000));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkConfig::default().with_bandwidth(0);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn lossy_rejects_out_of_range() {
        let _ = LinkConfig::lossy(SimDuration::ZERO, 1.5);
    }

    #[test]
    fn validate_matches_constructor_checks() {
        // Field-struct literals bypass the constructors; validate() closes
        // the gap.
        let nan = LinkConfig { loss: f64::NAN, ..LinkConfig::default() };
        assert!(!nan.is_valid());
        let negative = LinkConfig { loss: -0.1, ..LinkConfig::default() };
        assert!(!negative.is_valid());
        let too_high = LinkConfig { loss: 1.5, ..LinkConfig::default() };
        assert!(!too_high.is_valid());
        let zero_bw = LinkConfig { bandwidth: Some(0), ..LinkConfig::default() };
        assert!(!zero_bw.is_valid());
        let fine = LinkConfig { loss: 0.5, ..LinkConfig::default() };
        assert!(fine.is_valid());
        let _ = fine.validate(); // does not panic
                                 // Negative jitter is unrepresentable: SimDuration is an unsigned
                                 // microsecond count, so that whole failure class is gone at the
                                 // type level.
        assert_eq!(SimDuration::ZERO.as_micros(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid LinkConfig")]
    fn validate_panics_on_nan_loss() {
        let _ = LinkConfig { loss: f64::NAN, ..LinkConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "invalid LinkConfig")]
    fn validate_panics_on_out_of_range_loss() {
        let _ = LinkConfig { loss: 2.0, ..LinkConfig::default() }.validate();
    }
}
