//! The event loop: queue, links, groups, and actor dispatch.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sada_obs::{Bus, Event as ObsEvent, NetEvent, Payload, SimDuration, SimTime};

use crate::actor::{Actor, ActorId, ArenaActor, Context, Op, TimerId};
use crate::fault::{Fault, FaultPlan, MsgPattern};
use crate::link::LinkConfig;
use crate::trace::{TraceEvent, TraceSink};
use crate::wheel::TimerWheel;

/// Identifies a multicast group created with [`Simulator::create_group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(u32);

/// Identifies an actor arena created with [`Simulator::add_arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaId(u32);

/// Aggregate network counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network (including ones later dropped).
    pub sent: u64,
    /// Messages delivered to an actor.
    pub delivered: u64,
    /// Messages dropped by loss, partition, or unknown destination.
    pub dropped: u64,
    /// Timers that fired (cancelled timers excluded).
    pub timers_fired: u64,
    /// Total events dispatched.
    pub events_processed: u64,
    /// Actor crashes executed by fault injection.
    pub crashes: u64,
    /// Actor restarts executed by fault injection.
    pub restarts: u64,
}

/// Resolved form of a scheduled [`Fault`]: windows become on/off pairs.
enum FaultAction {
    Crash(ActorId),
    Restart(ActorId),
    PartitionOn(ActorId, ActorId),
    PartitionOff(ActorId, ActorId),
}

/// State of one installed [`Fault::DropMatching`] rule.
struct DropRule {
    predicate: MsgPattern,
    nth: u32,
    seen: u32,
    spent: bool,
}

enum EventKind<M> {
    // `inc` stamps Deliver with the *target's* incarnation at route time and
    // Timer with the *owner's* incarnation at arm time: a crash bumps the
    // incarnation, so everything in flight toward the old incarnation is
    // discarded at dispatch — even if the actor restarted in the meantime.
    Deliver { from: ActorId, to: ActorId, inc: u32, msg: M },
    Timer { owner: ActorId, id: TimerId, inc: u32, tag: u64 },
    Fault(FaultAction),
}

/// How a registered [`ActorId`] is backed: its own boxed object, or one
/// member slot of a shared [`ArenaActor`].
enum ActorSlot<M> {
    Solo(Option<Box<dyn Actor<M>>>),
    Member { arena: u32, member: u32 },
}

/// An actor checked out of its slot for the duration of one callback.
enum Taken<M> {
    Solo(Box<dyn Actor<M>>),
    Arena(Box<dyn ArenaActor<M>>, u32, u32),
}

/// A deterministic discrete-event simulator over message type `M`.
///
/// All nondeterminism (loss, jitter, actor-requested randomness) flows from
/// the single seed passed to [`Simulator::new`], and simultaneous events are
/// ordered by creation sequence, so a run is a pure function of
/// `(seed, actors, inputs)`.
/// Measures a message's wire size for the bandwidth model.
type Sizer<M> = Box<dyn Fn(&M) -> usize>;

pub struct Simulator<M> {
    now: SimTime,
    seq: u64,
    queue: TimerWheel<EventKind<M>>,
    actors: Vec<ActorSlot<M>>,
    arenas: Vec<Option<Box<dyn ArenaActor<M>>>>,
    names: Vec<String>,
    started: Vec<bool>,
    /// Registration-ordered ids not yet started, so `ensure_started` is
    /// O(new actors) instead of a full scan per step.
    unstarted: Vec<u32>,
    /// Net events buffered within one dispatch, delivered as a batch.
    net_buf: Vec<ObsEvent>,
    links: HashMap<(ActorId, ActorId), LinkConfig>,
    default_link: LinkConfig,
    link_busy_until: HashMap<(ActorId, ActorId), SimTime>,
    sizer: Option<Sizer<M>>,
    groups: Vec<Vec<ActorId>>,
    cancelled: HashSet<TimerId>,
    next_timer: u64,
    rng: StdRng,
    bus: Bus,
    trace_sink: Rc<RefCell<TraceSink>>,
    trace_enabled: bool,
    stats: NetStats,
    halted: bool,
    incarnation: Vec<u32>,
    crashed: Vec<bool>,
    drop_rules: Vec<DropRule>,
    delay_bursts: Vec<(SimTime, SimTime, SimDuration)>,
}

impl<M: Clone + 'static> Simulator<M> {
    /// Creates an empty simulator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: TimerWheel::new(),
            actors: Vec::new(),
            arenas: Vec::new(),
            names: Vec::new(),
            started: Vec::new(),
            unstarted: Vec::new(),
            net_buf: Vec::new(),
            links: HashMap::new(),
            default_link: LinkConfig::default(),
            link_busy_until: HashMap::new(),
            sizer: None,
            groups: Vec::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            rng: StdRng::seed_from_u64(seed),
            bus: Bus::new(),
            trace_sink: Rc::new(RefCell::new(TraceSink::new())),
            trace_enabled: false,
            stats: NetStats::default(),
            halted: false,
            incarnation: Vec::new(),
            crashed: Vec::new(),
            drop_rules: Vec::new(),
            delay_bursts: Vec::new(),
        }
    }

    /// Registers an actor under a human-readable `name` and returns its id.
    ///
    /// `on_start` runs when the simulation first runs (or immediately, at the
    /// current virtual time, if the run already began).
    pub fn add_actor<A: Actor<M> + 'static>(&mut self, name: &str, actor: A) -> ActorId {
        self.register(name, ActorSlot::Solo(Some(Box::new(actor))))
    }

    fn register(&mut self, name: &str, slot: ActorSlot<M>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(slot);
        self.names.push(name.to_string());
        self.started.push(false);
        self.incarnation.push(0);
        self.crashed.push(false);
        self.unstarted.push(id.0);
        id
    }

    /// Registers a struct-of-arrays actor family; members are added with
    /// [`Simulator::add_arena_member`]. The arena itself has no id on the
    /// wire — only its members do.
    pub fn add_arena<A: ArenaActor<M> + 'static>(&mut self, arena: A) -> ArenaId {
        let id = ArenaId(self.arenas.len() as u32);
        self.arenas.push(Some(Box::new(arena)));
        id
    }

    /// Registers one member of `arena` under `name` and returns its
    /// [`ActorId`] — assigned from the same dense sequence as solo actors,
    /// so interleaving the two styles preserves id layout.
    pub fn add_arena_member(&mut self, name: &str, arena: ArenaId, member: u32) -> ActorId {
        assert!((arena.0 as usize) < self.arenas.len(), "unknown arena {arena:?}");
        self.register(name, ActorSlot::Member { arena: arena.0, member })
    }

    /// Immutable, downcast access to an arena's shared state.
    pub fn arena<T: ArenaActor<M> + 'static>(&self, id: ArenaId) -> Option<&T> {
        self.arenas.get(id.0 as usize)?.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Mutable, downcast access to an arena's shared state.
    pub fn arena_mut<T: ArenaActor<M> + 'static>(&mut self, id: ArenaId) -> Option<&mut T> {
        self.arenas.get_mut(id.0 as usize)?.as_mut()?.as_any_mut().downcast_mut::<T>()
    }

    /// Returns the registration name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this simulator.
    pub fn name(&self, id: ActorId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable, downcast access to an actor's state.
    ///
    /// Returns `None` if the id is unknown, the actor is mid-callback, or the
    /// concrete type is not `T`.
    pub fn actor<T: Actor<M> + 'static>(&self, id: ActorId) -> Option<&T> {
        match self.actors.get(id.index())? {
            ActorSlot::Solo(slot) => slot.as_ref()?.as_any().downcast_ref::<T>(),
            ActorSlot::Member { .. } => None,
        }
    }

    /// Mutable, downcast access to an actor's state.
    pub fn actor_mut<T: Actor<M> + 'static>(&mut self, id: ActorId) -> Option<&mut T> {
        match self.actors.get_mut(id.index())? {
            ActorSlot::Solo(slot) => slot.as_mut()?.as_any_mut().downcast_mut::<T>(),
            ActorSlot::Member { .. } => None,
        }
    }

    /// Checks an actor out of its slot for one callback; arena members
    /// check out their whole arena (put back before the next dispatch).
    fn take_actor(&mut self, ix: usize) -> Option<Taken<M>> {
        match self.actors.get_mut(ix)? {
            ActorSlot::Solo(slot) => slot.take().map(Taken::Solo),
            ActorSlot::Member { arena, member } => {
                let (a, m) = (*arena, *member);
                self.arenas[a as usize].take().map(|boxed| Taken::Arena(boxed, a, m))
            }
        }
    }

    fn put_back(&mut self, ix: usize, taken: Taken<M>) {
        match taken {
            Taken::Solo(boxed) => {
                if let ActorSlot::Solo(slot) = &mut self.actors[ix] {
                    *slot = Some(boxed);
                }
            }
            Taken::Arena(boxed, arena, _) => self.arenas[arena as usize] = Some(boxed),
        }
    }

    /// Sets the link used for pairs without an explicit configuration.
    pub fn set_default_link(&mut self, cfg: LinkConfig) {
        self.default_link = cfg;
    }

    /// Configures the directed link `from → to`.
    pub fn set_link(&mut self, from: ActorId, to: ActorId, cfg: LinkConfig) {
        self.links.insert((from, to), cfg);
    }

    /// Returns the effective configuration of `from → to`.
    pub fn link(&self, from: ActorId, to: ActorId) -> LinkConfig {
        self.links.get(&(from, to)).copied().unwrap_or(self.default_link)
    }

    /// Installs a message sizer, enabling bandwidth-limited links to model
    /// transmission and queueing delay. Without a sizer, `bandwidth` is
    /// ignored (messages are treated as zero-sized).
    pub fn set_message_sizer(&mut self, sizer: Box<dyn Fn(&M) -> usize>) {
        self.sizer = Some(sizer);
    }

    /// Partitions (or heals) both directions between `a` and `b`.
    pub fn set_partitioned(&mut self, a: ActorId, b: ActorId, partitioned: bool) {
        for (x, y) in [(a, b), (b, a)] {
            let cfg = self.link(x, y).with_partitioned(partitioned);
            self.links.insert((x, y), cfg);
        }
    }

    /// Creates a multicast group over `members` (order irrelevant).
    pub fn create_group(&mut self, members: &[ActorId]) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(members.to_vec());
        id
    }

    /// Members of `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` was not created by this simulator.
    pub fn group_members(&self, group: GroupId) -> &[ActorId] {
        &self.groups[group.0 as usize]
    }

    /// Installs the observability bus this simulator emits onto. All
    /// clones of a [`Bus`] share one sink list, so the harness keeps a
    /// clone and attaches whatever sinks it wants before (or during) the
    /// run. If tracing is enabled its sink follows the simulator onto the
    /// new bus.
    pub fn set_bus(&mut self, bus: Bus) {
        self.flush_net();
        if self.trace_enabled {
            self.bus.detach(&self.trace_sink);
        }
        self.bus = bus;
        if self.trace_enabled {
            self.bus.attach(&self.trace_sink);
        }
    }

    /// The bus this simulator emits onto.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Enables or disables network-event tracing (off by default).
    ///
    /// Tracing is a bus sink: enabling attaches an internal [`TraceEvent`]
    /// recorder to the simulator's bus, disabling detaches it (already
    /// recorded events are kept).
    pub fn set_trace_enabled(&mut self, on: bool) {
        if on == self.trace_enabled {
            return;
        }
        self.trace_enabled = on;
        if on {
            self.bus.attach(&self.trace_sink);
        } else {
            self.bus.detach(&self.trace_sink);
        }
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.trace_sink.borrow().events().to_vec()
    }

    /// Aggregate counters for the run so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True once an actor has called [`Context::halt`].
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Schedules an out-of-band delivery of `msg` from `from` to `to` after
    /// `delay` — the hook tests and drivers use to kick off scenarios.
    ///
    /// As an external stimulus it bypasses loss, jitter, and bandwidth on
    /// the link — but *not* partitions or crashes: a partitioned link or a
    /// dead target drops injected traffic exactly like actor-initiated
    /// sends, so fault windows cannot be smuggled around.
    pub fn inject(&mut self, from: ActorId, to: ActorId, msg: M, delay: SimDuration) {
        if to.index() >= self.actors.len()
            || self.crashed[to.index()]
            || self.link(from, to).partitioned
        {
            self.stats.dropped += 1;
            self.emit_net(to, NetEvent::Dropped { from: from.0, to: to.0 });
            self.flush_net();
            return;
        }
        let at = self.now + delay;
        let inc = self.incarnation[to.index()];
        self.push_event(at, EventKind::Deliver { from, to, inc, msg });
    }

    /// Batched [`Simulator::inject`]: schedules every message in `msgs`
    /// (from `from` to `to`, all after the same `delay`) with consecutive
    /// sequence numbers — bitwise identical to a loop of single injects,
    /// with the crash/partition check hoisted out of the loop.
    pub fn inject_batch(&mut self, from: ActorId, to: ActorId, msgs: Vec<M>, delay: SimDuration) {
        if to.index() >= self.actors.len()
            || self.crashed[to.index()]
            || self.link(from, to).partitioned
        {
            for _ in &msgs {
                self.stats.dropped += 1;
                self.emit_net(to, NetEvent::Dropped { from: from.0, to: to.0 });
            }
            self.flush_net();
            return;
        }
        let at = self.now + delay;
        let inc = self.incarnation[to.index()];
        for msg in msgs {
            self.push_event(at, EventKind::Deliver { from, to, inc, msg });
        }
    }

    /// Installs every fault in `plan`: crash/restart and partition windows
    /// are scheduled at their virtual times (relative to time zero), drop
    /// rules and delay bursts take effect immediately.
    ///
    /// Plans compose — scheduling a second plan adds to the first.
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        for fault in &plan.faults {
            match *fault {
                Fault::CrashActor { at, id } => {
                    self.push_event(at, EventKind::Fault(FaultAction::Crash(id)));
                }
                Fault::RestartActor { at, id } => {
                    self.push_event(at, EventKind::Fault(FaultAction::Restart(id)));
                }
                Fault::PartitionWindow { from, to, start, end } => {
                    self.push_event(start, EventKind::Fault(FaultAction::PartitionOn(from, to)));
                    self.push_event(end, EventKind::Fault(FaultAction::PartitionOff(from, to)));
                }
                Fault::DropMatching { nth, predicate } => {
                    self.drop_rules.push(DropRule {
                        predicate,
                        nth: nth.max(1),
                        seen: 0,
                        spent: false,
                    });
                }
                Fault::DelayBurst { window, extra_latency } => {
                    self.delay_bursts.push((window.0, window.1, extra_latency));
                }
            }
        }
    }

    /// Schedules a crash of `id` at absolute time `at`.
    pub fn crash_at(&mut self, id: ActorId, at: SimTime) {
        self.push_event(at, EventKind::Fault(FaultAction::Crash(id)));
    }

    /// Schedules a restart of `id` at absolute time `at`.
    pub fn restart_at(&mut self, id: ActorId, at: SimTime) {
        self.push_event(at, EventKind::Fault(FaultAction::Restart(id)));
    }

    /// True while `id` is crashed (between a crash and its restart).
    pub fn is_crashed(&self, id: ActorId) -> bool {
        self.crashed.get(id.index()).copied().unwrap_or(false)
    }

    /// The incarnation number of `id`: 0 until its first crash, then +1
    /// per crash. Restart does not change it.
    pub fn incarnation(&self, id: ActorId) -> u32 {
        self.incarnation.get(id.index()).copied().unwrap_or(0)
    }

    /// Buffers a network event for the bus, stamped with the current
    /// virtual time and `actor` as the acting party. Buffered events are
    /// flushed as one batch before the next actor callback (and at the end
    /// of every dispatch), so each sink observes exactly the per-message
    /// publish order. Free when no sink is attached.
    fn emit_net(&mut self, actor: ActorId, ev: NetEvent) {
        if !self.bus.has_sinks() {
            return;
        }
        // Session/shard stay 0 here; `emit_batch` stamps the bus's scope
        // and shard exactly as a direct `publish` would.
        self.net_buf.push(ObsEvent {
            at: self.now,
            actor: actor.0,
            session: 0,
            shard: 0,
            payload: Payload::Net(ev),
        });
    }

    /// Delivers buffered net events to every sink as one batch.
    fn flush_net(&mut self) {
        if !self.net_buf.is_empty() {
            self.bus.emit_batch(&mut self.net_buf);
        }
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at.as_micros(), seq, kind);
    }

    fn ensure_started(&mut self) {
        while !self.unstarted.is_empty() {
            let pending = std::mem::take(&mut self.unstarted);
            for &raw in &pending {
                let ix = raw as usize;
                if self.started[ix] {
                    continue;
                }
                self.started[ix] = true;
                let id = ActorId(raw);
                let mut taken = match self.take_actor(ix) {
                    Some(t) => t,
                    None => continue,
                };
                self.flush_net();
                let mut ops = Vec::new();
                {
                    let mut ctx = Context {
                        self_id: id,
                        now: self.now,
                        ops: &mut ops,
                        rng: &mut self.rng,
                        next_timer: &mut self.next_timer,
                    };
                    match &mut taken {
                        Taken::Solo(a) => a.on_start(&mut ctx),
                        Taken::Arena(a, _, m) => {
                            let m = *m;
                            a.on_start(m, &mut ctx);
                        }
                    }
                }
                self.put_back(ix, taken);
                self.apply_ops(id, ops);
            }
        }
        self.flush_net();
    }

    fn apply_ops(&mut self, from: ActorId, ops: Vec<Op<M>>) {
        for op in ops {
            match op {
                Op::Send { to, msg } => self.route(from, to, msg),
                Op::Multicast { group, msg } => {
                    let members = self.groups[group.0 as usize].clone();
                    for to in members {
                        if to != from {
                            self.route_cloned(from, to, &msg);
                        }
                    }
                }
                Op::SetTimer { id, delay, tag } => {
                    let at = self.now + delay;
                    let inc = self.incarnation[from.index()];
                    self.push_event(at, EventKind::Timer { owner: from, id, inc, tag });
                }
                Op::CancelTimer { id } => {
                    self.cancelled.insert(id);
                }
                Op::Halt => self.halted = true,
            }
        }
    }

    fn route_cloned(&mut self, from: ActorId, to: ActorId, msg: &M)
    where
        M: Clone,
    {
        self.route(from, to, msg.clone());
    }

    /// Applies installed [`Fault::DropMatching`] rules; true = drop.
    fn drop_rules_claim(&mut self, from: ActorId, to: ActorId) -> bool {
        let mut claimed = false;
        for rule in &mut self.drop_rules {
            if rule.spent || !rule.predicate.matches(from, to) {
                continue;
            }
            rule.seen += 1;
            if rule.seen == rule.nth {
                rule.spent = true;
                claimed = true;
            }
        }
        claimed
    }

    /// Extra latency from any active [`Fault::DelayBurst`] window (max over
    /// overlapping windows).
    fn burst_extra(&self) -> SimDuration {
        self.delay_bursts
            .iter()
            .filter(|&&(start, end, _)| self.now >= start && self.now < end)
            .map(|&(_, _, extra)| extra)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    fn route(&mut self, from: ActorId, to: ActorId, msg: M) {
        self.stats.sent += 1;
        self.emit_net(from, NetEvent::Sent { from: from.0, to: to.0 });
        if to.index() >= self.actors.len() {
            self.stats.dropped += 1;
            self.emit_net(from, NetEvent::Dropped { from: from.0, to: to.0 });
            return;
        }
        let cfg = self.link(from, to);
        debug_assert!(
            cfg.is_valid(),
            "invalid LinkConfig on {from}->{to}: loss={} jitter={:?}",
            cfg.loss,
            cfg.jitter
        );
        let lost = self.crashed[to.index()]
            || cfg.partitioned
            || (cfg.loss > 0.0 && self.rng.gen::<f64>() < cfg.loss);
        let lost = lost || self.drop_rules_claim(from, to);
        if lost {
            self.stats.dropped += 1;
            self.emit_net(to, NetEvent::Dropped { from: from.0, to: to.0 });
            return;
        }
        let jitter = if cfg.jitter > SimDuration::ZERO {
            SimDuration::from_micros(self.rng.gen_range(0..=cfg.jitter.as_micros()))
        } else {
            SimDuration::ZERO
        };
        // Bandwidth-limited links serialize messages: each transmission
        // starts when the link frees up and occupies it for size/bandwidth.
        let departure = match (cfg.bandwidth, self.sizer.as_ref()) {
            (Some(bw), Some(sizer)) => {
                let size = sizer(&msg) as u64;
                let tx_us = size.saturating_mul(1_000_000) / bw;
                let start = self
                    .link_busy_until
                    .get(&(from, to))
                    .copied()
                    .unwrap_or(SimTime::ZERO)
                    .max(self.now);
                let done = start + SimDuration::from_micros(tx_us);
                self.link_busy_until.insert((from, to), done);
                done
            }
            _ => self.now,
        };
        let at = departure + cfg.latency + jitter + self.burst_extra();
        let inc = self.incarnation[to.index()];
        self.push_event(at, EventKind::Deliver { from, to, inc, msg });
    }

    /// Dispatches the next event, if any. Returns `false` when the queue is
    /// empty or the simulation halted.
    pub fn step(&mut self) -> bool {
        let progressed = self.step_inner();
        self.flush_net();
        progressed
    }

    fn step_inner(&mut self) -> bool {
        self.ensure_started();
        if self.halted {
            return false;
        }
        let (at_us, _seq, kind) = match self.queue.pop() {
            Some(ev) => ev,
            None => return false,
        };
        let at = SimTime::from_micros(at_us);
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.events_processed += 1;
        match kind {
            EventKind::Deliver { from, to, inc, msg } => {
                let ix = to.index();
                // A crash bumped the incarnation after this message was
                // routed: the in-flight message dies with the old process.
                if self.crashed[ix] || self.incarnation[ix] != inc {
                    self.stats.dropped += 1;
                    self.emit_net(to, NetEvent::Dropped { from: from.0, to: to.0 });
                    return true;
                }
                let mut taken = match self.take_actor(ix) {
                    Some(t) => t,
                    None => return true, // destination raced away; count as delivered-to-nobody
                };
                self.stats.delivered += 1;
                self.emit_net(to, NetEvent::Delivered { from: from.0, to: to.0 });
                self.flush_net();
                let mut ops = Vec::new();
                {
                    let mut ctx = Context {
                        self_id: to,
                        now: self.now,
                        ops: &mut ops,
                        rng: &mut self.rng,
                        next_timer: &mut self.next_timer,
                    };
                    match &mut taken {
                        Taken::Solo(a) => a.on_message(&mut ctx, from, msg),
                        Taken::Arena(a, _, m) => {
                            let m = *m;
                            a.on_message(m, &mut ctx, from, msg);
                        }
                    }
                }
                self.put_back(ix, taken);
                self.apply_ops(to, ops);
                // New actors may have been created? (not supported mid-run)
                self.ensure_started();
            }
            EventKind::Timer { owner, id, inc, tag } => {
                if self.cancelled.remove(&id) {
                    return true;
                }
                let ix = owner.index();
                // Timers armed by a previous incarnation died in the crash.
                if self.crashed[ix] || self.incarnation[ix] != inc {
                    return true;
                }
                let mut taken = match self.take_actor(ix) {
                    Some(t) => t,
                    None => return true,
                };
                self.stats.timers_fired += 1;
                self.emit_net(owner, NetEvent::TimerFired { tag });
                self.flush_net();
                let mut ops = Vec::new();
                {
                    let mut ctx = Context {
                        self_id: owner,
                        now: self.now,
                        ops: &mut ops,
                        rng: &mut self.rng,
                        next_timer: &mut self.next_timer,
                    };
                    match &mut taken {
                        Taken::Solo(a) => a.on_timer(&mut ctx, tag),
                        Taken::Arena(a, _, m) => {
                            let m = *m;
                            a.on_timer(m, &mut ctx, tag);
                        }
                    }
                }
                self.put_back(ix, taken);
                self.apply_ops(owner, ops);
            }
            EventKind::Fault(action) => self.apply_fault(action),
        }
        true
    }

    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::Crash(id) => {
                let ix = id.index();
                if ix >= self.actors.len() || self.crashed[ix] {
                    return;
                }
                self.crashed[ix] = true;
                // Bumping here (not at restart) kills everything in flight
                // toward or armed by the dying incarnation.
                self.incarnation[ix] += 1;
                self.stats.crashes += 1;
                self.emit_net(id, NetEvent::Crashed);
                self.flush_net();
                let now = self.now;
                match &mut self.actors[ix] {
                    ActorSlot::Solo(Some(actor)) => actor.on_crash(now),
                    ActorSlot::Solo(None) => {}
                    ActorSlot::Member { arena, member } => {
                        let (a, m) = (*arena, *member);
                        if let Some(ar) = self.arenas[a as usize].as_mut() {
                            ar.on_crash(m, now);
                        }
                    }
                }
            }
            FaultAction::Restart(id) => {
                let ix = id.index();
                if ix >= self.actors.len() || !self.crashed[ix] {
                    return;
                }
                self.crashed[ix] = false;
                self.stats.restarts += 1;
                self.emit_net(id, NetEvent::Restarted);
                let mut taken = match self.take_actor(ix) {
                    Some(t) => t,
                    None => return,
                };
                self.flush_net();
                let mut ops = Vec::new();
                {
                    let mut ctx = Context {
                        self_id: id,
                        now: self.now,
                        ops: &mut ops,
                        rng: &mut self.rng,
                        next_timer: &mut self.next_timer,
                    };
                    match &mut taken {
                        Taken::Solo(a) => a.on_restart(&mut ctx),
                        Taken::Arena(a, _, m) => {
                            let m = *m;
                            a.on_restart(m, &mut ctx);
                        }
                    }
                }
                self.put_back(ix, taken);
                self.apply_ops(id, ops);
            }
            FaultAction::PartitionOn(from, to) => {
                let cfg = self.link(from, to).with_partitioned(true);
                self.links.insert((from, to), cfg);
            }
            FaultAction::PartitionOff(from, to) => {
                let cfg = self.link(from, to).with_partitioned(false);
                self.links.insert((from, to), cfg);
            }
        }
    }

    /// Runs until the queue drains or an actor halts the simulation.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps `<= deadline`; later events stay queued
    /// and the clock is left at the last dispatched event (never beyond
    /// `deadline`).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        let deadline_us = deadline.as_micros();
        loop {
            match self.queue.peek_time() {
                Some(at_us) if at_us <= deadline_us && !self.halted => {
                    self.step();
                }
                _ => break,
            }
        }
    }

    /// Convenience: [`Simulator::run_until`] `now + d`.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Timestamp of the earliest queued event, if any — the conservative
    /// lower bound a parallel-DES executor advertises to its peers before
    /// advancing its local clock.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.peek_time().map(SimTime::from_micros)
    }

    /// Number of queued (undelivered) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

impl<M: 'static> std::fmt::Debug for Simulator<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("actors", &self.names)
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;

    #[derive(Default)]
    struct Collector {
        got: Vec<(SimTime, u32)>,
        timer_tags: Vec<u64>,
        echo: bool,
    }

    impl Actor<u32> for Collector {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ActorId, msg: u32) {
            self.got.push((ctx.now(), msg));
            if self.echo && msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, tag: u64) {
            self.timer_tags.push(tag);
        }
    }

    struct Starter {
        to: ActorId,
        n: u32,
    }
    impl Actor<u32> for Starter {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            for i in 0..self.n {
                ctx.send(self.to, i);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: ActorId, _msg: u32) {}
    }

    #[test]
    fn messages_arrive_after_link_latency() {
        let mut sim = Simulator::new(1);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 1 });
        sim.set_link(s, c, LinkConfig::reliable(SimDuration::from_millis(7)));
        sim.run();
        let col = sim.actor::<Collector>(c).unwrap();
        assert_eq!(col.got, vec![(SimTime::from_millis(7), 0)]);
    }

    #[test]
    fn ties_break_by_send_order() {
        let mut sim = Simulator::new(1);
        let c = sim.add_actor("c", Collector::default());
        let _s = sim.add_actor("s", Starter { to: c, n: 5 });
        sim.run();
        let col = sim.actor::<Collector>(c).unwrap();
        let msgs: Vec<u32> = col.got.iter().map(|&(_, m)| m).collect();
        assert_eq!(msgs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut sim = Simulator::new(1);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 10 });
        sim.set_link(s, c, LinkConfig::lossy(SimDuration::ZERO, 1.0));
        sim.run();
        assert!(sim.actor::<Collector>(c).unwrap().got.is_empty());
        assert_eq!(sim.stats().dropped, 10);
    }

    #[test]
    fn partition_and_heal() {
        let mut sim = Simulator::new(1);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 0 });
        sim.set_partitioned(s, c, true);
        // inject bypasses loss/jitter/bandwidth but NOT partitions: an
        // external stimulus still has to cross the (severed) link.
        sim.inject(s, c, 1, SimDuration::ZERO);
        sim.run();
        assert!(sim.actor::<Collector>(c).unwrap().got.is_empty());
        assert_eq!(sim.stats().dropped, 1);
        sim.set_partitioned(s, c, false);
        assert!(!sim.link(s, c).partitioned);
        sim.inject(s, c, 2, SimDuration::ZERO);
        sim.run();
        assert_eq!(sim.actor::<Collector>(c).unwrap().got.len(), 1);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let c = sim.add_actor("c", Collector::default());
            let s = sim.add_actor("s", Starter { to: c, n: 100 });
            sim.set_link(
                s,
                c,
                LinkConfig::lossy(SimDuration::from_millis(2), 0.3)
                    .with_jitter(SimDuration::from_millis(4)),
            );
            sim.run();
            sim.actor::<Collector>(c).unwrap().got.clone()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<u64>,
        }
        impl Actor<u32> for T {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(1), 10);
                let dead = ctx.set_timer(SimDuration::from_millis(2), 20);
                ctx.cancel_timer(dead);
                ctx.set_timer(SimDuration::from_millis(3), 30);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulator::new(0);
        let t = sim.add_actor("t", T { fired: vec![] });
        sim.run();
        assert_eq!(sim.actor::<T>(t).unwrap().fired, vec![10, 30]);
        assert_eq!(sim.stats().timers_fired, 2);
    }

    #[test]
    fn multicast_reaches_all_but_sender() {
        struct Caster {
            group: Option<GroupId>,
        }
        impl Actor<u32> for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if let Some(g) = self.group {
                    ctx.multicast(g, 99);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {
                panic!("sender must not receive its own multicast");
            }
        }
        let mut sim = Simulator::new(0);
        let c1 = sim.add_actor("c1", Collector::default());
        let c2 = sim.add_actor("c2", Collector::default());
        let caster = sim.add_actor("caster", Caster { group: None });
        let g = sim.create_group(&[c1, c2, caster]);
        sim.actor_mut::<Caster>(caster).unwrap().group = Some(g);
        sim.run();
        assert_eq!(sim.actor::<Collector>(c1).unwrap().got.len(), 1);
        assert_eq!(sim.actor::<Collector>(c2).unwrap().got.len(), 1);
        assert_eq!(sim.group_members(g).len(), 3);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 1 });
        sim.set_link(s, c, LinkConfig::reliable(SimDuration::from_millis(10)));
        sim.run_until(SimTime::from_millis(5));
        assert!(sim.actor::<Collector>(c).unwrap().got.is_empty());
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.actor::<Collector>(c).unwrap().got.len(), 1);
    }

    #[test]
    fn halt_stops_the_world() {
        struct H;
        impl Actor<u32> for H {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(ctx.self_id(), 1);
                ctx.halt();
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {
                panic!("should never run after halt");
            }
        }
        let mut sim = Simulator::new(0);
        sim.add_actor("h", H);
        sim.run();
        assert!(sim.is_halted());
    }

    #[test]
    fn unknown_destination_counts_dropped() {
        let mut sim = Simulator::new(0);
        let s = sim.add_actor("s", Starter { to: ActorId::from_index(99), n: 1 });
        let _ = s;
        sim.run();
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        // Three 1000-byte messages over a 1 MB/s link with zero latency:
        // transmissions complete at 1ms, 2ms, 3ms.
        struct Burst {
            to: ActorId,
        }
        impl Actor<u32> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for i in 0..3 {
                    ctx.send(self.to, i);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
        }
        let mut sim = Simulator::new(0);
        sim.set_message_sizer(Box::new(|_| 1000));
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Burst { to: c });
        sim.set_link(s, c, LinkConfig::reliable(SimDuration::ZERO).with_bandwidth(1_000_000));
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        let times: Vec<u64> = got.iter().map(|&(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![1_000, 2_000, 3_000], "serialized back-to-back");
    }

    #[test]
    fn bandwidth_without_sizer_is_ignored() {
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 2 });
        sim.set_link(s, c, LinkConfig::reliable(SimDuration::ZERO).with_bandwidth(1));
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        assert!(got.iter().all(|&(t, _)| t == SimTime::ZERO), "no sizer, no delay");
    }

    #[test]
    fn bandwidth_link_drains_between_bursts() {
        struct TwoBursts {
            to: ActorId,
        }
        impl Actor<u32> for TwoBursts {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.to, 0);
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _tag: u64) {
                ctx.send(self.to, 1);
            }
        }
        let mut sim = Simulator::new(0);
        sim.set_message_sizer(Box::new(|_| 1000));
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", TwoBursts { to: c });
        sim.set_link(s, c, LinkConfig::reliable(SimDuration::ZERO).with_bandwidth(1_000_000));
        sim.run();
        let times: Vec<u64> =
            sim.actor::<Collector>(c).unwrap().got.iter().map(|&(t, _)| t.as_micros()).collect();
        // Second burst starts fresh at 10ms: no leftover queueing.
        assert_eq!(times, vec![1_000, 11_000]);
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let mut sim = Simulator::new(0);
        sim.set_trace_enabled(true);
        let c = sim.add_actor("c", Collector::default());
        let _s = sim.add_actor("s", Starter { to: c, n: 1 });
        sim.run();
        let kinds: Vec<TraceKind> = sim.trace().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::Sent, TraceKind::Delivered]);
    }

    #[test]
    fn external_bus_sinks_see_net_events() {
        use sada_obs::CounterSink;
        let bus = Bus::new();
        let counters = Rc::new(RefCell::new(CounterSink::default()));
        bus.attach(&counters);
        let mut sim = Simulator::new(0);
        sim.set_bus(bus.clone());
        sim.set_trace_enabled(true);
        let c = sim.add_actor("c", Collector::default());
        let _s = sim.add_actor("s", Starter { to: c, n: 3 });
        sim.crash_at(c, SimTime::from_millis(1));
        sim.restart_at(c, SimTime::from_millis(2));
        sim.run();
        let counts = counters.borrow();
        assert_eq!(counts.net_sent, sim.stats().sent);
        assert_eq!(counts.net_delivered, sim.stats().delivered);
        assert_eq!(counts.net_dropped, sim.stats().dropped);
        assert_eq!(counts.crashes, 1);
        assert_eq!(counts.restarts, 1);
        // The built-in trace is just another sink on the same bus.
        assert_eq!(sim.trace().len() as u64, counts.total);
    }

    #[test]
    fn disabling_trace_detaches_but_keeps_recorded_events() {
        let mut sim = Simulator::new(0);
        sim.set_trace_enabled(true);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 1 });
        sim.run();
        let before = sim.trace().len();
        assert!(before > 0);
        sim.set_trace_enabled(false);
        sim.inject(s, c, 9, SimDuration::ZERO);
        sim.run();
        assert_eq!(sim.trace().len(), before, "no recording while disabled");
        assert!(!sim.bus().has_sinks());
    }

    /// Counts lifecycle callbacks alongside received messages.
    #[derive(Default)]
    struct LifeTracker {
        got: Vec<(SimTime, u32)>,
        starts: u32,
        restarts: u32,
        crashes: u32,
    }

    impl Actor<u32> for LifeTracker {
        fn on_start(&mut self, _ctx: &mut Context<'_, u32>) {
            self.starts += 1;
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ActorId, msg: u32) {
            self.got.push((ctx.now(), msg));
        }
        fn on_crash(&mut self, _now: SimTime) {
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Context<'_, u32>) {
            self.restarts += 1;
        }
    }

    #[test]
    fn crash_drops_in_flight_messages_and_timers() {
        struct SelfTimer;
        impl Actor<u32> for SelfTimer {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
            fn on_timer(&mut self, _: &mut Context<'_, u32>, _: u64) {
                panic!("timer armed pre-crash must never fire");
            }
            fn on_restart(&mut self, _: &mut Context<'_, u32>) {
                // Stay quiet: the point is that the *pre-crash* timer died.
            }
        }
        let mut sim = Simulator::new(0);
        let victim = sim.add_actor("victim", SelfTimer);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 0 });
        let _ = (c, s);
        // Message in flight toward the victim when the crash lands.
        sim.set_link(s, victim, LinkConfig::reliable(SimDuration::from_millis(8)));
        sim.run_until(SimTime::ZERO);
        sim.inject(s, victim, 7, SimDuration::from_millis(8));
        sim.crash_at(victim, SimTime::from_millis(5));
        sim.restart_at(victim, SimTime::from_millis(6));
        sim.run();
        // Both the timer (armed at incarnation 0) and the in-flight message
        // (stamped for incarnation 0) die, even though the victim is back
        // up before their scheduled times.
        assert_eq!(sim.stats().crashes, 1);
        assert_eq!(sim.stats().restarts, 1);
        assert_eq!(sim.stats().timers_fired, 0);
        assert_eq!(sim.incarnation(victim), 1);
        assert!(!sim.is_crashed(victim));
    }

    #[test]
    fn crash_and_restart_invoke_lifecycle_hooks() {
        let mut sim = Simulator::new(0);
        let a = sim.add_actor("a", LifeTracker::default());
        sim.crash_at(a, SimTime::from_millis(1));
        sim.restart_at(a, SimTime::from_millis(2));
        sim.run();
        let t = sim.actor::<LifeTracker>(a).unwrap();
        assert_eq!((t.starts, t.crashes, t.restarts), (1, 1, 1));
    }

    #[test]
    fn default_on_restart_reruns_on_start() {
        // Starter has no on_restart override, so restarting it re-sends.
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 2 });
        sim.crash_at(s, SimTime::from_millis(1));
        sim.restart_at(s, SimTime::from_millis(2));
        sim.run();
        assert_eq!(sim.actor::<Collector>(c).unwrap().got.len(), 4);
    }

    #[test]
    fn messages_to_crashed_actor_are_dropped() {
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", LifeTracker::default());
        let s = sim.add_actor("s", Starter { to: c, n: 0 });
        sim.crash_at(c, SimTime::from_millis(1));
        sim.run();
        sim.inject(s, c, 9, SimDuration::ZERO);
        sim.run();
        assert!(sim.actor::<LifeTracker>(c).unwrap().got.is_empty());
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn multicast_skips_crashed_member_and_resumes_after_restart() {
        struct Caster {
            group: Option<GroupId>,
        }
        impl Actor<u32> for Caster {
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ActorId, msg: u32) {
                if let Some(g) = self.group {
                    ctx.multicast(g, msg);
                }
            }
        }
        let mut sim = Simulator::new(0);
        let m1 = sim.add_actor("m1", LifeTracker::default());
        let m2 = sim.add_actor("m2", LifeTracker::default());
        let caster = sim.add_actor("caster", Caster { group: None });
        let g = sim.create_group(&[m1, m2, caster]);
        sim.actor_mut::<Caster>(caster).unwrap().group = Some(g);
        sim.crash_at(m2, SimTime::from_millis(1));
        sim.run();
        // First multicast: m2 is down, only m1 receives.
        sim.inject(m1, caster, 1, SimDuration::ZERO);
        sim.run();
        assert_eq!(sim.actor::<LifeTracker>(m1).unwrap().got.len(), 1);
        assert!(sim.actor::<LifeTracker>(m2).unwrap().got.is_empty());
        // After restart the same group delivers to both again.
        sim.restart_at(m2, sim.now() + SimDuration::from_millis(1));
        sim.run();
        sim.inject(m1, caster, 2, SimDuration::ZERO);
        sim.run();
        assert_eq!(sim.actor::<LifeTracker>(m1).unwrap().got.len(), 2);
        assert_eq!(sim.actor::<LifeTracker>(m2).unwrap().got.len(), 1);
    }

    #[test]
    fn injected_messages_respect_partitions_dynamically() {
        // Partition windows from a fault plan gate injected traffic too.
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 0 });
        let plan = crate::FaultPlan::new().partition_window(
            s,
            c,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        sim.schedule_faults(&plan);
        sim.run_until(SimTime::from_millis(15));
        assert!(sim.link(s, c).partitioned, "window open at 15ms");
        sim.inject(s, c, 1, SimDuration::ZERO);
        sim.run_until(SimTime::from_millis(30));
        assert!(!sim.link(s, c).partitioned, "window closed at 20ms");
        sim.inject(s, c, 2, SimDuration::ZERO);
        sim.run();
        let got: Vec<u32> =
            sim.actor::<Collector>(c).unwrap().got.iter().map(|&(_, m)| m).collect();
        assert_eq!(got, vec![2], "in-window injection dropped, post-window delivered");
    }

    #[test]
    fn drop_matching_claims_exactly_the_nth_match() {
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Starter { to: c, n: 5 });
        let plan = crate::FaultPlan::new()
            .drop_matching(2, crate::MsgPattern { from: Some(s), to: Some(c) });
        sim.schedule_faults(&plan);
        sim.run();
        let got: Vec<u32> =
            sim.actor::<Collector>(c).unwrap().got.iter().map(|&(_, m)| m).collect();
        assert_eq!(got, vec![0, 2, 3, 4], "exactly the 2nd send dropped");
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn delay_burst_defers_deliveries_in_window() {
        struct Spaced {
            to: ActorId,
        }
        impl Actor<u32> for Spaced {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.to, 0);
                ctx.set_timer(SimDuration::from_millis(50), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: u64) {
                ctx.send(self.to, 1);
            }
        }
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Spaced { to: c });
        sim.set_link(s, c, LinkConfig::reliable(SimDuration::from_millis(1)));
        let plan = crate::FaultPlan::new()
            .delay_burst((SimTime::ZERO, SimTime::from_millis(10)), SimDuration::from_millis(25));
        sim.schedule_faults(&plan);
        sim.run();
        let times: Vec<u64> =
            sim.actor::<Collector>(c).unwrap().got.iter().map(|&(t, _)| t.as_micros()).collect();
        // First send (at 0, in window): 1ms latency + 25ms burst. Second
        // (at 50ms, outside): plain 1ms.
        assert_eq!(times, vec![26_000, 51_000]);
    }

    #[test]
    fn fault_plan_runs_are_deterministic() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let c = sim.add_actor("c", LifeTracker::default());
            let s = sim.add_actor("s", Starter { to: c, n: 50 });
            sim.set_link(
                s,
                c,
                LinkConfig::lossy(SimDuration::from_millis(2), 0.2)
                    .with_jitter(SimDuration::from_millis(3)),
            );
            let plan = crate::FaultPlan::new()
                .crash(c, SimTime::from_millis(4))
                .restart(c, SimTime::from_millis(9))
                .delay_burst(
                    (SimTime::from_millis(2), SimTime::from_millis(6)),
                    SimDuration::from_millis(10),
                );
            sim.schedule_faults(&plan);
            sim.run();
            (sim.actor::<LifeTracker>(c).unwrap().got.clone(), sim.stats())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    /// Struct-of-arrays twin of `Collector`/`LifeTracker`: per-member state
    /// in parallel vecs behind one boxed arena.
    struct CollectorArena {
        got: Vec<Vec<(SimTime, u32)>>,
        starts: Vec<u32>,
        crashes: Vec<u32>,
        restarts: Vec<u32>,
    }

    impl CollectorArena {
        fn new(members: usize) -> Self {
            CollectorArena {
                got: vec![Vec::new(); members],
                starts: vec![0; members],
                crashes: vec![0; members],
                restarts: vec![0; members],
            }
        }
    }

    impl ArenaActor<u32> for CollectorArena {
        fn on_start(&mut self, member: u32, _ctx: &mut Context<'_, u32>) {
            self.starts[member as usize] += 1;
        }
        fn on_message(&mut self, member: u32, ctx: &mut Context<'_, u32>, from: ActorId, msg: u32) {
            self.got[member as usize].push((ctx.now(), msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_crash(&mut self, member: u32, _now: SimTime) {
            self.crashes[member as usize] += 1;
        }
        fn on_restart(&mut self, member: u32, _ctx: &mut Context<'_, u32>) {
            self.restarts[member as usize] += 1;
        }
    }

    #[test]
    fn arena_members_behave_like_solo_actors() {
        let mut sim = Simulator::new(0);
        let arena = sim.add_arena(CollectorArena::new(2));
        let m0 = sim.add_arena_member("m0", arena, 0);
        let m1 = sim.add_arena_member("m1", arena, 1);
        let s = sim.add_actor("s", Starter { to: m0, n: 0 });
        assert_eq!((m0.index(), m1.index(), s.index()), (0, 1, 2));
        sim.inject(s, m0, 1, SimDuration::ZERO);
        sim.inject(s, m1, 0, SimDuration::ZERO);
        sim.run();
        let a = sim.arena::<CollectorArena>(arena).unwrap();
        assert_eq!(a.starts, vec![1, 1]);
        assert_eq!(a.got[0], vec![(SimTime::ZERO, 1)]);
        assert_eq!(a.got[1], vec![(SimTime::ZERO, 0)]);
        // Members are not downcastable as solo actors.
        assert!(sim.actor::<Collector>(m0).is_none());
        // Two injects plus m0's echo of `1 - 1` back to the starter.
        assert_eq!(sim.stats().delivered, 3);
    }

    #[test]
    fn arena_member_crash_is_isolated_to_that_member() {
        let mut sim = Simulator::new(0);
        let arena = sim.add_arena(CollectorArena::new(2));
        let m0 = sim.add_arena_member("m0", arena, 0);
        let m1 = sim.add_arena_member("m1", arena, 1);
        let s = sim.add_actor("s", Starter { to: m0, n: 0 });
        sim.crash_at(m0, SimTime::from_millis(1));
        sim.restart_at(m0, SimTime::from_millis(3));
        sim.run_until(SimTime::from_millis(2));
        assert!(sim.is_crashed(m0));
        assert!(!sim.is_crashed(m1));
        // In-flight traffic to the crashed member dies; its sibling is fine.
        sim.inject(s, m0, 9, SimDuration::ZERO);
        sim.inject(s, m1, 0, SimDuration::ZERO);
        sim.run();
        let a = sim.arena::<CollectorArena>(arena).unwrap();
        assert_eq!(a.crashes, vec![1, 0]);
        assert_eq!(a.restarts, vec![1, 0]);
        assert!(a.got[0].is_empty());
        assert_eq!(a.got[1].len(), 1);
        assert_eq!(sim.incarnation(m0), 1);
    }

    #[test]
    fn inject_batch_matches_inject_loop() {
        let run = |batched: bool| {
            let mut sim = Simulator::new(7);
            sim.set_trace_enabled(true);
            let c = sim.add_actor("c", Collector::default());
            let s = sim.add_actor("s", Starter { to: c, n: 0 });
            if batched {
                sim.inject_batch(s, c, vec![1, 2, 3], SimDuration::from_millis(2));
            } else {
                for m in [1, 2, 3] {
                    sim.inject(s, c, m, SimDuration::from_millis(2));
                }
            }
            // A second wave toward a partitioned target drops identically.
            sim.set_partitioned(s, c, true);
            if batched {
                sim.inject_batch(s, c, vec![4, 5], SimDuration::ZERO);
            } else {
                for m in [4, 5] {
                    sim.inject(s, c, m, SimDuration::ZERO);
                }
            }
            sim.run();
            (sim.actor::<Collector>(c).unwrap().got.clone(), sim.stats(), sim.trace())
        };
        assert_eq!(run(true), run(false));
        let (got, stats, _) = run(true);
        assert_eq!(got.len(), 3);
        assert_eq!(stats.dropped, 2);
    }

    #[test]
    fn echo_conversation_terminates() {
        let mut sim = Simulator::new(0);
        let c = sim.add_actor("c", Collector { echo: true, ..Default::default() });
        let _ = sim.add_actor("s", Starter { to: c, n: 0 });
        sim.inject(ActorId::from_index(1), c, 3, SimDuration::ZERO);
        sim.run();
        // c receives 3, echoes 2 to s (a Starter, which ignores it): just one receipt.
        assert_eq!(sim.actor::<Collector>(c).unwrap().got.len(), 1);
        assert!(sim.stats().events_processed >= 2);
    }
}
