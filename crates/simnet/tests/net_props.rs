//! Property tests on the simulator's delivery guarantees.

use proptest::prelude::*;
use sada_simnet::{Actor, ActorId, Context, LinkConfig, SimDuration, Simulator};

#[derive(Default)]
struct Collector {
    got: Vec<(u64, u32)>, // (arrival micros, payload)
}

impl Actor<u32> for Collector {
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: ActorId, msg: u32) {
        self.got.push((ctx.now().as_micros(), msg));
    }
}

struct Burst {
    to: ActorId,
    n: u32,
    spacing_us: u64,
}

impl Actor<u32> for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        // Send the first immediately; schedule the rest via timers.
        ctx.send(self.to, 0);
        for i in 1..self.n {
            ctx.set_timer(SimDuration::from_micros(self.spacing_us * u64::from(i)), u64::from(i));
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, u32>, _: ActorId, _: u32) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, tag: u64) {
        ctx.send(self.to, tag as u32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed-latency links are FIFO: payloads arrive in send order, each
    /// exactly `latency` after its send.
    #[test]
    fn fixed_latency_links_are_fifo(
        seed in 0u64..500,
        latency_ms in 0u64..20,
        n in 1u32..30,
        spacing_us in 1u64..5_000,
    ) {
        let mut sim = Simulator::new(seed);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Burst { to: c, n, spacing_us });
        sim.set_link(s, c, LinkConfig::reliable(SimDuration::from_millis(latency_ms)));
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        prop_assert_eq!(got.len(), n as usize);
        let payloads: Vec<u32> = got.iter().map(|&(_, p)| p).collect();
        let sorted: Vec<u32> = (0..n).collect();
        prop_assert_eq!(payloads, sorted, "FIFO violated");
        for &(at, p) in got {
            prop_assert_eq!(at, latency_ms * 1_000 + spacing_us * u64::from(p));
        }
    }

    /// Loss never reorders and never duplicates: the delivered subsequence
    /// is strictly increasing.
    #[test]
    fn lossy_links_deliver_a_subsequence(seed in 0u64..500, loss in 0.0f64..0.9, n in 1u32..60) {
        let mut sim = Simulator::new(seed);
        let c = sim.add_actor("c", Collector::default());
        let s = sim.add_actor("s", Burst { to: c, n, spacing_us: 100 });
        sim.set_link(s, c, LinkConfig::lossy(SimDuration::from_millis(1), loss));
        sim.run();
        let payloads: Vec<u32> = sim.actor::<Collector>(c).unwrap().got.iter().map(|&(_, p)| p).collect();
        prop_assert!(payloads.windows(2).all(|w| w[0] < w[1]), "reorder/duplicate: {:?}", payloads);
        prop_assert!(payloads.len() <= n as usize);
        let delivered = sim.stats().delivered;
        let dropped = sim.stats().dropped;
        prop_assert_eq!(delivered + dropped, u64::from(n));
    }

    /// Bandwidth-limited links conserve messages and never deliver earlier
    /// than the unconstrained link would.
    #[test]
    fn bandwidth_only_delays(seed in 0u64..200, n in 1u32..20, size in 1usize..5_000) {
        let latency = SimDuration::from_millis(2);
        let run = |bw: Option<u64>| {
            let mut sim = Simulator::new(seed);
            sim.set_message_sizer(Box::new(move |_| size));
            let c = sim.add_actor("c", Collector::default());
            let s = sim.add_actor("s", Burst { to: c, n, spacing_us: 50 });
            let mut link = LinkConfig::reliable(latency);
            if let Some(bw) = bw {
                link = link.with_bandwidth(bw);
            }
            sim.set_link(s, c, link);
            sim.run();
            sim.actor::<Collector>(c).unwrap().got.clone()
        };
        let free = run(None);
        let limited = run(Some(1_000_000));
        prop_assert_eq!(free.len(), limited.len());
        for (f, l) in free.iter().zip(&limited) {
            prop_assert_eq!(f.1, l.1, "same order");
            prop_assert!(l.0 >= f.0, "bandwidth can only delay");
        }
    }
}
