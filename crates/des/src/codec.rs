//! Byte-stream codecs over the block ciphers: padding, ECB framing, and
//! decode-failure detection.

use std::error::Error;
use std::fmt;

use crate::des::BlockCipher;

/// Why a ciphertext could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ciphertext length is not a whole number of blocks.
    Truncated {
        /// Observed length in bytes.
        len: usize,
    },
    /// Padding bytes were inconsistent after decryption — the symptom a
    /// receiver sees when a packet is decrypted with the wrong cipher
    /// (exactly what the paper's *unsafe* adaptation produces).
    BadPadding,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { len } => {
                write!(f, "ciphertext length {len} is not a multiple of the block size")
            }
            CodecError::BadPadding => f.write_str("invalid padding after decryption"),
        }
    }
}

impl Error for CodecError {}

fn block_to_bytes(b: u64) -> [u8; 8] {
    b.to_be_bytes()
}

fn bytes_to_block(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(bytes);
    u64::from_be_bytes(buf)
}

/// Encrypts `plain` with PKCS#7-style padding and ECB block chaining.
///
/// Output length is always a non-zero multiple of 8 bytes; even an empty
/// payload gains one full padding block, so every encryption is reversible.
pub fn encrypt_bytes<C: BlockCipher>(cipher: &C, plain: &[u8]) -> Vec<u8> {
    let pad = 8 - (plain.len() % 8);
    let mut buf = Vec::with_capacity(plain.len() + pad);
    buf.extend_from_slice(plain);
    buf.extend(std::iter::repeat_n(pad as u8, pad));
    let mut out = Vec::with_capacity(buf.len());
    for chunk in buf.chunks_exact(8) {
        out.extend_from_slice(&block_to_bytes(cipher.encrypt_block(bytes_to_block(chunk))));
    }
    out
}

/// Decrypts and unpads a ciphertext produced by [`encrypt_bytes`].
///
/// # Errors
///
/// * [`CodecError::Truncated`] if the length is not a positive multiple of 8.
/// * [`CodecError::BadPadding`] if the padding is inconsistent — the typical
///   result of decrypting with a mismatched cipher or key.
pub fn decrypt_bytes<C: BlockCipher>(cipher: &C, ct: &[u8]) -> Result<Vec<u8>, CodecError> {
    if ct.is_empty() || !ct.len().is_multiple_of(8) {
        return Err(CodecError::Truncated { len: ct.len() });
    }
    let mut out = Vec::with_capacity(ct.len());
    for chunk in ct.chunks_exact(8) {
        out.extend_from_slice(&block_to_bytes(cipher.decrypt_block(bytes_to_block(chunk))));
    }
    let pad = *out.last().expect("non-empty") as usize;
    if pad == 0 || pad > 8 || pad > out.len() {
        return Err(CodecError::BadPadding);
    }
    if !out[out.len() - pad..].iter().all(|&b| b == pad as u8) {
        return Err(CodecError::BadPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{Des, Des128};

    #[test]
    fn round_trip_various_lengths() {
        let des = Des::new(0x133457799BBCDFF1);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 100, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let ct = encrypt_bytes(&des, &plain);
            assert_eq!(ct.len() % 8, 0);
            assert!(ct.len() > plain.len(), "padding always adds bytes");
            assert_eq!(decrypt_bytes(&des, &ct).unwrap(), plain, "len {len}");
        }
    }

    #[test]
    fn wrong_cipher_is_detected_with_high_probability() {
        let des = Des::new(0x133457799BBCDFF1);
        let des128 = Des128::new(0x133457799BBCDFF1, 0x0E329232EA6D0D73);
        let mut detected = 0;
        let trials: u32 = 100;
        for i in 0..trials {
            let plain: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(i as u8 + 1)).collect();
            let ct = encrypt_bytes(&des, &plain);
            match decrypt_bytes(&des128, &ct) {
                Err(CodecError::BadPadding) => detected += 1,
                Err(_) => detected += 1,
                Ok(garbage) => assert_ne!(garbage, plain, "must not silently succeed"),
            }
        }
        assert!(detected > trials * 9 / 10, "only {detected}/{trials} detected");
    }

    #[test]
    fn truncated_ciphertext_rejected() {
        let des = Des::new(1);
        assert_eq!(decrypt_bytes(&des, &[]).unwrap_err(), CodecError::Truncated { len: 0 });
        assert_eq!(decrypt_bytes(&des, &[1, 2, 3]).unwrap_err(), CodecError::Truncated { len: 3 });
    }

    #[test]
    fn tampered_last_block_rejected_or_corrupted() {
        let des = Des::new(0xABCDEF0123456789);
        let plain = b"the adaptation manager sends reset".to_vec();
        let mut ct = encrypt_bytes(&des, &plain);
        let last = ct.len() - 1;
        ct[last] ^= 0xFF;
        match decrypt_bytes(&des, &ct) {
            Err(_) => {}
            Ok(got) => assert_ne!(got, plain),
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let c = Des128::new(7, 9);
        let ct = encrypt_bytes(&c, b"");
        assert_eq!(ct.len(), 8, "one full padding block");
        assert_eq!(decrypt_bytes(&c, &ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn errors_display_readably() {
        assert!(CodecError::Truncated { len: 3 }.to_string().contains("3"));
        assert!(CodecError::BadPadding.to_string().contains("padding"));
    }
}
