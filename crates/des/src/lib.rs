//! # sada-des — DES and two-key triple DES, from scratch
//!
//! The DSN 2004 case study hardens a video multicast stream from "DES
//! 64-bit" to "DES 128-bit" encoding at runtime. To make *unsafe* adaptation
//! observable (garbled packets when an encoder is swapped mid-stream without
//! its decoder), this crate implements the actual ciphers rather than
//! stubbing them:
//!
//! * [`Des`] — FIPS 46-3 single DES, validated against published
//!   known-answer vectors.
//! * [`Des128`] — two-key EDE triple DES (112-bit keying), the "DES 128-bit"
//!   codec.
//! * [`encrypt_bytes`] / [`decrypt_bytes`] — padding + ECB framing with
//!   explicit decode errors, so a mismatched cipher surfaces as
//!   [`CodecError::BadPadding`] instead of silent corruption.
//!
//! ```
//! use sada_des::{Des, Des128, encrypt_bytes, decrypt_bytes};
//!
//! let des = Des::new(0x133457799BBCDFF1);
//! let ct = encrypt_bytes(&des, b"frame 42");
//! assert_eq!(decrypt_bytes(&des, &ct).unwrap(), b"frame 42");
//!
//! // Decoding with the wrong cipher fails loudly, not silently.
//! let wrong = Des128::new(0x133457799BBCDFF1, 0x0E329232EA6D0D73);
//! assert!(decrypt_bytes(&wrong, &ct).is_err());
//! ```

mod codec;
mod des;
mod tables;

pub use codec::{decrypt_bytes, encrypt_bytes, CodecError};
pub use des::{BlockCipher, Des, Des128};
