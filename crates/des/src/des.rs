//! The DES block cipher and its 2-key EDE "DES-128" variant.

use crate::tables::{E, FP, IP, P, PC1, PC2, SBOX, SHIFTS};

/// Applies a FIPS-style permutation table: `table[i]` is the 1-based,
/// MSB-first index into an `in_width`-bit input; output bits are emitted
/// MSB-first.
fn permute(input: u64, in_width: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (input >> (in_width - pos as u32)) & 1;
    }
    out
}

/// Rotates the low `width` bits of `v` left by `n`.
fn rotl(v: u32, n: u32, width: u32) -> u32 {
    let mask = (1u32 << width) - 1;
    ((v << n) | (v >> (width - n))) & mask
}

/// The DES round function `f(R, K) = P(S(E(R) ⊕ K))`.
fn feistel(r: u32, subkey: u64) -> u32 {
    let x = permute(r as u64, 32, &E) ^ subkey;
    let mut s_out = 0u32;
    for (box_ix, sbox) in SBOX.iter().enumerate() {
        let chunk = ((x >> (42 - 6 * box_ix)) & 0x3f) as usize;
        let row = ((chunk >> 4) & 0b10) | (chunk & 1);
        let col = (chunk >> 1) & 0b1111;
        s_out = (s_out << 4) | sbox[row][col] as u32;
    }
    permute(s_out as u64, 32, &P) as u32
}

/// A 64-bit block cipher — the interface MetaSocket filters program
/// against, letting the case study swap DES for DES-128 at runtime.
pub trait BlockCipher {
    /// Block size in bytes (8 for both DES variants).
    const BLOCK: usize = 8;

    /// Encrypts one 64-bit block.
    fn encrypt_block(&self, block: u64) -> u64;

    /// Decrypts one 64-bit block.
    fn decrypt_block(&self, block: u64) -> u64;

    /// Short algorithm label (e.g. `"DES-64"`), used in packet tags.
    fn name(&self) -> &'static str;
}

/// Single DES (FIPS 46-3): 64-bit blocks, 56-bit effective key.
///
/// This is the paper's "DES 64-bit encoder/decoder" (components `E1`,
/// `D1`, `D4`). The implementation is bit-exact against published
/// known-answer vectors; see the crate tests.
///
/// # Examples
///
/// ```
/// use sada_des::{BlockCipher, Des};
///
/// let des = Des::new(0x133457799BBCDFF1);
/// let ct = des.encrypt_block(0x0123456789ABCDEF);
/// assert_eq!(ct, 0x85E813540F0AB405);
/// assert_eq!(des.decrypt_block(ct), 0x0123456789ABCDEF);
/// ```
#[derive(Debug, Clone)]
pub struct Des {
    subkeys: [u64; 16],
}

impl Des {
    /// Builds the 16-round key schedule from a 64-bit key (parity bits, the
    /// LSB of each byte, are ignored per the standard).
    pub fn new(key: u64) -> Self {
        let pc1 = permute(key, 64, &PC1);
        let mut c = (pc1 >> 28) as u32; // high 28 bits
        let mut d = (pc1 & 0x0fff_ffff) as u32; // low 28 bits
        let mut subkeys = [0u64; 16];
        for (round, &shift) in SHIFTS.iter().enumerate() {
            c = rotl(c, shift as u32, 28);
            d = rotl(d, shift as u32, 28);
            let cd = ((c as u64) << 28) | d as u64;
            subkeys[round] = permute(cd, 56, &PC2);
        }
        Des { subkeys }
    }

    fn crypt(&self, block: u64, decrypt: bool) -> u64 {
        let ip = permute(block, 64, &IP);
        let mut l = (ip >> 32) as u32;
        let mut r = ip as u32;
        for round in 0..16 {
            let k = if decrypt { self.subkeys[15 - round] } else { self.subkeys[round] };
            let next_r = l ^ feistel(r, k);
            l = r;
            r = next_r;
        }
        // Pre-output block is R16 L16 (the halves swap once more).
        let pre = ((r as u64) << 32) | l as u64;
        permute(pre, 64, &FP)
    }
}

impl BlockCipher for Des {
    fn encrypt_block(&self, block: u64) -> u64 {
        self.crypt(block, false)
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        self.crypt(block, true)
    }

    fn name(&self) -> &'static str {
        "DES-64"
    }
}

/// Two-key triple DES in EDE configuration: `E_K1(D_K2(E_K1(P)))`,
/// 112-bit effective keying.
///
/// The paper calls its hardened codec "DES 128-bit encoding/decoding"
/// (components `E2`, `D2`, `D3`, `D5`); two-key EDE is the standard
/// construction that doubles DES key material while reusing the same
/// 64-bit block pipeline, so it exercises the identical filter-chain code
/// path with a genuinely incompatible ciphertext.
///
/// # Examples
///
/// ```
/// use sada_des::{BlockCipher, Des128};
///
/// let c = Des128::new(0x0123456789ABCDEF, 0xFEDCBA9876543210);
/// let pt = 0xDEADBEEF00C0FFEE;
/// assert_eq!(c.decrypt_block(c.encrypt_block(pt)), pt);
/// ```
#[derive(Debug, Clone)]
pub struct Des128 {
    k1: Des,
    k2: Des,
}

impl Des128 {
    /// Builds the cipher from two 64-bit keys.
    pub fn new(key1: u64, key2: u64) -> Self {
        Des128 { k1: Des::new(key1), k2: Des::new(key2) }
    }
}

impl BlockCipher for Des128 {
    fn encrypt_block(&self, block: u64) -> u64 {
        self.k1.encrypt_block(self.k2.decrypt_block(self.k1.encrypt_block(block)))
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        self.k1.decrypt_block(self.k2.encrypt_block(self.k1.decrypt_block(block)))
    }

    fn name(&self) -> &'static str {
        "DES-128"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example from Stallings / FIPS test material.
    #[test]
    fn known_answer_vector_1() {
        let des = Des::new(0x133457799BBCDFF1);
        assert_eq!(des.encrypt_block(0x0123456789ABCDEF), 0x85E813540F0AB405);
    }

    /// Weak-key style vector: all-identical plaintext bytes to zero.
    #[test]
    fn known_answer_vector_2() {
        let des = Des::new(0x0E329232EA6D0D73);
        assert_eq!(des.encrypt_block(0x8787878787878787), 0x0000000000000000);
        assert_eq!(des.decrypt_block(0x0000000000000000), 0x8787878787878787);
    }

    #[test]
    fn des_round_trips_many_blocks() {
        let des = Des::new(0xA5A5A5A55A5A5A5A);
        let mut x = 0x0123456789ABCDEFu64;
        for _ in 0..100 {
            let ct = des.encrypt_block(x);
            assert_eq!(des.decrypt_block(ct), x);
            assert_ne!(ct, x, "ciphertext should differ from plaintext");
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
    }

    #[test]
    fn des128_round_trips_many_blocks() {
        let c = Des128::new(0x133457799BBCDFF1, 0x0E329232EA6D0D73);
        let mut x = 0xFEEDFACECAFEBEEFu64;
        for _ in 0..100 {
            let ct = c.encrypt_block(x);
            assert_eq!(c.decrypt_block(ct), x);
            x = x.rotate_left(7) ^ 0x9E3779B97F4A7C15;
        }
    }

    #[test]
    fn des128_with_equal_keys_degenerates_to_des() {
        // E_K(D_K(E_K(P))) = E_K(P): the standard backward-compat property.
        let k = 0x133457799BBCDFF1;
        let single = Des::new(k);
        let triple = Des128::new(k, k);
        for pt in [0u64, 0x0123456789ABCDEF, u64::MAX] {
            assert_eq!(triple.encrypt_block(pt), single.encrypt_block(pt));
        }
    }

    #[test]
    fn des_and_des128_ciphertexts_differ() {
        let des = Des::new(0x133457799BBCDFF1);
        let des128 = Des128::new(0x133457799BBCDFF1, 0x0E329232EA6D0D73);
        let pt = 0x0123456789ABCDEF;
        assert_ne!(des.encrypt_block(pt), des128.encrypt_block(pt));
    }

    #[test]
    fn parity_bits_are_ignored() {
        // Flipping parity (LSB of each byte) must not change the schedule.
        let a = Des::new(0x133457799BBCDFF1);
        let b = Des::new(0x133457799BBCDFF1 ^ 0x0101010101010101);
        assert_eq!(a.encrypt_block(0xABCD), b.encrypt_block(0xABCD));
    }

    #[test]
    fn avalanche_one_plaintext_bit() {
        let des = Des::new(0x133457799BBCDFF1);
        let c1 = des.encrypt_block(0x0123456789ABCDEF);
        let c2 = des.encrypt_block(0x0123456789ABCDEE);
        let flipped = (c1 ^ c2).count_ones();
        assert!(flipped >= 16, "weak avalanche: only {flipped} bits flipped");
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Des::new(0).name(), "DES-64");
        assert_eq!(Des128::new(0, 1).name(), "DES-128");
    }
}
