//! Property tests: the incremental monitor agrees with the reference
//! trace semantics on arbitrary formulas and traces, and parsing
//! round-trips.

use std::collections::BTreeSet;

use proptest::prelude::*;
use sada_tl::{parse_formula, Formula, Monitor};

const PROPS: [&str; 3] = ["a", "b", "c"];

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..PROPS.len()).prop_map(|i| Formula::atom(PROPS[i])),
        any::<bool>().prop_map(Formula::Const),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            inner.clone().prop_map(Formula::yesterday),
            inner.clone().prop_map(Formula::once),
            inner.clone().prop_map(Formula::historically),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::since(a, b)),
        ]
    })
}

fn arb_trace() -> impl Strategy<Value = Vec<BTreeSet<String>>> {
    prop::collection::vec(
        prop::collection::btree_set(prop::sample::select(PROPS.to_vec()), 0..=3),
        1..24,
    )
    .prop_map(|t| t.into_iter().map(|s| s.into_iter().map(str::to_string).collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_equals_reference(f in arb_formula(), trace in arb_trace()) {
        let mut m = Monitor::new(f.clone());
        for i in 0..trace.len() {
            let state = trace[i].clone();
            let inc = m.step(&|p| state.contains(p));
            let refr = f.eval_trace(&trace[..=i]);
            prop_assert_eq!(inc, refr, "formula {} at step {}", f, i);
        }
    }

    #[test]
    fn display_parse_round_trip(f in arb_formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed).unwrap();
        prop_assert_eq!(f, reparsed, "printed: {}", printed);
    }

    #[test]
    fn reset_equals_fresh_monitor(f in arb_formula(), t1 in arb_trace(), t2 in arb_trace()) {
        let mut reused = Monitor::new(f.clone());
        for s in &t1 {
            let s = s.clone();
            let _ = reused.step(&|p| s.contains(p));
        }
        reused.reset();
        let mut fresh = Monitor::new(f);
        for s in &t2 {
            let s2 = s.clone();
            let s3 = s.clone();
            prop_assert_eq!(reused.step(&|p| s2.contains(p)), fresh.step(&|p| s3.contains(p)));
        }
    }
}
