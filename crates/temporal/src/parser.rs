//! Parser for the ptLTL surface syntax.
//!
//! Grammar (loosest first):
//!
//! ```text
//! formula := implies
//! implies := since ( "=>" since )*           // right-assoc
//! since   := or ( "since" or )*              // left-assoc
//! or      := and ( "|" and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary | "yesterday" unary | "once" unary
//!          | "historically" unary | atom
//! atom    := "true" | "false" | IDENT | "(" formula ")"
//! ```

use std::error::Error;
use std::fmt;

use crate::formula::Formula;

/// A ptLTL syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for TlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "temporal formula parse error at byte {}: {}", self.at, self.msg)
    }
}

impl Error for TlParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Bang,
    Amp,
    Pipe,
    Arrow,
    KwSince,
    KwYesterday,
    KwOnce,
    KwHistorically,
    KwTrue,
    KwFalse,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, TlParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] as char {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            '!' => {
                out.push((i, Tok::Bang));
                i += 1;
            }
            '&' => {
                out.push((i, Tok::Amp));
                i += 1;
            }
            '|' => {
                out.push((i, Tok::Pipe));
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((i, Tok::Arrow));
                    i += 2;
                } else {
                    return Err(TlParseError { at: i, msg: "expected '=>'".into() });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                let tok = match word {
                    "since" => Tok::KwSince,
                    "yesterday" => Tok::KwYesterday,
                    "once" => Tok::KwOnce,
                    "historically" => Tok::KwHistorically,
                    "true" => Tok::KwTrue,
                    "false" => Tok::KwFalse,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push((start, tok));
            }
            other => {
                return Err(TlParseError { at: i, msg: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|&(a, _)| a).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn formula(&mut self) -> Result<Formula, TlParseError> {
        self.implies()
    }

    fn implies(&mut self) -> Result<Formula, TlParseError> {
        let lhs = self.since()?;
        if self.peek() == Some(&Tok::Arrow) {
            self.bump();
            let rhs = self.implies()?;
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn since(&mut self) -> Result<Formula, TlParseError> {
        let mut lhs = self.or()?;
        while self.peek() == Some(&Tok::KwSince) {
            self.bump();
            let rhs = self.or()?;
            lhs = Formula::since(lhs, rhs);
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Formula, TlParseError> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.bump();
            lhs = Formula::or(lhs, self.and()?);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Formula, TlParseError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some(&Tok::Amp) {
            self.bump();
            lhs = Formula::and(lhs, self.unary()?);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, TlParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::KwYesterday) => {
                self.bump();
                Ok(Formula::yesterday(self.unary()?))
            }
            Some(Tok::KwOnce) => {
                self.bump();
                Ok(Formula::once(self.unary()?))
            }
            Some(Tok::KwHistorically) => {
                self.bump();
                Ok(Formula::historically(self.unary()?))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, TlParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::KwTrue) => Ok(Formula::Const(true)),
            Some(Tok::KwFalse) => Ok(Formula::Const(false)),
            Some(Tok::Ident(name)) => Ok(Formula::Atom(name)),
            Some(Tok::LParen) => {
                let f = self.formula()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(f),
                    other => Err(TlParseError {
                        at: self.here(),
                        msg: format!("expected ')', found {other:?}"),
                    }),
                }
            }
            other => Err(TlParseError { at, msg: format!("expected a formula, found {other:?}") }),
        }
    }
}

/// Parses a ptLTL formula.
///
/// # Errors
///
/// Returns [`TlParseError`] on invalid syntax or trailing input.
///
/// # Examples
///
/// ```
/// # use sada_tl::parse_formula;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_formula("historically (send => once ready)")?;
/// assert_eq!(f.atoms().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_formula(src: &str) -> Result<Formula, TlParseError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0, len: src.len() };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(TlParseError { at: p.here(), msg: "trailing input".into() });
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str, display: &str) {
        let f = parse_formula(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(f.to_string(), display, "source: {src}");
    }

    #[test]
    fn precedence() {
        ok("a & b | c", "((a & b) | c)");
        ok("a | b & c", "(a | (b & c))");
        ok("!a & b", "(!a & b)");
        ok("a => b => c", "(a => (b => c))");
    }

    #[test]
    fn temporal_operators() {
        ok("once a", "once a");
        ok("historically (a => once b)", "historically (a => once b)");
        ok("yesterday yesterday a", "yesterday yesterday a");
        ok("!err since reset", "(!err since reset)");
        ok("a since b since c", "((a since b) since c)");
    }

    #[test]
    fn since_binds_tighter_than_implies() {
        ok("a since b => c", "((a since b) => c)");
    }

    #[test]
    fn constants() {
        ok("true & !false", "(true & !false)");
    }

    #[test]
    fn errors() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("a &").is_err());
        assert!(parse_formula("(a").is_err());
        assert!(parse_formula("a b").is_err());
        assert!(parse_formula("a = b").is_err());
        assert!(parse_formula("@").is_err());
    }

    #[test]
    fn parse_display_round_trip() {
        for src in [
            "historically (send => once ready)",
            "(!err since reset) & once go",
            "yesterday (a | b) => once (c & d)",
        ] {
            let f = parse_formula(src).unwrap();
            let again = parse_formula(&f.to_string()).unwrap();
            assert_eq!(f, again, "{src}");
        }
    }
}
