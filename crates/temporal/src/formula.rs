//! The past-time LTL formula AST.

use std::collections::BTreeSet;
use std::fmt;

/// A past-time linear temporal logic formula over named propositions.
///
/// Semantics over a finite trace `s₀ … sₙ`, evaluated at the newest state
/// `sₙ` (`⊨ᵢ` means "holds at position i"):
///
/// * `Atom(p)` — `p ∈ sᵢ`.
/// * `Yesterday(φ)` — `i > 0` and `φ ⊨ᵢ₋₁` (false at the first state).
/// * `Once(φ)` — `φ` held at some `j ≤ i`.
/// * `Historically(φ)` — `φ` held at every `j ≤ i`.
/// * `Since(φ, ψ)` — some `j ≤ i` with `ψ ⊨ⱼ` and `φ` at every position in
///   `(j, i]` (strong since: `ψ` must have occurred).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Constant truth value.
    Const(bool),
    /// Named proposition.
    Atom(String),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Material implication.
    Implies(Box<Formula>, Box<Formula>),
    /// True iff the operand held in the previous state.
    Yesterday(Box<Formula>),
    /// True iff the operand has held at least once so far.
    Once(Box<Formula>),
    /// True iff the operand has held in every state so far.
    Historically(Box<Formula>),
    /// `lhs since rhs`: `rhs` occurred, and `lhs` has held ever since
    /// (strictly after that occurrence).
    Since(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Proposition reference.
    pub fn atom(name: &str) -> Formula {
        Formula::Atom(name.to_string())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Implication.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// `yesterday φ`.
    pub fn yesterday(f: Formula) -> Formula {
        Formula::Yesterday(Box::new(f))
    }

    /// `once φ`.
    pub fn once(f: Formula) -> Formula {
        Formula::Once(Box::new(f))
    }

    /// `historically φ`.
    pub fn historically(f: Formula) -> Formula {
        Formula::Historically(Box::new(f))
    }

    /// `a since b`.
    pub fn since(a: Formula, b: Formula) -> Formula {
        Formula::Since(Box::new(a), Box::new(b))
    }

    /// Every proposition name mentioned.
    pub fn atoms(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Formula::Const(_) => {}
            Formula::Atom(p) => {
                out.insert(p.as_str());
            }
            Formula::Not(f)
            | Formula::Yesterday(f)
            | Formula::Once(f)
            | Formula::Historically(f) => f.collect_atoms(out),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Since(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Number of AST nodes (monitor state size).
    pub fn size(&self) -> usize {
        match self {
            Formula::Const(_) | Formula::Atom(_) => 1,
            Formula::Not(f)
            | Formula::Yesterday(f)
            | Formula::Once(f)
            | Formula::Historically(f) => 1 + f.size(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Since(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Reference evaluation over an explicit finite trace, at the last
    /// position. Exponential-free but re-walks the trace; used as the
    /// testing oracle for the incremental [`Monitor`](crate::Monitor).
    pub fn eval_trace(&self, trace: &[BTreeSet<String>]) -> bool {
        if trace.is_empty() {
            return matches!(self, Formula::Const(true))
                || matches!(self, Formula::Historically(_));
        }
        self.eval_at(trace, trace.len() - 1)
    }

    fn eval_at(&self, trace: &[BTreeSet<String>], i: usize) -> bool {
        match self {
            Formula::Const(b) => *b,
            Formula::Atom(p) => trace[i].contains(p),
            Formula::Not(f) => !f.eval_at(trace, i),
            Formula::And(a, b) => a.eval_at(trace, i) && b.eval_at(trace, i),
            Formula::Or(a, b) => a.eval_at(trace, i) || b.eval_at(trace, i),
            Formula::Implies(a, b) => !a.eval_at(trace, i) || b.eval_at(trace, i),
            Formula::Yesterday(f) => i > 0 && f.eval_at(trace, i - 1),
            Formula::Once(f) => (0..=i).any(|j| f.eval_at(trace, j)),
            Formula::Historically(f) => (0..=i).all(|j| f.eval_at(trace, j)),
            Formula::Since(a, b) => (0..=i)
                .rev()
                .any(|j| b.eval_at(trace, j) && ((j + 1)..=i).all(|k| a.eval_at(trace, k))),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(b) => write!(f, "{b}"),
            Formula::Atom(p) => f.write_str(p),
            Formula::Not(x) => write!(f, "!{x}"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Implies(a, b) => write!(f, "({a} => {b})"),
            Formula::Yesterday(x) => write!(f, "yesterday {x}"),
            Formula::Once(x) => write!(f, "once {x}"),
            Formula::Historically(x) => write!(f, "historically {x}"),
            Formula::Since(a, b) => write!(f, "({a} since {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(props: &[&str]) -> BTreeSet<String> {
        props.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn reference_semantics_basics() {
        let trace = vec![state(&["a"]), state(&[]), state(&["b"])];
        assert!(Formula::once(Formula::atom("a")).eval_trace(&trace));
        assert!(!Formula::atom("a").eval_trace(&trace));
        assert!(Formula::atom("b").eval_trace(&trace));
        assert!(!Formula::historically(Formula::atom("a")).eval_trace(&trace));
        assert!(Formula::yesterday(Formula::Const(true)).eval_trace(&trace));
    }

    #[test]
    fn yesterday_is_false_at_origin() {
        let trace = vec![state(&["a"])];
        assert!(!Formula::yesterday(Formula::atom("a")).eval_trace(&trace));
        assert!(!Formula::yesterday(Formula::Const(true)).eval_trace(&trace));
    }

    #[test]
    fn since_requires_anchor() {
        // b never happened: strong since is false even if a always holds.
        let trace = vec![state(&["a"]), state(&["a"])];
        assert!(!Formula::since(Formula::atom("a"), Formula::atom("b")).eval_trace(&trace));
        // b at origin, a afterwards: true.
        let trace = vec![state(&["b"]), state(&["a"]), state(&["a"])];
        assert!(Formula::since(Formula::atom("a"), Formula::atom("b")).eval_trace(&trace));
        // a gap after the last b: false.
        let trace = vec![state(&["b"]), state(&[]), state(&["a"])];
        assert!(!Formula::since(Formula::atom("a"), Formula::atom("b")).eval_trace(&trace));
        // anchor at the current state counts regardless of lhs.
        let trace = vec![state(&[]), state(&["b"])];
        assert!(Formula::since(Formula::atom("a"), Formula::atom("b")).eval_trace(&trace));
    }

    #[test]
    fn atoms_and_size() {
        let f = Formula::implies(
            Formula::and(Formula::atom("x"), Formula::atom("y")),
            Formula::once(Formula::atom("x")),
        );
        assert_eq!(f.atoms().into_iter().collect::<Vec<_>>(), vec!["x", "y"]);
        assert_eq!(f.size(), 6);
    }

    #[test]
    fn display_round_trips_structure() {
        let f = Formula::since(Formula::not(Formula::atom("err")), Formula::atom("reset"));
        assert_eq!(f.to_string(), "(!err since reset)");
    }
}
