//! Parameterized response obligations and the combined safe-state monitor.
//!
//! The paper's criterion: *"If all the obligations of the formula are
//! fulfilled in a state, then the state can be automatically identified as
//! a safe state."* A critical communication segment is naturally a response
//! obligation — its start event obliges a matching completion event — so
//! the detector tracks the outstanding-obligation multiset per specification
//! and per key (e.g. packet sequence number).

use std::collections::{BTreeMap, HashMap};

use crate::formula::Formula;
use crate::monitor::Monitor;

/// A parameterized response specification `trigger(k) ⇒ ◇ response(k)`:
/// every trigger event with key `k` opens an obligation that only the
/// matching response event discharges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseSpec {
    /// Human-readable name (e.g. `"packet-decoded"`).
    pub name: String,
    /// Event name that opens an obligation.
    pub trigger: String,
    /// Event name that discharges it.
    pub response: String,
}

impl ResponseSpec {
    /// Builds a spec.
    pub fn new(name: &str, trigger: &str, response: &str) -> Self {
        ResponseSpec { name: name.into(), trigger: trigger.into(), response: response.into() }
    }
}

/// An occurrence fed to the [`ObligationTracker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationEvent {
    /// Event name (matched against triggers/responses).
    pub name: String,
    /// Correlation key (packet seq, session id, …).
    pub key: u64,
}

impl ObligationEvent {
    /// Builds an event.
    pub fn new(name: &str, key: u64) -> Self {
        ObligationEvent { name: name.into(), key }
    }
}

/// Tracks outstanding obligations for a set of [`ResponseSpec`]s.
#[derive(Debug, Clone)]
pub struct ObligationTracker {
    specs: Vec<ResponseSpec>,
    /// `(spec index, key) -> outstanding count` (triggers may repeat).
    open: HashMap<(usize, u64), u32>,
    opened_total: u64,
    discharged_total: u64,
}

impl ObligationTracker {
    /// A tracker over `specs`.
    pub fn new(specs: Vec<ResponseSpec>) -> Self {
        ObligationTracker { specs, open: HashMap::new(), opened_total: 0, discharged_total: 0 }
    }

    /// Processes one event: opens and/or discharges obligations. An event
    /// may be a trigger of one spec and a response of another.
    pub fn observe(&mut self, ev: &ObligationEvent) {
        for (ix, spec) in self.specs.iter().enumerate() {
            if spec.trigger == ev.name {
                *self.open.entry((ix, ev.key)).or_insert(0) += 1;
                self.opened_total += 1;
            }
            if spec.response == ev.name {
                if let Some(n) = self.open.get_mut(&(ix, ev.key)) {
                    *n -= 1;
                    self.discharged_total += 1;
                    if *n == 0 {
                        self.open.remove(&(ix, ev.key));
                    }
                }
                // A response with no matching trigger is ignored: fulfilling
                // a non-existent obligation cannot make a state unsafe.
            }
        }
    }

    /// Number of obligations currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.open.values().map(|&n| n as usize).sum()
    }

    /// All obligations fulfilled — the paper's safe-state criterion.
    pub fn all_fulfilled(&self) -> bool {
        self.open.is_empty()
    }

    /// `(opened, discharged)` lifetime counters.
    pub fn totals(&self) -> (u64, u64) {
        (self.opened_total, self.discharged_total)
    }

    /// The outstanding obligations per spec name (for diagnostics).
    pub fn outstanding_by_spec(&self) -> BTreeMap<&str, usize> {
        let mut out = BTreeMap::new();
        for (&(ix, _), &n) in &self.open {
            *out.entry(self.specs[ix].name.as_str()).or_insert(0) += n as usize;
        }
        out
    }
}

/// The full automatic safe-state detector: a state is safe when the ptLTL
/// *condition* holds at it and no response *obligation* is outstanding.
#[derive(Debug, Clone)]
pub struct SafeStateMonitor {
    condition: Monitor,
    tracker: ObligationTracker,
    last_condition: bool,
}

impl SafeStateMonitor {
    /// Combines a ptLTL state condition with response obligations. Use
    /// `Formula::Const(true)` when only obligations matter.
    pub fn new(condition: Formula, specs: Vec<ResponseSpec>) -> Self {
        SafeStateMonitor {
            condition: Monitor::new(condition),
            tracker: ObligationTracker::new(specs),
            last_condition: false,
        }
    }

    /// Consumes one state: `events` that occurred entering it, plus the
    /// proposition oracle for the ptLTL condition. Returns whether the new
    /// state is safe.
    pub fn step(&mut self, events: &[ObligationEvent], holds: &dyn Fn(&str) -> bool) -> bool {
        for ev in events {
            self.tracker.observe(ev);
        }
        self.last_condition = self.condition.step(holds);
        self.is_safe()
    }

    /// Whether the most recent state is safe.
    pub fn is_safe(&self) -> bool {
        self.last_condition && self.tracker.all_fulfilled()
    }

    /// Access to the obligation side (diagnostics).
    pub fn tracker(&self) -> &ObligationTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, key: u64) -> ObligationEvent {
        ObligationEvent::new(name, key)
    }

    #[test]
    fn obligations_open_and_discharge_by_key() {
        let mut t = ObligationTracker::new(vec![ResponseSpec::new("decode", "sent", "decoded")]);
        assert!(t.all_fulfilled());
        t.observe(&ev("sent", 1));
        t.observe(&ev("sent", 2));
        assert_eq!(t.outstanding(), 2);
        t.observe(&ev("decoded", 1));
        assert_eq!(t.outstanding(), 1);
        assert!(!t.all_fulfilled());
        t.observe(&ev("decoded", 2));
        assert!(t.all_fulfilled());
        assert_eq!(t.totals(), (2, 2));
    }

    #[test]
    fn duplicate_triggers_need_matching_responses() {
        let mut t = ObligationTracker::new(vec![ResponseSpec::new("x", "start", "end")]);
        t.observe(&ev("start", 7));
        t.observe(&ev("start", 7));
        assert_eq!(t.outstanding(), 2);
        t.observe(&ev("end", 7));
        assert_eq!(t.outstanding(), 1);
        t.observe(&ev("end", 7));
        assert!(t.all_fulfilled());
    }

    #[test]
    fn unmatched_response_is_ignored() {
        let mut t = ObligationTracker::new(vec![ResponseSpec::new("x", "start", "end")]);
        t.observe(&ev("end", 9));
        assert!(t.all_fulfilled());
        assert_eq!(t.totals(), (0, 0));
    }

    #[test]
    fn multiple_specs_share_events_independently() {
        let mut t = ObligationTracker::new(vec![
            ResponseSpec::new("a", "req", "resp"),
            ResponseSpec::new("b", "resp", "ack"), // resp triggers the next stage
        ]);
        t.observe(&ev("req", 1));
        t.observe(&ev("resp", 1));
        assert_eq!(t.outstanding(), 1, "stage b now open");
        assert_eq!(t.outstanding_by_spec().get("b"), Some(&1));
        t.observe(&ev("ack", 1));
        assert!(t.all_fulfilled());
    }

    #[test]
    fn safe_state_monitor_combines_condition_and_obligations() {
        let cond = crate::parse_formula("!resetting").unwrap();
        let mut m = SafeStateMonitor::new(cond, vec![ResponseSpec::new("seg", "start", "end")]);
        // Quiet state: safe.
        assert!(m.step(&[], &|_| false));
        // A segment opens: unsafe even though the condition holds.
        assert!(!m.step(&[ev("start", 5)], &|_| false));
        // Segment closes but we are resetting: still unsafe.
        assert!(!m.step(&[ev("end", 5)], &|p| p == "resetting"));
        // Everything settled: safe again.
        assert!(m.step(&[], &|_| false));
        assert!(m.is_safe());
    }

    #[test]
    fn detector_finds_the_papers_safe_points() {
        // The hand-held's DES decoder: "not decoding a packet" is the local
        // safe state (Section 5.2). Model each packet as an obligation.
        let mut m = SafeStateMonitor::new(
            Formula::Const(true),
            vec![ResponseSpec::new("decode", "pkt_in", "pkt_out")],
        );
        let mut safe_points = Vec::new();
        let timeline: Vec<Vec<ObligationEvent>> = vec![
            vec![],
            vec![ev("pkt_in", 1)],
            vec![ev("pkt_out", 1), ev("pkt_in", 2)],
            vec![ev("pkt_out", 2)],
            vec![],
        ];
        for (i, events) in timeline.iter().enumerate() {
            if m.step(events, &|_| false) {
                safe_points.push(i);
            }
        }
        assert_eq!(safe_points, vec![0, 3, 4], "exactly the between-packet states");
    }
}
