//! # sada-tl — temporal-logic runtime monitoring for safe states
//!
//! The paper's Section 7 sketches its most concrete future-work item:
//!
//! > "One promising approach is to use a temporal logic formula to specify
//! > the set of critical communication segments of a component. The
//! > run-time component states can be monitored and the formula can then be
//! > dynamically evaluated. If all the obligations of the formula are
//! > fulfilled in a state, then the state can be automatically identified
//! > as a safe state."
//!
//! This crate implements that approach:
//!
//! * [`Formula`] — a past-time linear temporal logic (ptLTL) over named
//!   propositions: boolean connectives plus `yesterday`, `once`,
//!   `historically`, and `since`. ptLTL is the standard choice for runtime
//!   monitoring because each step is evaluated incrementally in
//!   `O(|formula|)` with one bit of state per subformula.
//! * [`Monitor`] — the incremental evaluator.
//! * [`ResponseSpec`] / [`ObligationTracker`] — parameterized response
//!   obligations `trigger(k) ⇒ ◇ response(k)` (e.g. "every packet the
//!   encoder emits is eventually decoded"), tracking the *outstanding*
//!   obligation set per key.
//! * [`SafeStateMonitor`] — combines both: a state is **safe** when the
//!   ptLTL condition holds *and* no tracked obligation is outstanding —
//!   exactly the paper's "all obligations fulfilled" criterion.
//! * [`audit_bridge`] — derives safe points automatically from a
//!   `sada-model` audit-event stream, so the detector can be validated
//!   against the hand-written safety auditor.
//!
//! ## Example
//!
//! ```
//! use sada_tl::{Monitor, parse_formula};
//!
//! // "The decoder is idle, and there has been no error since the last reset."
//! let f = parse_formula("idle & (!error since reset)").unwrap();
//! let mut m = Monitor::new(f);
//! assert!(!m.step(&|p| p == "reset"));            // reset, but not idle
//! assert!(m.step(&|p| p == "idle"));              // idle, no error since reset
//! assert!(!m.step(&|p| p == "idle" || p == "error"));
//! assert!(!m.step(&|p| p == "idle"), "error stays remembered until next reset");
//! ```

pub mod audit_bridge;
mod formula;
mod monitor;
mod obligations;
mod parser;

pub use formula::Formula;
pub use monitor::Monitor;
pub use obligations::{ObligationEvent, ObligationTracker, ResponseSpec, SafeStateMonitor};
pub use parser::{parse_formula, TlParseError};
