//! Bridges audit-event streams into the temporal detector, so safe states
//! can be identified *automatically* from the same instrumentation the
//! safety auditor consumes — closing the loop the paper proposes in
//! Section 7.
//!
//! Obligations are identified by the typed [`ObligationKey`] (component +
//! segment edge); the legacy string form (`seg_start_c0`) appears only at
//! the [`ResponseSpec`] parser boundary, via the key's `Display`. The
//! detector consumes either a flat [`AuditEvent`] log or, through
//! [`safe_points_on_stream`] / [`derive_temporal_events`], the unified
//! observability bus stream directly.

use sada_expr::CompId;
use sada_model::AuditEvent;
use sada_obs::{Event, ObligationKey, Payload, SegmentEdge, TemporalEvent, NO_ACTOR};

use crate::formula::Formula;
use crate::obligations::{ObligationEvent, ResponseSpec, SafeStateMonitor};

/// For each component in `comps`, derives the response obligation "every
/// segment started on this component eventually ends".
pub fn segment_specs(comps: &[CompId]) -> Vec<ResponseSpec> {
    comps
        .iter()
        .map(|&c| {
            ResponseSpec::new(
                &format!("segment-c{}", c.index()),
                &ObligationKey::start(c).to_string(),
                &ObligationKey::end(c).to_string(),
            )
        })
        .collect()
}

/// The typed obligation identity an audit event carries for `comps`, if
/// any: which segment bracket edge, on which component, correlated by cid.
fn obligation_key(ev: &AuditEvent, comps: &[CompId]) -> Option<(ObligationKey, u64)> {
    match ev {
        AuditEvent::SegmentStart { cid, comp } if comps.contains(comp) => {
            Some((ObligationKey::start(*comp), *cid))
        }
        AuditEvent::SegmentEnd { cid, comp } if comps.contains(comp) => {
            Some((ObligationKey::end(*comp), *cid))
        }
        _ => None,
    }
}

fn to_obligation_events(ev: &AuditEvent, comps: &[CompId]) -> Vec<ObligationEvent> {
    match obligation_key(ev, comps) {
        Some((key, cid)) => vec![ObligationEvent::new(&key.to_string(), cid)],
        None => Vec::new(),
    }
}

/// Replays an audit log and returns the indices after which an adaptive
/// action touching `comps` could run safely: positions where every segment
/// obligation on those components is fulfilled.
///
/// This is the paper's automatic safe-state identification: the same
/// temporal criterion the agents implement by hand ("the decoder is not
/// decoding a packet", drained streams) is *derived* from the event stream.
pub fn safe_points(log: &[AuditEvent], comps: &[CompId]) -> Vec<usize> {
    let mut monitor = SafeStateMonitor::new(Formula::Const(true), segment_specs(comps));
    let mut out = Vec::new();
    for (ix, ev) in log.iter().enumerate() {
        let events = to_obligation_events(ev, comps);
        if monitor.step(&events, &|_| false) {
            out.push(ix);
        }
    }
    out
}

/// [`safe_points`] over the unified bus stream: returns the indices into
/// `stream` after which an in-action touching `comps` would be safe.
/// Non-audit events never change the verdict, so while the system is safe
/// every intervening network or protocol event index is reported too.
pub fn safe_points_on_stream(stream: &[Event], comps: &[CompId]) -> Vec<usize> {
    let mut monitor = SafeStateMonitor::new(Formula::Const(true), segment_specs(comps));
    let mut out = Vec::new();
    for (ix, ev) in stream.iter().enumerate() {
        let events = match &ev.payload {
            Payload::Audit(a) => to_obligation_events(a, comps),
            _ => Vec::new(),
        };
        if monitor.step(&events, &|_| false) {
            out.push(ix);
        }
    }
    out
}

/// Consumes a unified bus stream and derives the temporal-layer events it
/// implies for `comps`: one obligation opened/discharged per segment
/// bracket edge (identified by the typed [`ObligationKey`]) plus a
/// [`TemporalEvent::SafePoint`] each time the monitor *re-enters* safety
/// after being unsafe. The derived events ride the same [`Event`] envelope
/// (obligations keep the observing actor; safe points are system-level and
/// carry [`NO_ACTOR`]), so callers can merge them back onto a bus or into
/// a trace.
pub fn derive_temporal_events(stream: &[Event], comps: &[CompId]) -> Vec<Event> {
    let mut monitor = SafeStateMonitor::new(Formula::Const(true), segment_specs(comps));
    let mut out = Vec::new();
    let mut was_safe = true;
    for (ix, ev) in stream.iter().enumerate() {
        let typed = match &ev.payload {
            Payload::Audit(a) => obligation_key(a, comps),
            _ => None,
        };
        let obls = match (&ev.payload, typed) {
            (Payload::Audit(a), Some(_)) => to_obligation_events(a, comps),
            _ => Vec::new(),
        };
        if let Some((key, cid)) = typed {
            let t = match key.edge {
                SegmentEdge::Start => TemporalEvent::ObligationOpened { key, cid },
                SegmentEdge::End => TemporalEvent::ObligationDischarged { key, cid },
            };
            out.push(Event {
                at: ev.at,
                actor: ev.actor,
                session: ev.session,
                shard: ev.shard,
                payload: Payload::Temporal(t),
            });
        }
        let safe = monitor.step(&obls, &|_| false);
        if safe && !was_safe {
            out.push(Event {
                at: ev.at,
                actor: NO_ACTOR,
                session: ev.session,
                shard: ev.shard,
                payload: Payload::Temporal(TemporalEvent::SafePoint { index: ix as u64 }),
            });
        }
        was_safe = safe;
    }
    out
}

/// Convenience verdict: would an in-action on `comps` at position `at`
/// (i.e. after `log[at]` was processed) have been safe?
pub fn is_safe_at(log: &[AuditEvent], comps: &[CompId], at: usize) -> bool {
    safe_points(&log[..=at.min(log.len().saturating_sub(1))], comps)
        .last()
        .is_some_and(|&p| p == at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;
    use sada_model::{AuditEvent, SafetyAuditor};
    use sada_obs::{NetEvent, SimTime};

    fn comp(i: usize) -> CompId {
        CompId::from_index(i)
    }

    fn log_with_gap() -> Vec<AuditEvent> {
        vec![
            AuditEvent::SegmentStart { cid: 1, comp: comp(0) }, // 0: open
            AuditEvent::SegmentEnd { cid: 1, comp: comp(0) },   // 1: closed
            AuditEvent::SegmentStart { cid: 2, comp: comp(0) }, // 2: open
            AuditEvent::SegmentStart { cid: 3, comp: comp(1) }, // 3: both open
            AuditEvent::SegmentEnd { cid: 2, comp: comp(0) },   // 4: only c1 open
            AuditEvent::SegmentEnd { cid: 3, comp: comp(1) },   // 5: closed
        ]
    }

    /// The same log, riding the bus envelope with a network event wedged in
    /// between every audit fact.
    fn stream_with_gap() -> Vec<Event> {
        let mut out = Vec::new();
        for (ix, a) in log_with_gap().into_iter().enumerate() {
            out.push(Event {
                at: SimTime::from_millis(ix as u64),
                actor: 0,
                session: 0,
                shard: 0,
                payload: Payload::Audit(a),
            });
            out.push(Event {
                at: SimTime::from_millis(ix as u64),
                actor: 1,
                session: 0,
                shard: 0,
                payload: Payload::Net(NetEvent::Sent { from: 1, to: 0 }),
            });
        }
        out
    }

    #[test]
    fn safe_points_match_segment_gaps() {
        let log = log_with_gap();
        assert_eq!(safe_points(&log, &[comp(0)]), vec![1, 4, 5]);
        assert_eq!(safe_points(&log, &[comp(1)]), vec![0, 1, 2, 5]);
        assert_eq!(safe_points(&log, &[comp(0), comp(1)]), vec![1, 5]);
    }

    #[test]
    fn stream_safe_points_project_to_the_flat_logs() {
        // Audit fact k sits at stream index 2k; its trailing net event (2k+1)
        // inherits the verdict.
        let stream = stream_with_gap();
        assert_eq!(safe_points_on_stream(&stream, &[comp(0)]), vec![2, 3, 8, 9, 10, 11]);
        assert_eq!(safe_points_on_stream(&stream, &[comp(0), comp(1)]), vec![2, 3, 10, 11]);
    }

    #[test]
    fn derived_temporal_events_bracket_obligations() {
        let stream = stream_with_gap();
        let derived = derive_temporal_events(&stream, &[comp(0), comp(1)]);
        let opened = derived
            .iter()
            .filter(|e| {
                matches!(e.payload, Payload::Temporal(TemporalEvent::ObligationOpened { .. }))
            })
            .count();
        let discharged = derived
            .iter()
            .filter(|e| {
                matches!(e.payload, Payload::Temporal(TemporalEvent::ObligationDischarged { .. }))
            })
            .count();
        assert_eq!((opened, discharged), (3, 3), "one bracket pair per segment");
        // Safety is re-entered twice: after cid 1 closes and after 2 and 3
        // both close. Safe-point indices point at the discharging events.
        let safe_ixs: Vec<u64> = derived
            .iter()
            .filter_map(|e| match e.payload {
                Payload::Temporal(TemporalEvent::SafePoint { index }) => Some(index),
                _ => None,
            })
            .collect();
        assert_eq!(safe_ixs, vec![2, 10]);
        // The typed key round-trips through the parser-boundary string form.
        let first_key = derived
            .iter()
            .find_map(|e| match e.payload {
                Payload::Temporal(TemporalEvent::ObligationOpened { key, .. }) => Some(key),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_key.to_string().parse::<ObligationKey>().unwrap(), first_key);
    }

    #[test]
    fn is_safe_at_spot_checks() {
        let log = log_with_gap();
        assert!(is_safe_at(&log, &[comp(0)], 1));
        assert!(!is_safe_at(&log, &[comp(0)], 2));
        assert!(is_safe_at(&log, &[comp(0)], 4));
    }

    /// The detector and the hand-written auditor must agree: inserting an
    /// in-action at a detector-approved point passes the audit; inserting
    /// it anywhere else fails.
    #[test]
    fn detector_agrees_with_safety_auditor() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let auditor = SafetyAuditor::new(sada_expr::InvariantSet::new());
        let base = vec![
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentEnd { cid: 1, comp: a },
            AuditEvent::SegmentStart { cid: 2, comp: a },
            AuditEvent::SegmentEnd { cid: 2, comp: a },
        ];
        let touched = vec![a, b];
        for insert_at in 0..=base.len() {
            let mut log = base.clone();
            log.insert(
                insert_at,
                AuditEvent::InAction { label: "A->B".into(), comps: touched.clone() },
            );
            let audit_ok = auditor.audit(&log).is_safe();
            // The detector judges the prefix *before* the in-action.
            let detector_ok = if insert_at == 0 {
                true // nothing open at the origin
            } else {
                is_safe_at(&base, &touched, insert_at - 1)
            };
            assert_eq!(audit_ok, detector_ok, "divergence when inserting in-action at {insert_at}");
        }
    }
}
