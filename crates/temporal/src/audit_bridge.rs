//! Bridges `sada-model` audit-event streams into the temporal detector, so
//! safe states can be identified *automatically* from the same
//! instrumentation the safety auditor consumes — closing the loop the paper
//! proposes in Section 7.

use sada_expr::CompId;
use sada_model::AuditEvent;

use crate::formula::Formula;
use crate::obligations::{ObligationEvent, ResponseSpec, SafeStateMonitor};

/// For each component in `comps`, derives the response obligation "every
/// segment started on this component eventually ends".
pub fn segment_specs(comps: &[CompId]) -> Vec<ResponseSpec> {
    comps
        .iter()
        .map(|c| {
            ResponseSpec::new(
                &format!("segment-c{}", c.index()),
                &format!("seg_start_c{}", c.index()),
                &format!("seg_end_c{}", c.index()),
            )
        })
        .collect()
}

fn to_obligation_events(ev: &AuditEvent, comps: &[CompId]) -> Vec<ObligationEvent> {
    match ev {
        AuditEvent::SegmentStart { cid, comp } if comps.contains(comp) => {
            vec![ObligationEvent::new(&format!("seg_start_c{}", comp.index()), *cid)]
        }
        AuditEvent::SegmentEnd { cid, comp } if comps.contains(comp) => {
            vec![ObligationEvent::new(&format!("seg_end_c{}", comp.index()), *cid)]
        }
        _ => Vec::new(),
    }
}

/// Replays an audit log and returns the indices after which an adaptive
/// action touching `comps` could run safely: positions where every segment
/// obligation on those components is fulfilled.
///
/// This is the paper's automatic safe-state identification: the same
/// temporal criterion the agents implement by hand ("the decoder is not
/// decoding a packet", drained streams) is *derived* from the event stream.
pub fn safe_points(log: &[AuditEvent], comps: &[CompId]) -> Vec<usize> {
    let mut monitor = SafeStateMonitor::new(Formula::Const(true), segment_specs(comps));
    let mut out = Vec::new();
    for (ix, ev) in log.iter().enumerate() {
        let events = to_obligation_events(ev, comps);
        if monitor.step(&events, &|_| false) {
            out.push(ix);
        }
    }
    out
}

/// Convenience verdict: would an in-action on `comps` at position `at`
/// (i.e. after `log[at]` was processed) have been safe?
pub fn is_safe_at(log: &[AuditEvent], comps: &[CompId], at: usize) -> bool {
    safe_points(&log[..=at.min(log.len().saturating_sub(1))], comps)
        .last()
        .is_some_and(|&p| p == at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;
    use sada_model::{AuditEvent, SafetyAuditor};

    fn comp(i: usize) -> CompId {
        CompId::from_index(i)
    }

    fn log_with_gap() -> Vec<AuditEvent> {
        vec![
            AuditEvent::SegmentStart { cid: 1, comp: comp(0) },  // 0: open
            AuditEvent::SegmentEnd { cid: 1, comp: comp(0) },    // 1: closed
            AuditEvent::SegmentStart { cid: 2, comp: comp(0) },  // 2: open
            AuditEvent::SegmentStart { cid: 3, comp: comp(1) },  // 3: both open
            AuditEvent::SegmentEnd { cid: 2, comp: comp(0) },    // 4: only c1 open
            AuditEvent::SegmentEnd { cid: 3, comp: comp(1) },    // 5: closed
        ]
    }

    #[test]
    fn safe_points_match_segment_gaps() {
        let log = log_with_gap();
        assert_eq!(safe_points(&log, &[comp(0)]), vec![1, 4, 5]);
        assert_eq!(safe_points(&log, &[comp(1)]), vec![0, 1, 2, 5]);
        assert_eq!(safe_points(&log, &[comp(0), comp(1)]), vec![1, 5]);
    }

    #[test]
    fn is_safe_at_spot_checks() {
        let log = log_with_gap();
        assert!(is_safe_at(&log, &[comp(0)], 1));
        assert!(!is_safe_at(&log, &[comp(0)], 2));
        assert!(is_safe_at(&log, &[comp(0)], 4));
    }

    /// The detector and the hand-written auditor must agree: inserting an
    /// in-action at a detector-approved point passes the audit; inserting
    /// it anywhere else fails.
    #[test]
    fn detector_agrees_with_safety_auditor() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let auditor = SafetyAuditor::new(sada_expr::InvariantSet::new());
        let base = vec![
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentEnd { cid: 1, comp: a },
            AuditEvent::SegmentStart { cid: 2, comp: a },
            AuditEvent::SegmentEnd { cid: 2, comp: a },
        ];
        let touched = vec![a, b];
        for insert_at in 0..=base.len() {
            let mut log = base.clone();
            log.insert(
                insert_at,
                AuditEvent::InAction { label: "A->B".into(), comps: touched.clone() },
            );
            let audit_ok = auditor.audit(&log).is_safe();
            // The detector judges the prefix *before* the in-action.
            let detector_ok = if insert_at == 0 {
                true // nothing open at the origin
            } else {
                is_safe_at(&base, &touched, insert_at - 1)
            };
            assert_eq!(
                audit_ok, detector_ok,
                "divergence when inserting in-action at {insert_at}"
            );
        }
    }
}
