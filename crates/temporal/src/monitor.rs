//! Incremental ptLTL monitoring: O(|formula|) per step, one bit of state
//! per temporal subformula.

use crate::formula::Formula;

/// Flattened subformula, children referenced by index (children always
/// precede parents — post-order).
#[derive(Debug, Clone)]
enum Node {
    Const(bool),
    Atom(String),
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Implies(usize, usize),
    Yesterday(usize),
    Once(usize),
    Historically(usize),
    Since(usize, usize),
}

/// An incremental evaluator for a ptLTL [`Formula`].
///
/// Feed one state at a time with [`Monitor::step`]; the return value is the
/// formula's truth at that state. The standard recurrences are used:
///
/// * `once φ  ⇐  φ ∨ yesterday(once φ)`
/// * `historically φ ⇐ φ ∧ ¬yesterday(¬historically φ)`
/// * `a since b ⇐ b ∨ (a ∧ yesterday(a since b))`
#[derive(Debug, Clone)]
pub struct Monitor {
    nodes: Vec<Node>,
    /// Truth of each subformula at the previous state.
    prev: Vec<bool>,
    /// True before the first step (origin handling for `yesterday`).
    at_origin: bool,
    steps: u64,
}

impl Monitor {
    /// Compiles `formula` into an incremental monitor.
    pub fn new(formula: Formula) -> Self {
        let mut nodes = Vec::with_capacity(formula.size());
        flatten(&formula, &mut nodes);
        let n = nodes.len();
        Monitor { nodes, prev: vec![false; n], at_origin: true, steps: 0 }
    }

    /// Number of states consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Resets the monitor to the origin.
    pub fn reset(&mut self) {
        self.prev.iter_mut().for_each(|b| *b = false);
        self.at_origin = true;
        self.steps = 0;
    }

    /// Consumes the next state (characterized by the proposition oracle
    /// `holds`) and returns the formula's truth at that state.
    pub fn step(&mut self, holds: &dyn Fn(&str) -> bool) -> bool {
        let mut cur = vec![false; self.nodes.len()];
        for ix in 0..self.nodes.len() {
            cur[ix] = match &self.nodes[ix] {
                Node::Const(b) => *b,
                Node::Atom(p) => holds(p),
                Node::Not(a) => !cur[*a],
                Node::And(a, b) => cur[*a] && cur[*b],
                Node::Or(a, b) => cur[*a] || cur[*b],
                Node::Implies(a, b) => !cur[*a] || cur[*b],
                Node::Yesterday(a) => !self.at_origin && self.prev[*a],
                Node::Once(a) => cur[*a] || (!self.at_origin && self.prev[ix]),
                Node::Historically(a) => cur[*a] && (self.at_origin || self.prev[ix]),
                Node::Since(a, b) => cur[*b] || (cur[*a] && !self.at_origin && self.prev[ix]),
            };
        }
        self.prev = cur;
        self.at_origin = false;
        self.steps += 1;
        *self.prev.last().expect("formula has at least one node")
    }
}

fn flatten(f: &Formula, out: &mut Vec<Node>) -> usize {
    let node = match f {
        Formula::Const(b) => Node::Const(*b),
        Formula::Atom(p) => Node::Atom(p.clone()),
        Formula::Not(x) => Node::Not(flatten(x, out)),
        Formula::And(a, b) => {
            let (a, b) = (flatten(a, out), flatten(b, out));
            Node::And(a, b)
        }
        Formula::Or(a, b) => {
            let (a, b) = (flatten(a, out), flatten(b, out));
            Node::Or(a, b)
        }
        Formula::Implies(a, b) => {
            let (a, b) = (flatten(a, out), flatten(b, out));
            Node::Implies(a, b)
        }
        Formula::Yesterday(x) => Node::Yesterday(flatten(x, out)),
        Formula::Once(x) => Node::Once(flatten(x, out)),
        Formula::Historically(x) => Node::Historically(flatten(x, out)),
        Formula::Since(a, b) => {
            let (a, b) = (flatten(a, out), flatten(b, out));
            Node::Since(a, b)
        }
    };
    out.push(node);
    out.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn run(monitor: &mut Monitor, states: &[&[&str]]) -> Vec<bool> {
        states
            .iter()
            .map(|props| {
                let set: BTreeSet<&str> = props.iter().copied().collect();
                monitor.step(&|p| set.contains(p))
            })
            .collect()
    }

    #[test]
    fn once_latches() {
        let mut m = Monitor::new(Formula::once(Formula::atom("a")));
        assert_eq!(run(&mut m, &[&[], &["a"], &[], &[]]), vec![false, true, true, true]);
    }

    #[test]
    fn historically_breaks_permanently() {
        let mut m = Monitor::new(Formula::historically(Formula::atom("a")));
        assert_eq!(run(&mut m, &[&["a"], &["a"], &[], &["a"]]), vec![true, true, false, false]);
    }

    #[test]
    fn yesterday_shifts_by_one() {
        let mut m = Monitor::new(Formula::yesterday(Formula::atom("a")));
        assert_eq!(run(&mut m, &[&["a"], &[], &["a"], &[]]), vec![false, true, false, true]);
    }

    #[test]
    fn since_resets_on_anchor() {
        let f = Formula::since(Formula::not(Formula::atom("err")), Formula::atom("reset"));
        let mut m = Monitor::new(f);
        let out = run(&mut m, &[&["reset"], &[], &["err"], &[], &["reset"], &[]]);
        assert_eq!(out, vec![true, true, false, false, true, true]);
    }

    #[test]
    fn reset_returns_to_origin() {
        let mut m = Monitor::new(Formula::once(Formula::atom("a")));
        let _ = run(&mut m, &[&["a"]]);
        assert_eq!(m.steps(), 1);
        m.reset();
        assert_eq!(m.steps(), 0);
        assert_eq!(run(&mut m, &[&[]]), vec![false], "latch cleared");
    }

    #[test]
    fn incremental_matches_reference_on_random_traces() {
        use crate::formula::Formula as F;
        // A grab-bag of nested formulas.
        let formulas = vec![
            F::once(F::and(F::atom("a"), F::yesterday(F::atom("b")))),
            F::historically(F::implies(F::atom("a"), F::once(F::atom("b")))),
            F::since(F::or(F::atom("a"), F::atom("b")), F::atom("c")),
            F::yesterday(F::yesterday(F::atom("a"))),
            F::not(F::since(F::not(F::atom("a")), F::atom("b"))),
        ];
        // Deterministic pseudo-random trace over {a, b, c}.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut trace: Vec<BTreeSet<String>> = Vec::new();
        for f in &formulas {
            let mut m = Monitor::new(f.clone());
            trace.clear();
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let mut s = BTreeSet::new();
                if x & 1 != 0 {
                    s.insert("a".to_string());
                }
                if x & 2 != 0 {
                    s.insert("b".to_string());
                }
                if x & 4 != 0 {
                    s.insert("c".to_string());
                }
                trace.push(s);
                let state = trace.last().unwrap().clone();
                let inc = m.step(&|p| state.contains(p));
                let refr = f.eval_trace(&trace);
                assert_eq!(inc, refr, "formula {f} diverged at step {}", trace.len());
            }
        }
    }
}
