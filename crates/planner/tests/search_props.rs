//! Property corpus for the compiled search: over random worlds and random
//! endpoints, the kernel+index hot path must reproduce the tree-walk
//! baseline exactly — identical paths, identical exploration, identical
//! candidate sequences — and the action index must only ever skip actions a
//! linear scan would have rejected.

use proptest::prelude::*;

use sada_expr::{Config, InvariantSet, Universe};
use sada_plan::{Action, ActionIndex, Search};

/// A grouped world: `groups` one_of(Old, New) pairs with flip actions both
/// ways at the given costs, plus one free component with insert/remove
/// actions (exercising the index's required-absence buckets).
#[derive(Debug, Clone)]
struct World {
    universe: Universe,
    inv: InvariantSet,
    actions: Vec<Action>,
}

fn build_world(costs: &[(u64, u64)], free_cost: u64) -> World {
    let groups = costs.len();
    let mut u = Universe::with_capacity(2 * groups + 1);
    let mut srcs = Vec::new();
    for g in 0..groups {
        u.intern(&format!("Old{g}"));
        u.intern(&format!("New{g}"));
        srcs.push(format!("one_of(Old{g}, New{g})"));
    }
    u.intern("Free");
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let inv = InvariantSet::parse(&refs, &mut u).unwrap();
    let mut actions = Vec::new();
    for (g, &(fwd, back)) in costs.iter().enumerate() {
        let old = u.config_of(&[&format!("Old{g}")]);
        let new = u.config_of(&[&format!("New{g}")]);
        actions.push(Action::replace(actions.len() as u32, &format!("fwd{g}"), &old, &new, fwd));
        actions.push(Action::replace(actions.len() as u32, &format!("back{g}"), &new, &old, back));
    }
    let free = u.config_of(&["Free"]);
    actions.push(Action::insert(actions.len() as u32, "+Free", &free, free_cost));
    actions.push(Action::remove(actions.len() as u32, "-Free", &free, free_cost));
    World { universe: u, inv, actions }
}

/// A configuration choosing one member per group plus the free bit.
fn assignment(w: &World, bits: u32, free: bool) -> Config {
    let groups = (w.universe.len() - 1) / 2;
    let mut names = Vec::new();
    for g in 0..groups {
        names.push(if bits & (1 << g) != 0 { format!("New{g}") } else { format!("Old{g}") });
    }
    if free {
        names.push("Free".to_string());
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    w.universe.config_of(&refs)
}

fn arb_world() -> impl Strategy<Value = World> {
    (prop::collection::vec((1u64..10, 1u64..10), 2..5), 1u64..10)
        .prop_map(|(costs, free_cost)| build_world(&costs, free_cost))
}

proptest! {
    #[test]
    fn indexed_kernel_search_equals_linear_tree_walk(
        w in arb_world(),
        src_bits in any::<u32>(),
        dst_bits in any::<u32>(),
        src_free in any::<bool>(),
        dst_free in any::<bool>(),
        astar in any::<bool>(),
    ) {
        let src = assignment(&w, src_bits, src_free);
        let dst = assignment(&w, dst_bits, dst_free);
        let kernel = Search::new(&w.inv, &w.actions, w.universe.len());
        let baseline = Search::tree_walk_baseline(&w.inv, &w.actions, w.universe.len());
        let ((kp, ks), (bp, bs)) = if astar {
            (kernel.plan_astar(&src, &dst), baseline.plan_astar(&src, &dst))
        } else {
            (kernel.plan(&src, &dst), baseline.plan(&src, &dst))
        };
        prop_assert_eq!(kp, bp, "identical plans");
        prop_assert_eq!(ks.expanded, bs.expanded);
        prop_assert_eq!(ks.generated, bs.generated);
        prop_assert_eq!(ks.safety_checks, bs.safety_checks);
        prop_assert!(ks.probed <= bs.probed, "index probes {} vs scan {}", ks.probed, bs.probed);
        prop_assert!(ks.pred_evals <= bs.pred_evals);
    }

    #[test]
    fn probe_is_sorted_dedup_superset_of_applicable(
        w in arb_world(),
        bits in any::<u32>(),
        free in any::<bool>(),
    ) {
        let cfg = assignment(&w, bits, free);
        let index = ActionIndex::new(w.universe.len(), &w.actions);
        let mut probed = Vec::new();
        index.probe(&cfg, &mut probed);
        prop_assert!(probed.windows(2).all(|p| p[0] < p[1]), "sorted, no dups: {:?}", probed);
        for (ix, action) in w.actions.iter().enumerate() {
            if action.applicable(&cfg) {
                prop_assert!(probed.contains(&(ix as u32)), "missing {}", action.name());
            }
        }
        prop_assert!(probed.len() <= w.actions.len());
    }
}
