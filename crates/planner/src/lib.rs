//! # sada-plan — safe adaptation graphs and minimum adaptation paths
//!
//! Implements the **detection and setup phase** of *Enabling Safe Dynamic
//! Component-Based Software Adaptation* (DSN 2004, Section 4.2):
//!
//! 1. **Construct the safe configuration set** — delegated to
//!    [`sada_expr::enumerate`].
//! 2. **Construct the safe adaptation graph (SAG)** — [`Sag::build`]: nodes
//!    are safe configurations, arcs are [`Action`]s whose source and result
//!    are both safe (the paper's Figure 4).
//! 3. **Find the minimum adaptation path (MAP)** — [`Sag::shortest_path`]
//!    (Dijkstra), plus [`Sag::k_shortest_paths`] (Yen) because the failure
//!    handler's recovery ladder needs "the second minimum adaptation path",
//!    and [`lazy::plan`], the partial-SAG-exploration heuristic sketched in
//!    the paper's future work.
//!
//! The paper's Section 7 scalability remedy — decomposing components into
//! independently-adaptable **collaborative sets** — is implemented in
//! [`collab`].
//!
//! ## Example
//!
//! ```
//! use sada_expr::{InvariantSet, Universe, enumerate};
//! use sada_plan::{Action, Sag};
//!
//! let mut u = Universe::new();
//! let inv = InvariantSet::parse(&["one_of(Old, New)"], &mut u).unwrap();
//! let replace = Action::replace(0, "swap", &u.config_of(&["Old"]), &u.config_of(&["New"]), 10);
//! let safe = sada_expr::enumerate::safe_configs(&u, &inv);
//! let sag = Sag::build(safe, &[replace]);
//! let path = sag
//!     .shortest_path(&u.config_of(&["Old"]), &u.config_of(&["New"]))
//!     .expect("a one-step path exists");
//! assert_eq!(path.cost, 10);
//! assert_eq!(path.steps.len(), 1);
//! ```

mod action;
pub mod collab;
mod index;
pub mod lazy;
mod path;
mod sag;
mod yen;

pub use action::{Action, ActionId};
pub use collab::CollabIndex;
pub use index::ActionIndex;
pub use lazy::{LazyStats, Search};
pub use path::{Path, PathStep};
pub use sag::{Edge, Sag};
