//! Collaborative-set decomposition (Section 7).
//!
//! "To handle the complexity, we can divide the adaptive components of a
//! system into multiple collaborative sets where component collaborations
//! occur only within each set. The component adaptation of each set can be
//! handled independently, thereby reducing the complexity."
//!
//! Two components collaborate when they co-occur in a dependency invariant
//! or are touched by the same adaptive action. [`collaborative_sets`]
//! computes the connected components of that relation with a union-find;
//! [`scope_for`] picks the sets an adaptation actually touches so the
//! planner can enumerate over a small scope.

use std::collections::BTreeSet;

use sada_expr::{CompId, Config, InvariantSet, Universe};

use crate::action::Action;

/// Union-find over dense component indices.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Iterative two-pass path compression: find the root, then re-walk the
    /// path pointing every node at it. No recursion, so pathological parent
    /// chains on large component universes cannot blow the stack.
    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Partitions the universe into collaborative sets.
///
/// Components mentioned together in one invariant, or touched together by
/// one action, land in the same set. Components mentioned by nothing form
/// singleton sets. Sets are returned sorted by their smallest member, and
/// members are sorted, so output is deterministic.
pub fn collaborative_sets(
    u: &Universe,
    inv: &InvariantSet,
    actions: &[Action],
) -> Vec<Vec<CompId>> {
    let mut uf = UnionFind::new(u.len());
    for expr in inv.exprs() {
        let mut vars = BTreeSet::new();
        expr.collect_vars(&mut vars);
        let mut it = vars.iter();
        if let Some(first) = it.next() {
            for v in it {
                uf.union(first.index(), v.index());
            }
        }
    }
    for action in actions {
        for w in action.touched_ids().windows(2) {
            uf.union(w[0].index(), w[1].index());
        }
    }
    let mut groups: Vec<Vec<CompId>> = vec![Vec::new(); u.len()];
    for id in u.iter() {
        let root = uf.find(id.index());
        groups[root].push(id);
    }
    let mut out: Vec<Vec<CompId>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// The union of collaborative sets touched by moving from `source` to
/// `target`: the components whose membership differs, expanded to full
/// sets. Planning may then restrict enumeration to this scope (components
/// outside it keep their `source` membership).
pub fn scope_for(
    u: &Universe,
    inv: &InvariantSet,
    actions: &[Action],
    source: &Config,
    target: &Config,
) -> Vec<CompId> {
    CollabIndex::new(u, inv, actions).scope_for(source, target)
}

/// The collaborative-set partition, precomputed for repeated scope queries.
///
/// A control plane admitting many adaptation sessions needs the scope of
/// each request; rebuilding the union-find per request is O(universe) every
/// time. The index pays that once and answers each query in time
/// proportional to the scope it returns. It also answers the scheduling
/// question directly: two sessions may run concurrently iff their scopes
/// share no set ([`CollabIndex::set_of`] gives the set id to compare on).
#[derive(Debug, Clone)]
pub struct CollabIndex {
    /// The partition, sorted by smallest member (as [`collaborative_sets`]).
    sets: Vec<Vec<CompId>>,
    /// Dense component index → index into `sets`.
    set_of: Vec<usize>,
}

impl CollabIndex {
    /// Builds the index for the given invariants and action repertoire.
    pub fn new(u: &Universe, inv: &InvariantSet, actions: &[Action]) -> Self {
        let sets = collaborative_sets(u, inv, actions);
        let mut set_of = vec![0; u.len()];
        for (ix, set) in sets.iter().enumerate() {
            for id in set {
                set_of[id.index()] = ix;
            }
        }
        CollabIndex { sets, set_of }
    }

    /// The partition itself, sorted by smallest member.
    pub fn sets(&self) -> &[Vec<CompId>] {
        &self.sets
    }

    /// Index (into [`CollabIndex::sets`]) of the set containing `comp`.
    pub fn set_of(&self, comp: CompId) -> usize {
        self.set_of[comp.index()]
    }

    /// Members of set `ix`, sorted.
    pub fn members(&self, ix: usize) -> &[CompId] {
        &self.sets[ix]
    }

    /// Expands arbitrary components to the union of their full sets
    /// (sorted, deduplicated) — the scope of an adaptation known only by
    /// the components it names.
    pub fn expand(&self, comps: impl IntoIterator<Item = CompId>) -> Vec<CompId> {
        let set_ids: BTreeSet<usize> = comps.into_iter().map(|c| self.set_of(c)).collect();
        set_ids.into_iter().flat_map(|ix| self.sets[ix].iter().copied()).collect()
    }

    /// The scope of a `source → target` adaptation: the changed components
    /// expanded to full sets (equivalent to the free function [`scope_for`]).
    pub fn scope_for(&self, source: &Config, target: &Config) -> Vec<CompId> {
        self.expand(source.difference(target).iter().chain(target.difference(source).iter()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(names: &[&str]) -> Universe {
        let mut u = Universe::new();
        for n in names {
            u.intern(n);
        }
        u
    }

    #[test]
    fn invariants_group_components() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)"], &mut u).unwrap();
        let sets = collaborative_sets(&u, &inv, &[]);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].len(), 2);
        assert_eq!(sets[1].len(), 2);
    }

    #[test]
    fn actions_merge_sets() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)"], &mut u).unwrap();
        // A compound action touching B and C fuses the two sets.
        let action = Action::replace(0, "(B)->(C)", &u.config_of(&["B"]), &u.config_of(&["C"]), 1);
        let sets = collaborative_sets(&u, &inv, &[action]);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 4);
    }

    #[test]
    fn unmentioned_components_are_singletons() {
        let mut u = universe(&["LONER"]);
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let sets = collaborative_sets(&u, &inv, &[]);
        assert_eq!(sets.len(), 2);
        let loner = u.id("LONER").unwrap();
        assert!(sets.iter().any(|s| s == &vec![loner]));
    }

    #[test]
    fn scope_covers_changed_sets_only() {
        let mut u = universe(&[]);
        let inv =
            InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)", "one_of(E, F)"], &mut u).unwrap();
        // Adaptation changes A->B only.
        let src = u.config_of(&["A", "C", "E"]);
        let dst = u.config_of(&["B", "C", "E"]);
        let scope = scope_for(&u, &inv, &[], &src, &dst);
        let names: Vec<&str> = scope.iter().map(|&id| u.name(id)).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn scope_unions_multiple_changed_sets() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)"], &mut u).unwrap();
        let src = u.config_of(&["A", "C"]);
        let dst = u.config_of(&["B", "D"]);
        let scope = scope_for(&u, &inv, &[], &src, &dst);
        assert_eq!(scope.len(), 4);
    }

    #[test]
    fn empty_change_yields_empty_scope() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let cfg = u.config_of(&["A"]);
        assert!(scope_for(&u, &inv, &[], &cfg, &cfg).is_empty());
    }

    #[test]
    fn index_matches_free_functions_and_expands_comps() {
        let mut u = universe(&["LONER"]);
        let inv =
            InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)", "one_of(E, F)"], &mut u).unwrap();
        let ix = CollabIndex::new(&u, &inv, &[]);
        assert_eq!(ix.sets(), collaborative_sets(&u, &inv, &[]).as_slice());
        let src = u.config_of(&["A", "C", "E"]);
        let dst = u.config_of(&["B", "C", "F"]);
        assert_eq!(ix.scope_for(&src, &dst), scope_for(&u, &inv, &[], &src, &dst));
        // Same-set components collapse to one set; distinct sets union.
        let a = u.id("A").unwrap();
        let b = u.id("B").unwrap();
        let c = u.id("C").unwrap();
        assert_eq!(ix.set_of(a), ix.set_of(b));
        assert_ne!(ix.set_of(a), ix.set_of(c));
        assert_eq!(ix.expand([a, b]), vec![a, b]);
        assert_eq!(ix.expand([a, c]).len(), 4);
        assert_eq!(ix.members(ix.set_of(a)), &[a, b]);
        // A singleton expands to itself.
        let loner = u.id("LONER").unwrap();
        assert_eq!(ix.expand([loner]), vec![loner]);
    }

    #[test]
    fn find_compresses_long_chains_without_recursion() {
        // A hand-built worst-case chain: parent[i] = i+1. A recursive find
        // would need 200k stack frames here; the iterative two-pass walk
        // must both reach the root and flatten the whole chain onto it.
        let n = 200_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.parent[i] = i + 1;
        }
        assert_eq!(uf.find(0), n - 1);
        assert!(uf.parent.iter().all(|&p| p == n - 1), "path fully compressed");
    }

    #[test]
    fn union_find_path_compression_smoke() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(2));
        assert_eq!(uf.find(3), uf.find(4));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.find(5), 5);
    }
}
