//! Collaborative-set decomposition (Section 7).
//!
//! "To handle the complexity, we can divide the adaptive components of a
//! system into multiple collaborative sets where component collaborations
//! occur only within each set. The component adaptation of each set can be
//! handled independently, thereby reducing the complexity."
//!
//! Two components collaborate when they co-occur in a dependency invariant
//! or are touched by the same adaptive action. [`collaborative_sets`]
//! computes the connected components of that relation with a union-find;
//! [`scope_for`] picks the sets an adaptation actually touches so the
//! planner can enumerate over a small scope.

use std::collections::BTreeSet;

use sada_expr::{CompId, Config, InvariantSet, Universe};

use crate::action::Action;

/// Union-find over dense component indices.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Partitions the universe into collaborative sets.
///
/// Components mentioned together in one invariant, or touched together by
/// one action, land in the same set. Components mentioned by nothing form
/// singleton sets. Sets are returned sorted by their smallest member, and
/// members are sorted, so output is deterministic.
pub fn collaborative_sets(
    u: &Universe,
    inv: &InvariantSet,
    actions: &[Action],
) -> Vec<Vec<CompId>> {
    let mut uf = UnionFind::new(u.len());
    for expr in inv.exprs() {
        let mut vars = BTreeSet::new();
        expr.collect_vars(&mut vars);
        let mut it = vars.iter();
        if let Some(first) = it.next() {
            for v in it {
                uf.union(first.index(), v.index());
            }
        }
    }
    for action in actions {
        let touched: Vec<CompId> = action.touched().iter().collect();
        for w in touched.windows(2) {
            uf.union(w[0].index(), w[1].index());
        }
    }
    let mut groups: Vec<Vec<CompId>> = vec![Vec::new(); u.len()];
    for id in u.iter() {
        let root = uf.find(id.index());
        groups[root].push(id);
    }
    let mut out: Vec<Vec<CompId>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// The union of collaborative sets touched by moving from `source` to
/// `target`: the components whose membership differs, expanded to full
/// sets. Planning may then restrict enumeration to this scope (components
/// outside it keep their `source` membership).
pub fn scope_for(
    u: &Universe,
    inv: &InvariantSet,
    actions: &[Action],
    source: &Config,
    target: &Config,
) -> Vec<CompId> {
    let sets = collaborative_sets(u, inv, actions);
    let changed: BTreeSet<CompId> =
        source.difference(target).iter().chain(target.difference(source).iter()).collect();
    let mut scope = BTreeSet::new();
    for set in &sets {
        if set.iter().any(|id| changed.contains(id)) {
            scope.extend(set.iter().copied());
        }
    }
    scope.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(names: &[&str]) -> Universe {
        let mut u = Universe::new();
        for n in names {
            u.intern(n);
        }
        u
    }

    #[test]
    fn invariants_group_components() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)"], &mut u).unwrap();
        let sets = collaborative_sets(&u, &inv, &[]);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].len(), 2);
        assert_eq!(sets[1].len(), 2);
    }

    #[test]
    fn actions_merge_sets() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)"], &mut u).unwrap();
        // A compound action touching B and C fuses the two sets.
        let action = Action::replace(0, "(B)->(C)", &u.config_of(&["B"]), &u.config_of(&["C"]), 1);
        let sets = collaborative_sets(&u, &inv, &[action]);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 4);
    }

    #[test]
    fn unmentioned_components_are_singletons() {
        let mut u = universe(&["LONER"]);
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let sets = collaborative_sets(&u, &inv, &[]);
        assert_eq!(sets.len(), 2);
        let loner = u.id("LONER").unwrap();
        assert!(sets.iter().any(|s| s == &vec![loner]));
    }

    #[test]
    fn scope_covers_changed_sets_only() {
        let mut u = universe(&[]);
        let inv =
            InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)", "one_of(E, F)"], &mut u).unwrap();
        // Adaptation changes A->B only.
        let src = u.config_of(&["A", "C", "E"]);
        let dst = u.config_of(&["B", "C", "E"]);
        let scope = scope_for(&u, &inv, &[], &src, &dst);
        let names: Vec<&str> = scope.iter().map(|&id| u.name(id)).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn scope_unions_multiple_changed_sets() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)", "one_of(C, D)"], &mut u).unwrap();
        let src = u.config_of(&["A", "C"]);
        let dst = u.config_of(&["B", "D"]);
        let scope = scope_for(&u, &inv, &[], &src, &dst);
        assert_eq!(scope.len(), 4);
    }

    #[test]
    fn empty_change_yields_empty_scope() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let cfg = u.config_of(&["A"]);
        assert!(scope_for(&u, &inv, &[], &cfg, &cfg).is_empty());
    }

    #[test]
    fn union_find_path_compression_smoke() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(2));
        assert_eq!(uf.find(3), uf.find(4));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.find(5), 5);
    }
}
