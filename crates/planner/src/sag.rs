//! The safe adaptation graph (SAG) and Dijkstra's minimum adaptation path.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use sada_expr::Config;

use crate::action::{Action, ActionId};
use crate::path::{Path, PathStep};

/// A directed SAG arc: applying `action` in configuration `from` yields the
/// safe configuration `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the source configuration in [`Sag::configs`].
    pub from: usize,
    /// Index of the destination configuration in [`Sag::configs`].
    pub to: usize,
    /// The action realizing the transition.
    pub action: ActionId,
    /// The action's cost weight.
    pub cost: u64,
}

/// The safe adaptation graph of Section 3.1: vertices are safe
/// configurations, arcs are adaptation steps realized by available adaptive
/// actions (the paper's Figure 4).
#[derive(Debug, Clone)]
pub struct Sag {
    configs: Vec<Config>,
    index: HashMap<Config, usize>,
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>, // node -> edge indices out of it
}

impl Sag {
    /// Builds the SAG from a safe-configuration set and the available
    /// actions: an arc `(c1, c2)` exists iff both are safe and some action
    /// maps `c1` to `c2` (the paper's two SAG membership conditions).
    ///
    /// Duplicate configurations are ignored; arcs keep the action identity
    /// so paths can report the paper's `A2, A17, …` labels. When several
    /// actions connect the same pair, all arcs are kept (Dijkstra will pick
    /// the cheapest).
    pub fn build(safe_configs: Vec<Config>, actions: &[Action]) -> Self {
        let mut configs = Vec::new();
        let mut index = HashMap::new();
        for cfg in safe_configs {
            if !index.contains_key(&cfg) {
                index.insert(cfg.clone(), configs.len());
                configs.push(cfg);
            }
        }
        let mut edges = Vec::new();
        let mut adj = vec![Vec::new(); configs.len()];
        for (from_ix, cfg) in configs.iter().enumerate() {
            for action in actions {
                if !action.applicable(cfg) {
                    continue;
                }
                let next = action.apply(cfg);
                if let Some(&to_ix) = index.get(&next) {
                    let e =
                        Edge { from: from_ix, to: to_ix, action: action.id(), cost: action.cost() };
                    adj[from_ix].push(edges.len());
                    edges.push(e);
                }
            }
        }
        Sag { configs, index, edges, adj }
    }

    /// The vertex set (safe configurations), in insertion order.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// The arc set.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Index of `cfg` in the vertex set, if it is a safe configuration.
    pub fn index_of(&self, cfg: &Config) -> Option<usize> {
        self.index.get(cfg).copied()
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.configs.len()
    }

    /// Number of arcs.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing arcs of the vertex at `node`.
    pub fn out_edges(&self, node: usize) -> impl Iterator<Item = &Edge> + '_ {
        self.adj[node].iter().map(move |&e| &self.edges[e])
    }

    /// Dijkstra's algorithm: the minimum adaptation path (MAP) from `source`
    /// to `target`, or `None` when either configuration is unsafe or no path
    /// exists. `source == target` yields the empty path.
    pub fn shortest_path(&self, source: &Config, target: &Config) -> Option<Path> {
        self.shortest_path_avoiding(source, target, &HashSet::new(), &HashSet::new())
    }

    /// Dijkstra with exclusions — the primitive Yen's algorithm builds on.
    ///
    /// `banned_nodes` are vertex indices that may not be traversed (source
    /// and target must not be banned); `banned_edges` are edge indices that
    /// may not be used.
    pub fn shortest_path_avoiding(
        &self,
        source: &Config,
        target: &Config,
        banned_nodes: &HashSet<usize>,
        banned_edges: &HashSet<usize>,
    ) -> Option<Path> {
        let src = self.index_of(source)?;
        let dst = self.index_of(target)?;
        if banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
            return None;
        }
        if src == dst {
            return Some(Path::empty());
        }
        let n = self.configs.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<usize>> = vec![None; n]; // edge index used to reach node
        let mut heap = BinaryHeap::new();
        dist[src] = 0;
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((d, node))) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            if node == dst {
                break;
            }
            for &eix in &self.adj[node] {
                if banned_edges.contains(&eix) {
                    continue;
                }
                let e = &self.edges[eix];
                if banned_nodes.contains(&e.to) {
                    continue;
                }
                let nd = d.saturating_add(e.cost);
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = Some(eix);
                    heap.push(Reverse((nd, e.to)));
                }
            }
        }
        if dist[dst] == u64::MAX {
            return None;
        }
        // Reconstruct by walking predecessor edges back from the target.
        let mut steps = Vec::new();
        let mut node = dst;
        while node != src {
            let eix = prev[node].expect("reachable node must have a predecessor");
            let e = &self.edges[eix];
            steps.push(PathStep {
                from: self.configs[e.from].clone(),
                to: self.configs[e.to].clone(),
                action: e.action,
                cost: e.cost,
            });
            node = e.from;
        }
        steps.reverse();
        Some(Path { steps, cost: dist[dst] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::{enumerate, InvariantSet, Universe};

    fn line_universe() -> (Universe, Vec<Action>) {
        // Components A, B, C with exactly-one-of invariant: safe configs are
        // the three singletons; replacements move between them.
        let mut u = Universe::new();
        for n in ["A", "B", "C"] {
            u.intern(n);
        }
        let actions = vec![
            Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 1),
            Action::replace(1, "B->C", &u.config_of(&["B"]), &u.config_of(&["C"]), 1),
            Action::replace(2, "A->C", &u.config_of(&["A"]), &u.config_of(&["C"]), 5),
        ];
        (u, actions)
    }

    fn line_sag() -> (Universe, Sag) {
        let (mut u, actions) = line_universe();
        let inv = InvariantSet::parse(&["one_of(A, B, C)"], &mut u).unwrap();
        let safe = enumerate::safe_configs(&u, &inv);
        let sag = Sag::build(safe, &actions);
        (u, sag)
    }

    #[test]
    fn build_keeps_only_safe_to_safe_arcs() {
        let (_u, sag) = line_sag();
        assert_eq!(sag.node_count(), 3);
        // A->B, B->C, A->C are the only applicable safe transitions.
        assert_eq!(sag.edge_count(), 3);
    }

    #[test]
    fn dijkstra_prefers_two_cheap_hops_over_one_expensive() {
        let (u, sag) = line_sag();
        let p = sag.shortest_path(&u.config_of(&["A"]), &u.config_of(&["C"])).unwrap();
        assert_eq!(p.cost, 2, "A->B->C at cost 2 beats A->C at cost 5");
        assert_eq!(p.len(), 2);
        assert!(p.is_well_formed());
    }

    #[test]
    fn dijkstra_direct_when_cheaper() {
        let (mut u, mut actions) = line_universe();
        actions[2] = Action::replace(2, "A->C", &u.config_of(&["A"]), &u.config_of(&["C"]), 1);
        let inv = InvariantSet::parse(&["one_of(A, B, C)"], &mut u).unwrap();
        let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
        let p = sag.shortest_path(&u.config_of(&["A"]), &u.config_of(&["C"])).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.action_ids(), vec![ActionId(2)]);
    }

    #[test]
    fn same_source_and_target_is_empty_path() {
        let (u, sag) = line_sag();
        let a = u.config_of(&["A"]);
        let p = sag.shortest_path(&a, &a).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn unreachable_target_is_none() {
        let (u, sag) = line_sag();
        // No action produces A from anywhere: C -> A unreachable.
        assert!(sag.shortest_path(&u.config_of(&["C"]), &u.config_of(&["A"])).is_none());
    }

    #[test]
    fn unsafe_endpoint_is_none() {
        let (u, sag) = line_sag();
        let unsafe_cfg = u.config_of(&["A", "B"]);
        assert!(sag.shortest_path(&unsafe_cfg, &u.config_of(&["C"])).is_none());
        assert!(sag.shortest_path(&u.config_of(&["A"]), &unsafe_cfg).is_none());
        assert_eq!(sag.index_of(&unsafe_cfg), None);
    }

    #[test]
    fn banned_edge_forces_detour() {
        let (u, sag) = line_sag();
        // Find the A->B edge index and ban it: only A->C (cost 5) remains.
        let a_ix = sag.index_of(&u.config_of(&["A"])).unwrap();
        let b_ix = sag.index_of(&u.config_of(&["B"])).unwrap();
        let eix = sag.edges().iter().position(|e| e.from == a_ix && e.to == b_ix).unwrap();
        let banned: HashSet<usize> = [eix].into();
        let p = sag
            .shortest_path_avoiding(
                &u.config_of(&["A"]),
                &u.config_of(&["C"]),
                &HashSet::new(),
                &banned,
            )
            .unwrap();
        assert_eq!(p.cost, 5);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn banned_node_forces_detour() {
        let (u, sag) = line_sag();
        let b_ix = sag.index_of(&u.config_of(&["B"])).unwrap();
        let banned: HashSet<usize> = [b_ix].into();
        let p = sag
            .shortest_path_avoiding(
                &u.config_of(&["A"]),
                &u.config_of(&["C"]),
                &banned,
                &HashSet::new(),
            )
            .unwrap();
        assert_eq!(p.cost, 5);
    }

    #[test]
    fn duplicate_safe_configs_are_deduped() {
        let (mut u, actions) = line_universe();
        let inv = InvariantSet::parse(&["one_of(A, B, C)"], &mut u).unwrap();
        let mut safe = enumerate::safe_configs(&u, &inv);
        let dup = safe[0].clone();
        safe.push(dup);
        let sag = Sag::build(safe, &actions);
        assert_eq!(sag.node_count(), 3);
    }

    #[test]
    fn out_edges_matches_adjacency() {
        let (u, sag) = line_sag();
        let a_ix = sag.index_of(&u.config_of(&["A"])).unwrap();
        let outs: Vec<ActionId> = sag.out_edges(a_ix).map(|e| e.action).collect();
        assert_eq!(outs.len(), 2, "A->B and A->C leave A");
    }
}
