//! Yen's algorithm for the k shortest loopless adaptation paths.
//!
//! The paper's failure-handling strategy (Section 4.4) tries "the second
//! minimum adaptation path from the current configuration to the target
//! configuration" after a failed step, then the third, and so on. Yen's
//! algorithm enumerates exactly that ranking.

use std::collections::HashSet;

use sada_expr::Config;

use crate::path::Path;
use crate::sag::Sag;

impl Sag {
    /// Returns up to `k` loopless paths from `source` to `target`, sorted by
    /// ascending cost (ties broken by discovery order). The first element,
    /// when present, equals [`Sag::shortest_path`].
    ///
    /// Returns an empty vector when no path exists or either endpoint is not
    /// a safe configuration.
    pub fn k_shortest_paths(&self, source: &Config, target: &Config, k: usize) -> Vec<Path> {
        let mut found: Vec<Path> = Vec::new();
        if k == 0 {
            return found;
        }
        let first = match self.shortest_path(source, target) {
            Some(p) => p,
            None => return found,
        };
        found.push(first);
        // Candidate pool of potential next-best paths.
        let mut candidates: Vec<Path> = Vec::new();
        while found.len() < k {
            let prev = found.last().unwrap().clone();
            // Each prefix of the previous path spawns a spur search.
            for spur_ix in 0..prev.steps.len() {
                let spur_node_cfg = prev.steps[spur_ix].from.clone();
                let root_steps = &prev.steps[..spur_ix];

                // Ban every edge that any already-found path with the same
                // root prefix uses out of the spur node.
                let mut banned_edges: HashSet<usize> = HashSet::new();
                for p in found.iter().chain(candidates.iter()) {
                    if p.steps.len() > spur_ix
                        && p.steps[..spur_ix] == *root_steps
                        && p.steps[spur_ix].from == spur_node_cfg
                    {
                        let from_ix = self.index_of(&p.steps[spur_ix].from).unwrap();
                        let to_ix = self.index_of(&p.steps[spur_ix].to).unwrap();
                        let action = p.steps[spur_ix].action;
                        for (eix, e) in self.edges().iter().enumerate() {
                            if e.from == from_ix && e.to == to_ix && e.action == action {
                                banned_edges.insert(eix);
                            }
                        }
                    }
                }
                // Ban root-path nodes (except the spur node) for looplessness.
                let mut banned_nodes: HashSet<usize> = HashSet::new();
                for s in root_steps {
                    if let Some(ix) = self.index_of(&s.from) {
                        banned_nodes.insert(ix);
                    }
                }

                let spur = match self.shortest_path_avoiding(
                    &spur_node_cfg,
                    target,
                    &banned_nodes,
                    &banned_edges,
                ) {
                    Some(p) => p,
                    None => continue,
                };
                let mut total_steps = root_steps.to_vec();
                total_steps.extend(spur.steps);
                let cost = total_steps.iter().map(|s| s.cost).sum();
                let candidate = Path { steps: total_steps, cost };
                if !found.contains(&candidate) && !candidates.contains(&candidate) {
                    candidates.push(candidate);
                }
            }
            if candidates.is_empty() {
                break;
            }
            // Pop the cheapest candidate.
            let best_ix =
                candidates.iter().enumerate().min_by_key(|(_, p)| p.cost).map(|(i, _)| i).unwrap();
            found.push(candidates.swap_remove(best_ix));
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use sada_expr::{enumerate, InvariantSet, Universe};

    /// Diamond: S -> {L, R} -> T with distinct costs, plus a direct S -> T.
    fn diamond() -> (Universe, Sag) {
        let mut u = Universe::new();
        for n in ["S", "L", "R", "T"] {
            u.intern(n);
        }
        let actions = vec![
            Action::replace(0, "S->L", &u.config_of(&["S"]), &u.config_of(&["L"]), 1),
            Action::replace(1, "S->R", &u.config_of(&["S"]), &u.config_of(&["R"]), 2),
            Action::replace(2, "L->T", &u.config_of(&["L"]), &u.config_of(&["T"]), 1),
            Action::replace(3, "R->T", &u.config_of(&["R"]), &u.config_of(&["T"]), 2),
            Action::replace(4, "S->T", &u.config_of(&["S"]), &u.config_of(&["T"]), 10),
        ];
        let inv = InvariantSet::parse(&["one_of(S, L, R, T)"], &mut u).unwrap();
        let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
        (u, sag)
    }

    #[test]
    fn ranks_paths_by_cost() {
        let (u, sag) = diamond();
        let s = u.config_of(&["S"]);
        let t = u.config_of(&["T"]);
        let paths = sag.k_shortest_paths(&s, &t, 5);
        assert_eq!(paths.len(), 3);
        let costs: Vec<u64> = paths.iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![2, 4, 10]);
        for p in &paths {
            assert!(p.is_well_formed());
            assert_eq!(p.steps.first().unwrap().from, s);
            assert_eq!(p.steps.last().unwrap().to, t);
        }
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let (u, sag) = diamond();
        let s = u.config_of(&["S"]);
        let t = u.config_of(&["T"]);
        let paths = sag.k_shortest_paths(&s, &t, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], sag.shortest_path(&s, &t).unwrap());
    }

    #[test]
    fn paths_are_distinct_and_loopless() {
        let (u, sag) = diamond();
        let paths = sag.k_shortest_paths(&u.config_of(&["S"]), &u.config_of(&["T"]), 10);
        for (i, p) in paths.iter().enumerate() {
            for q in &paths[i + 1..] {
                assert_ne!(p, q, "paths must be distinct");
            }
            let cfgs = p.configs();
            let mut seen = std::collections::HashSet::new();
            for c in &cfgs {
                assert!(seen.insert(c.clone()), "loop detected in {p}");
            }
        }
    }

    #[test]
    fn k_zero_and_unreachable_are_empty() {
        let (u, sag) = diamond();
        assert!(sag.k_shortest_paths(&u.config_of(&["S"]), &u.config_of(&["T"]), 0).is_empty());
        // T has no outgoing arcs: T -> S unreachable.
        assert!(sag.k_shortest_paths(&u.config_of(&["T"]), &u.config_of(&["S"]), 3).is_empty());
    }

    #[test]
    fn exhausts_when_fewer_than_k_paths_exist() {
        let (u, sag) = diamond();
        let paths = sag.k_shortest_paths(&u.config_of(&["S"]), &u.config_of(&["T"]), 100);
        assert_eq!(paths.len(), 3, "diamond has exactly three loopless paths");
    }
}
