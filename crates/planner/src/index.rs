//! Action indexing for the lazy planner's expansion loop.
//!
//! Expanding a node means asking, for every action, "is it applicable
//! here?" — a linear scan over the whole repertoire per expansion. Most
//! actions fail the very first condition: something they remove is absent.
//! The index buckets each action under one *pivot* component — the first
//! component it removes (the action is applicable only in configurations
//! containing it), or, for pure insertions, the first component it adds
//! (applicable only in configurations *missing* it). Probing a
//! configuration unions the buckets of its present pivots with the buckets
//! of its absent insert-pivots, a provable superset of the applicable
//! actions that skips never-applicable ones without testing them.
//!
//! The probe result is sorted by action index, so iterating it visits
//! actions in exactly the order a linear scan would — planners built on the
//! index reproduce the unindexed search, candidate for candidate
//! (property-tested in this module and relied on by the fleet plan cache).

use sada_expr::{CompId, Config};

use crate::action::Action;

/// Buckets actions by a required-presence or required-absence pivot.
#[derive(Debug, Clone)]
pub struct ActionIndex {
    /// `by_present[c]`: actions whose removes-set contains pivot `c`.
    by_present: Vec<Vec<u32>>,
    /// `by_absent[c]`: pure insertions whose adds-set contains pivot `c`.
    by_absent: Vec<Vec<u32>>,
    /// Components with a non-empty `by_absent` bucket, so probing skips the
    /// width-sized scan when insertions are rare (the common case).
    absent_pivots: Vec<CompId>,
    /// Actions with no removes and no adds: applicable everywhere.
    always: Vec<u32>,
    width: usize,
}

impl ActionIndex {
    /// Indexes `actions` over configurations of width `width`.
    pub fn new(width: usize, actions: &[Action]) -> Self {
        let mut by_present = vec![Vec::new(); width];
        let mut by_absent = vec![Vec::new(); width];
        let mut always = Vec::new();
        for (ix, action) in actions.iter().enumerate() {
            if let Some(pivot) = action.removes().first() {
                by_present[pivot.index()].push(ix as u32);
            } else if let Some(pivot) = action.adds().first() {
                by_absent[pivot.index()].push(ix as u32);
            } else {
                always.push(ix as u32);
            }
        }
        let absent_pivots = (0..width)
            .map(CompId::from_index)
            .filter(|c| !by_absent[c.index()].is_empty())
            .collect();
        ActionIndex { by_present, by_absent, absent_pivots, always, width }
    }

    /// The configuration width the index was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Fills `out` with the indices of plausibly-applicable actions for
    /// `cfg`: a superset of the truly applicable ones, without duplicates,
    /// sorted ascending (linear-scan order).
    pub fn probe(&self, cfg: &Config, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.always);
        for c in cfg.iter() {
            out.extend_from_slice(&self.by_present[c.index()]);
        }
        for &c in &self.absent_pivots {
            if !cfg.contains(c) {
                out.extend_from_slice(&self.by_absent[c.index()]);
            }
        }
        // Each action lives in exactly one bucket, so no dedup is needed;
        // sorting restores the repertoire's scan order.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;

    fn world() -> (Universe, Vec<Action>) {
        let mut u = Universe::new();
        for n in ["A", "B", "C", "D"] {
            u.intern(n);
        }
        let actions = vec![
            Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 1),
            Action::replace(1, "B->A", &u.config_of(&["B"]), &u.config_of(&["A"]), 1),
            Action::insert(2, "+C", &u.config_of(&["C"]), 1),
            Action::remove(3, "-D", &u.config_of(&["D"]), 1),
            Action::new(4, "noop", &u.empty_config(), &u.empty_config(), 1),
        ];
        (u, actions)
    }

    fn probe_of(u: &Universe, actions: &[Action], names: &[&str]) -> Vec<u32> {
        let ix = ActionIndex::new(u.len(), actions);
        let mut out = Vec::new();
        ix.probe(&u.config_of(names), &mut out);
        out
    }

    #[test]
    fn probe_is_a_sorted_superset_of_applicable() {
        let (u, actions) = world();
        for names in [&[][..], &["A"][..], &["B", "D"][..], &["A", "C", "D"][..]] {
            let cfg = u.config_of(names);
            let probed = probe_of(&u, &actions, names);
            assert!(probed.windows(2).all(|w| w[0] < w[1]), "sorted, no dups: {probed:?}");
            for (ix, a) in actions.iter().enumerate() {
                if a.applicable(&cfg) {
                    assert!(probed.contains(&(ix as u32)), "{} missing on {cfg}", a.name());
                }
            }
        }
    }

    #[test]
    fn probe_skips_never_applicable_actions() {
        let (u, actions) = world();
        // With nothing present, only the insert and the noop can apply.
        assert_eq!(probe_of(&u, &actions, &[]), vec![2, 4]);
        // With everything present the insert's pivot is already there.
        assert_eq!(probe_of(&u, &actions, &["A", "B", "C", "D"]), vec![0, 1, 3, 4]);
    }
}
