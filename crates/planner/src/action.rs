//! Adaptive actions: insert, remove, replace, and their compositions.

use std::fmt;

use sada_expr::{CompId, Config};

/// Identifies an adaptive action within an adaptation specification.
///
/// The case study numbers its actions `A1..A17` (Table 2); ids are the
/// zero-based positions in the action list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

impl ActionId {
    /// Zero-based index into the action table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper labels actions starting from A1.
        write!(f, "A{}", self.0 + 1)
    }
}

/// An adaptive action (Section 3.1): a partial function from configuration
/// to configuration that removes one component set and adds another, at a
/// fixed cost.
///
/// The paper's cost model folds blocking time, adaptation duration, packet
/// delay and resource use into one scalar per action (Table 2's "Cost (ms)"
/// column); we keep that scalar as an opaque `u64` weight.
///
/// The removed/added sets are stored as sorted id lists, not width-wide
/// bitsets: an action touches a handful of components regardless of how
/// many the world declares, so a 200k-action repertoire over a 200k-wide
/// universe stays megabytes instead of gigabytes, and `applicable`/`apply`
/// cost O(touched) instead of O(width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    id: ActionId,
    name: String,
    removes: Vec<CompId>,
    adds: Vec<CompId>,
    cost: u64,
}

impl Action {
    /// Builds an action that removes `removes` and adds `adds`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets overlap (a component cannot be both removed
    /// and added by one atomic action) or their widths differ.
    pub fn new(id: u32, name: &str, removes: &Config, adds: &Config, cost: u64) -> Self {
        assert!(removes.is_disjoint(adds), "action {name}: removes and adds overlap");
        Action {
            id: ActionId(id),
            name: name.to_string(),
            removes: removes.iter().collect(),
            adds: adds.iter().collect(),
            cost,
        }
    }

    /// Builds an action directly from component id lists (sorted for the
    /// caller), skipping the width-wide `Config` round trip.
    ///
    /// # Panics
    ///
    /// Panics if the two sets overlap after sorting/deduplication.
    pub fn from_ids(
        id: u32,
        name: &str,
        mut removes: Vec<CompId>,
        mut adds: Vec<CompId>,
        cost: u64,
    ) -> Self {
        removes.sort_unstable();
        removes.dedup();
        adds.sort_unstable();
        adds.dedup();
        assert!(sorted_disjoint(&removes, &adds), "action {name}: removes and adds overlap");
        Action { id: ActionId(id), name: name.to_string(), removes, adds, cost }
    }

    /// An insertion (`+C`): adds components, removes nothing.
    pub fn insert(id: u32, name: &str, adds: &Config, cost: u64) -> Self {
        Action::from_ids(id, name, Vec::new(), adds.iter().collect(), cost)
    }

    /// A removal (`-C`): removes components, adds nothing.
    pub fn remove(id: u32, name: &str, removes: &Config, cost: u64) -> Self {
        Action::from_ids(id, name, removes.iter().collect(), Vec::new(), cost)
    }

    /// A replacement (`Old -> New`).
    pub fn replace(id: u32, name: &str, removes: &Config, adds: &Config, cost: u64) -> Self {
        Action::new(id, name, removes, adds, cost)
    }

    /// The action's id.
    pub fn id(&self) -> ActionId {
        self.id
    }

    /// Human-readable label, e.g. `"D1 -> D2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Components this action removes, ascending.
    pub fn removes(&self) -> &[CompId] {
        &self.removes
    }

    /// Components this action adds, ascending.
    pub fn adds(&self) -> &[CompId] {
        &self.adds
    }

    /// The fixed cost weight.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Every component the action touches (removed or added), ascending —
    /// the set whose hosting processes must participate in the adaptation
    /// step.
    pub fn touched_ids(&self) -> Vec<CompId> {
        let mut out = Vec::with_capacity(self.removes.len() + self.adds.len());
        let (mut i, mut j) = (0, 0);
        while i < self.removes.len() && j < self.adds.len() {
            if self.removes[i] < self.adds[j] {
                out.push(self.removes[i]);
                i += 1;
            } else {
                out.push(self.adds[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&self.removes[i..]);
        out.extend_from_slice(&self.adds[j..]);
        out
    }

    /// Number of distinct components the action touches.
    pub fn touched_len(&self) -> usize {
        // Disjointness is a construction invariant, so the union size is
        // just the sum.
        self.removes.len() + self.adds.len()
    }

    /// The touched set as a width-wide `Config` (for participant-process
    /// queries and tests that want set algebra).
    pub fn touched_config(&self, width: usize) -> Config {
        let mut cfg = Config::empty(width);
        for &c in self.removes.iter().chain(self.adds.iter()) {
            cfg.insert(c);
        }
        cfg
    }

    /// True when every component the action touches lies inside `scope`.
    pub fn touches_only(&self, scope: &Config) -> bool {
        self.removes.iter().chain(self.adds.iter()).all(|&c| scope.contains(c))
    }

    /// An action applies to `cfg` when everything it removes is present and
    /// everything it adds is absent.
    pub fn applicable(&self, cfg: &Config) -> bool {
        self.removes.iter().all(|&c| cfg.contains(c)) && self.adds.iter().all(|&c| !cfg.contains(c))
    }

    /// `adapt(config1) = config2` (Section 3.1).
    ///
    /// # Panics
    ///
    /// Panics if the action is not applicable — callers are expected to
    /// check [`Action::applicable`] (the SAG builder and planners do).
    pub fn apply(&self, cfg: &Config) -> Config {
        assert!(self.applicable(cfg), "action {} not applicable to {cfg}", self.name);
        let mut next = cfg.clone();
        for &c in &self.removes {
            next.remove(c);
        }
        for &c in &self.adds {
            next.insert(c);
        }
        next
    }

    /// The inverse action, used by the realization phase's rollback: undoes
    /// this action's effect at the same cost.
    pub fn inverse(&self) -> Action {
        Action {
            id: self.id,
            name: format!("undo({})", self.name),
            removes: self.adds.clone(),
            adds: self.removes.clone(),
            cost: self.cost,
        }
    }
}

fn sorted_disjoint(a: &[CompId], b: &[CompId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (cost {})", self.id, self.name, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;

    fn u() -> Universe {
        let mut u = Universe::new();
        for n in ["E1", "E2", "D1", "D2"] {
            u.intern(n);
        }
        u
    }

    #[test]
    fn replace_applies_and_round_trips() {
        let u = u();
        let a = Action::replace(0, "E1 -> E2", &u.config_of(&["E1"]), &u.config_of(&["E2"]), 10);
        let before = u.config_of(&["E1", "D1"]);
        assert!(a.applicable(&before));
        let after = a.apply(&before);
        assert_eq!(after, u.config_of(&["E2", "D1"]));
        assert_eq!(a.inverse().apply(&after), before);
        assert_eq!(a.inverse().cost(), 10);
    }

    #[test]
    fn insert_requires_absence() {
        let u = u();
        let a = Action::insert(0, "+D2", &u.config_of(&["D2"]), 5);
        assert!(a.applicable(&u.config_of(&["E1"])));
        assert!(!a.applicable(&u.config_of(&["D2"])), "already present");
        assert_eq!(a.apply(&u.empty_config()), u.config_of(&["D2"]));
    }

    #[test]
    fn remove_requires_presence() {
        let u = u();
        let a = Action::remove(0, "-D1", &u.config_of(&["D1"]), 5);
        assert!(!a.applicable(&u.empty_config()));
        assert_eq!(a.apply(&u.config_of(&["D1", "E1"])), u.config_of(&["E1"]));
    }

    #[test]
    fn compound_action_touches_union() {
        let u = u();
        let a = Action::replace(
            0,
            "(D1,E1)->(D2,E2)",
            &u.config_of(&["D1", "E1"]),
            &u.config_of(&["D2", "E2"]),
            100,
        );
        assert_eq!(a.touched_config(u.len()), u.config_of(&["D1", "E1", "D2", "E2"]));
        assert_eq!(a.touched_len(), 4);
        let ids = a.touched_ids();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "touched ids ascend");
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn from_ids_sorts_and_matches_config_construction() {
        let u = u();
        let via_cfg = Action::replace(3, "swap", &u.config_of(&["E1"]), &u.config_of(&["E2"]), 7);
        let e1 = u.id("E1").unwrap();
        let e2 = u.id("E2").unwrap();
        let via_ids = Action::from_ids(3, "swap", vec![e1], vec![e2], 7);
        assert_eq!(via_cfg, via_ids);
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn apply_checks_applicability() {
        let u = u();
        let a = Action::replace(0, "E1 -> E2", &u.config_of(&["E1"]), &u.config_of(&["E2"]), 10);
        let _ = a.apply(&u.config_of(&["E2"]));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_sets_rejected() {
        let u = u();
        let _ = Action::new(0, "bad", &u.config_of(&["E1"]), &u.config_of(&["E1"]), 1);
    }

    #[test]
    fn display_uses_paper_numbering() {
        let u = u();
        let a = Action::insert(1, "+D2", &u.config_of(&["D2"]), 5);
        assert_eq!(a.id().to_string(), "A2");
        assert!(a.to_string().contains("+D2"));
    }
}
