//! Adaptive actions: insert, remove, replace, and their compositions.

use std::fmt;

use sada_expr::Config;

/// Identifies an adaptive action within an adaptation specification.
///
/// The case study numbers its actions `A1..A17` (Table 2); ids are the
/// zero-based positions in the action list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

impl ActionId {
    /// Zero-based index into the action table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper labels actions starting from A1.
        write!(f, "A{}", self.0 + 1)
    }
}

/// An adaptive action (Section 3.1): a partial function from configuration
/// to configuration that removes one component set and adds another, at a
/// fixed cost.
///
/// The paper's cost model folds blocking time, adaptation duration, packet
/// delay and resource use into one scalar per action (Table 2's "Cost (ms)"
/// column); we keep that scalar as an opaque `u64` weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    id: ActionId,
    name: String,
    removes: Config,
    adds: Config,
    cost: u64,
}

impl Action {
    /// Builds an action that removes `removes` and adds `adds`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets overlap (a component cannot be both removed
    /// and added by one atomic action) or their widths differ.
    pub fn new(id: u32, name: &str, removes: &Config, adds: &Config, cost: u64) -> Self {
        assert!(removes.is_disjoint(adds), "action {name}: removes and adds overlap");
        Action {
            id: ActionId(id),
            name: name.to_string(),
            removes: removes.clone(),
            adds: adds.clone(),
            cost,
        }
    }

    /// An insertion (`+C`): adds components, removes nothing.
    pub fn insert(id: u32, name: &str, adds: &Config, cost: u64) -> Self {
        Action::new(id, name, &Config::empty(adds.width()), adds, cost)
    }

    /// A removal (`-C`): removes components, adds nothing.
    pub fn remove(id: u32, name: &str, removes: &Config, cost: u64) -> Self {
        Action::new(id, name, removes, &Config::empty(removes.width()), cost)
    }

    /// A replacement (`Old -> New`).
    pub fn replace(id: u32, name: &str, removes: &Config, adds: &Config, cost: u64) -> Self {
        Action::new(id, name, removes, adds, cost)
    }

    /// The action's id.
    pub fn id(&self) -> ActionId {
        self.id
    }

    /// Human-readable label, e.g. `"D1 -> D2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Components this action removes.
    pub fn removes(&self) -> &Config {
        &self.removes
    }

    /// Components this action adds.
    pub fn adds(&self) -> &Config {
        &self.adds
    }

    /// The fixed cost weight.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Every component the action touches (removed or added) — the set whose
    /// hosting processes must participate in the adaptation step.
    pub fn touched(&self) -> Config {
        self.removes.union(&self.adds)
    }

    /// An action applies to `cfg` when everything it removes is present and
    /// everything it adds is absent.
    pub fn applicable(&self, cfg: &Config) -> bool {
        self.removes.is_subset(cfg) && self.adds.is_disjoint(cfg)
    }

    /// `adapt(config1) = config2` (Section 3.1).
    ///
    /// # Panics
    ///
    /// Panics if the action is not applicable — callers are expected to
    /// check [`Action::applicable`] (the SAG builder and planners do).
    pub fn apply(&self, cfg: &Config) -> Config {
        assert!(self.applicable(cfg), "action {} not applicable to {cfg}", self.name);
        cfg.difference(&self.removes).union(&self.adds)
    }

    /// The inverse action, used by the realization phase's rollback: undoes
    /// this action's effect at the same cost.
    pub fn inverse(&self) -> Action {
        Action {
            id: self.id,
            name: format!("undo({})", self.name),
            removes: self.adds.clone(),
            adds: self.removes.clone(),
            cost: self.cost,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (cost {})", self.id, self.name, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;

    fn u() -> Universe {
        let mut u = Universe::new();
        for n in ["E1", "E2", "D1", "D2"] {
            u.intern(n);
        }
        u
    }

    #[test]
    fn replace_applies_and_round_trips() {
        let u = u();
        let a = Action::replace(0, "E1 -> E2", &u.config_of(&["E1"]), &u.config_of(&["E2"]), 10);
        let before = u.config_of(&["E1", "D1"]);
        assert!(a.applicable(&before));
        let after = a.apply(&before);
        assert_eq!(after, u.config_of(&["E2", "D1"]));
        assert_eq!(a.inverse().apply(&after), before);
        assert_eq!(a.inverse().cost(), 10);
    }

    #[test]
    fn insert_requires_absence() {
        let u = u();
        let a = Action::insert(0, "+D2", &u.config_of(&["D2"]), 5);
        assert!(a.applicable(&u.config_of(&["E1"])));
        assert!(!a.applicable(&u.config_of(&["D2"])), "already present");
        assert_eq!(a.apply(&u.empty_config()), u.config_of(&["D2"]));
    }

    #[test]
    fn remove_requires_presence() {
        let u = u();
        let a = Action::remove(0, "-D1", &u.config_of(&["D1"]), 5);
        assert!(!a.applicable(&u.empty_config()));
        assert_eq!(a.apply(&u.config_of(&["D1", "E1"])), u.config_of(&["E1"]));
    }

    #[test]
    fn compound_action_touches_union() {
        let u = u();
        let a = Action::replace(
            0,
            "(D1,E1)->(D2,E2)",
            &u.config_of(&["D1", "E1"]),
            &u.config_of(&["D2", "E2"]),
            100,
        );
        assert_eq!(a.touched(), u.config_of(&["D1", "E1", "D2", "E2"]));
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn apply_checks_applicability() {
        let u = u();
        let a = Action::replace(0, "E1 -> E2", &u.config_of(&["E1"]), &u.config_of(&["E2"]), 10);
        let _ = a.apply(&u.config_of(&["E2"]));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_sets_rejected() {
        let u = u();
        let _ = Action::new(0, "bad", &u.config_of(&["E1"]), &u.config_of(&["E1"]), 1);
    }

    #[test]
    fn display_uses_paper_numbering() {
        let u = u();
        let a = Action::insert(1, "+D2", &u.config_of(&["D2"]), 5);
        assert_eq!(a.id().to_string(), "A2");
        assert!(a.to_string().contains("+D2"));
    }
}
