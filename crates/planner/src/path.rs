//! Safe adaptation paths.

use std::fmt;

use sada_expr::Config;

use crate::action::ActionId;

/// One adaptation step: an ordered configuration pair plus the action that
/// realizes the transition (Section 3.1's `step = (config1, config2)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The configuration before the step.
    pub from: Config,
    /// The configuration after the step.
    pub to: Config,
    /// The adaptive action applied.
    pub action: ActionId,
    /// The action's cost weight.
    pub cost: u64,
}

/// A safe adaptation path: a sequence of adaptation steps through safe
/// configurations, from a source configuration to a target configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The steps, in execution order. Empty when source == target.
    pub steps: Vec<PathStep>,
    /// Sum of step costs.
    pub cost: u64,
}

impl Path {
    /// The empty path (source already equals target).
    pub fn empty() -> Self {
        Path { steps: Vec::new(), cost: 0 }
    }

    /// Number of adaptation steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the zero-step path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The action ids along the path, e.g. `[A2, A17, A1, A16, A4]`.
    pub fn action_ids(&self) -> Vec<ActionId> {
        self.steps.iter().map(|s| s.action).collect()
    }

    /// Checks internal consistency: each step starts where the previous one
    /// ended and the total cost matches.
    pub fn is_well_formed(&self) -> bool {
        self.steps.windows(2).all(|w| w[0].to == w[1].from)
            && self.cost == self.steps.iter().map(|s| s.cost).sum::<u64>()
    }

    /// The configurations visited, source first (empty for the empty path).
    pub fn configs(&self) -> Vec<Config> {
        let mut out = Vec::with_capacity(self.steps.len() + 1);
        if let Some(first) = self.steps.first() {
            out.push(first.from.clone());
        }
        for s in &self.steps {
            out.push(s.to.clone());
        }
        out
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<String> = self.steps.iter().map(|s| s.action.to_string()).collect();
        write!(f, "[{}] cost={}", labels.join(", "), self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(width: usize, bits: &[usize]) -> Config {
        let mut c = Config::empty(width);
        for &b in bits {
            c.insert(sada_expr::CompId::from_index(b));
        }
        c
    }

    #[test]
    fn empty_path_properties() {
        let p = Path::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.cost, 0);
        assert!(p.is_well_formed());
        assert!(p.configs().is_empty());
    }

    #[test]
    fn well_formedness_checks_chaining_and_cost() {
        let a = cfg(3, &[0]);
        let b = cfg(3, &[1]);
        let c = cfg(3, &[2]);
        let good = Path {
            steps: vec![
                PathStep { from: a.clone(), to: b.clone(), action: ActionId(0), cost: 5 },
                PathStep { from: b.clone(), to: c.clone(), action: ActionId(1), cost: 7 },
            ],
            cost: 12,
        };
        assert!(good.is_well_formed());
        assert_eq!(good.configs(), vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(good.action_ids(), vec![ActionId(0), ActionId(1)]);

        let broken_chain = Path {
            steps: vec![
                PathStep { from: a.clone(), to: b.clone(), action: ActionId(0), cost: 5 },
                PathStep { from: a.clone(), to: c, action: ActionId(1), cost: 7 },
            ],
            cost: 12,
        };
        assert!(!broken_chain.is_well_formed());

        let bad_cost = Path {
            steps: vec![PathStep { from: a, to: b, action: ActionId(0), cost: 5 }],
            cost: 6,
        };
        assert!(!bad_cost.is_well_formed());
    }

    #[test]
    fn display_matches_paper_style() {
        let a = cfg(2, &[0]);
        let b = cfg(2, &[1]);
        let p = Path {
            steps: vec![PathStep { from: a, to: b, action: ActionId(1), cost: 10 }],
            cost: 10,
        };
        assert_eq!(p.to_string(), "[A2] cost=10");
    }
}
