#!/usr/bin/env bash
# Repository CI gate: build, tier-1 tests, full workspace tests,
# lint-clean clippy, and the pinned fault-injection regressions.
#
# Everything here is deterministic (fixed seeds throughout), so a red run
# is always reproducible locally with the same commands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> rustfmt (check only)"
cargo fmt --check

echo "==> build (release)"
cargo build --release

echo "==> tier-1 tests (root package: safety properties + chaos sweep)"
cargo test -q

echo "==> full workspace tests"
cargo test -q --workspace

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> pinned chaos seeds (regression corpus + reproducibility)"
# The sweep covers SADA_CHAOS_SEEDS random fault plans per intensity
# (default 50) with the manager itself among the crash victims, and
# replays every manager-journal prefix of every run. CI keeps the default
# subset; set SADA_FULL_CHAOS=1 for the 250-seed soak before releases.
if [ "${SADA_FULL_CHAOS:-0}" != "0" ]; then
    SADA_CHAOS_SEEDS="${SADA_CHAOS_SEEDS:-250}" cargo test -q --test chaos_sweep
else
    cargo test -q --test chaos_sweep
fi

echo "==> observability timeline smoke (video case study + chaos seed replay)"
cargo run -q --release -p sada-bench --bin report -- timeline > /dev/null
cargo run -q --release -p sada-bench --bin report -- timeline 3 > /dev/null

echo "==> fleet control-plane smoke (100 groups, concurrent sessions + crash/restore leg)"
cargo run -q --release -p sada-bench --bin report -- fleet > /dev/null

echo "==> planner hot-path smoke (sweep + pinned safety-check budget, no timing loops)"
# Runs the 16/24/32-component sweep and its embedded assertions: compiled
# kernels >= 5x fewer predicate evaluations at 24 components, and the
# 16-component safety-check count within the budget pinned in
# crates/bench/benches/bench_planning.rs. Fails the gate on regression.
SADA_BENCH_SMOKE=1 cargo bench -q -p sada-bench --bench bench_planning > /dev/null

echo "==> overload-protection smoke (admission control vs always-admit baseline)"
# Renders the overload comparison table, then runs the pinned robustness
# asserts from crates/bench/benches/bench_overload.rs: protected goodput
# >= 80% of calibrated capacity at 4x Poisson arrivals with bounded p99
# admission wait, baseline collapse, breaker trips, bulkhead shedding, and
# fingerprint-identical replays. Regenerates BENCH_overload.json.
cargo run -q --release -p sada-bench --bin report -- overload > /dev/null
SADA_BENCH_SMOKE=1 cargo bench -q -p sada-bench --bench bench_overload > /dev/null

echo "==> sharded control-plane smoke (2-shard determinism + scaling sweep)"
# Renders the per-shard table (includes a 1-thread vs 4-thread fingerprint
# comparison over a straddler-bearing workload and a fabric-chaos leg with
# fault/retransmission counters), then runs the pinned asserts from
# crates/bench/benches/bench_shard.rs: identical final configurations and
# event-stream fingerprints at 1/2/4/8 worker threads, zero fabric traffic
# for the local storm, lossy straddler outcomes identical to lossless, and
# — on hosts with >= 4 cores — the >= 3x sessions/sec speedup at 4
# threads. Regenerates BENCH_shard.json (incl. the fabric_chaos leg).
cargo run -q --release -p sada-bench --bin report -- shard > /dev/null
SADA_BENCH_SMOKE=1 cargo bench -q -p sada-bench --bench bench_shard > /dev/null

echo "==> scenario-generator smoke (seeded serverless + IaaS universes end-to-end)"
# Generates one universe per domain and seed (serverless, IaaS, IaaS with
# the energy objective), runs each through the sharded control plane at 1
# and 4 worker threads with a fingerprint-identity assert, and prints the
# energy-objective showcase (watt route != ms route). Then the bench's
# smoke mode re-runs the full assertion sweep — every session concludes,
# thread-invariance at 1/2/4 threads per (domain, seed), goal
# reachability for every generated cluster — and regenerates
# BENCH_scenario.json (3 seeds per domain, sessions/sec + plan-cache hit
# rate + standalone planning pred-evals).
cargo run -q --release -p sada-bench --bin report -- scenario > /dev/null
SADA_BENCH_SMOKE=1 cargo bench -q -p sada-bench --bench bench_scenario > /dev/null

echo "==> fabric-chaos sweep (lossy fabric + global-tier crash + region crash)"
# 20 seeded fault universes over a straddler-bearing fleet with the global
# tier AND one region crashing mid-handshake: bit-for-bit identity at
# 1/2/4/8 worker threads (fingerprints, journals, the global WAL, results),
# lossy outcomes identical to the lossless twin, duplicate-delivery
# idempotence, ladder-exhaustion abandonment with a journaled verdict, and
# the fabric-codec round-trip property. Set SADA_FULL_CHAOS=1 for the
# 60-seed soak, or SADA_CHAOS_SEEDS=N to pin the sweep width.
cargo test -q -p sada-fleet --test fabric_chaos

echo "CI OK"
