#!/usr/bin/env bash
# Repository CI gate: build, tier-1 tests, full workspace tests,
# lint-clean clippy, and the pinned fault-injection regressions.
#
# Everything here is deterministic (fixed seeds throughout), so a red run
# is always reproducible locally with the same commands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> rustfmt (check only)"
cargo fmt --check

echo "==> build (release)"
cargo build --release

echo "==> tier-1 tests (root package: safety properties + chaos sweep)"
cargo test -q

echo "==> full workspace tests"
cargo test -q --workspace

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> pinned chaos seeds (regression corpus + reproducibility)"
cargo test -q --test chaos_sweep

echo "==> observability timeline smoke (video case study + chaos seed replay)"
cargo run -q --release -p sada-bench --bin report -- timeline > /dev/null
cargo run -q --release -p sada-bench --bin report -- timeline 3 > /dev/null

echo "CI OK"
