//! Cross-crate integration: the full video case study driven by the safe
//! adaptation protocol, audited by the independent safety checker.

use std::collections::HashSet;

use sada_core::casestudy::{case_study, CaseStudy};
use sada_core::AdaptationSpec;
use sada_expr::{InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{Action, ActionId};
use sada_simnet::{LinkConfig, SimDuration, SimTime};
use sada_video::{run_video_scenario, run_video_with, ScenarioConfig, Strategy};

#[test]
fn headline_result_map_and_live_run() {
    let cs = case_study();
    let map = cs.spec.minimum_adaptation_path(&cs.source, &cs.target).unwrap();
    let labels: Vec<String> = map.action_ids().iter().map(|a| a.to_string()).collect();
    assert_eq!(labels, vec!["A2", "A17", "A1", "A16", "A4"]);
    assert_eq!(map.cost, 50);

    let report = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
    let outcome = report.outcome.clone().expect("resolved");
    assert!(outcome.success);
    assert_eq!(outcome.steps_committed, 5);
    assert_eq!(report.corrupted_packets(), 0);
    assert!(report.audit.is_safe(), "{:?}", report.audit.violations.first());
}

/// Restrict Table 2 to the single compound action A14 so the adaptation
/// must use the drain-marked global safe condition across all three
/// processes.
fn compound_only_case_study() -> CaseStudy {
    let full = case_study();
    let mut u = Universe::new();
    for name in ["E1", "E2", "D1", "D2", "D3", "D4", "D5"] {
        u.intern(name);
    }
    let invariants = InvariantSet::parse(
        &["one_of(D1, D2, D3)", "one_of(E1, E2)", "E1 => (D1 | D2) & D4", "E2 => (D3 | D2) & D5"],
        &mut u,
    )
    .unwrap();
    // A14 in the paper's table; re-numbered as the only action here.
    let actions = vec![Action::replace(
        0,
        "(D1,D4,E1) -> (D3,D5,E2)",
        &u.config_of(&["D1", "D4", "E1"]),
        &u.config_of(&["D3", "D5", "E2"]),
        150,
    )];
    let mut model = SystemModel::new();
    let server = model.add_process("video-server");
    let handheld = model.add_process("handheld-client");
    let laptop = model.add_process("laptop-client");
    model.place_all(
        &u,
        &[
            ("E1", server),
            ("E2", server),
            ("D1", handheld),
            ("D2", handheld),
            ("D3", handheld),
            ("D4", laptop),
            ("D5", laptop),
        ],
    );
    let drain: HashSet<ActionId> = [ActionId(0)].into();
    let source = u.config_from_bits("0100101");
    let target = u.config_from_bits("1010010");
    let spec = AdaptationSpec::new(u, invariants, actions, model, vec![0, 1, 2], drain);
    CaseStudy { spec, deployment: full.deployment, source, target }
}

#[test]
fn compound_action_with_drain_marks_is_safe() {
    let cs = compound_only_case_study();
    // Sanity: the only plan is the single three-process step.
    let map = cs.spec.minimum_adaptation_path(&cs.source, &cs.target).unwrap();
    assert_eq!(map.steps.len(), 1);
    assert_eq!(map.cost, 150);

    let report = run_video_with(&ScenarioConfig::default(), Strategy::Safe, &cs);
    let outcome = report.outcome.clone().expect("resolved");
    assert!(outcome.success, "compound adaptation must succeed");
    assert_eq!(outcome.steps_committed, 1);
    assert_eq!(report.corrupted_packets(), 0, "drain + barrier keeps the stream clean");
    assert!(report.audit.is_safe(), "{:?}", report.audit.violations.first());
    // The three-process barrier has real cost: the server visibly blocks,
    // unlike the all-solo MAP of the full action table.
    assert!(report.server.blocked > SimDuration::ZERO);
    eprintln!("compound-step server blocking: {}", report.server.blocked);
    let full_run = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
    assert!(
        report.server.blocked > full_run.server.blocked,
        "Table 2's cost ordering (compound 150 > singles 10) shows up as blocking time"
    );
}

#[test]
fn adaptation_under_lossy_control_links_keeps_stream_safe() {
    for seed in [11u64, 12, 13] {
        let cfg = ScenarioConfig {
            seed,
            link: LinkConfig::lossy(SimDuration::from_millis(5), 0.10),
            stream_end: SimTime::from_millis(1_500),
            ..ScenarioConfig::default()
        };
        let report = run_video_scenario(&cfg, Strategy::Safe);
        // Data links share the loss here, so some frames may be lost, but
        // integrity (no corruption) and audit-config safety must hold.
        // Packet loss breaks segment bookkeeping (a lost packet never
        // decodes), so only configuration violations are meaningful here.
        let config_violations = report
            .audit
            .violations
            .iter()
            .filter(|v| matches!(v.kind, sada_model::ViolationKind::UnsafeConfiguration))
            .count();
        assert_eq!(config_violations, 0, "seed {seed}");
        let cs = case_study();
        if let Some(o) = &report.outcome {
            assert!(cs.spec.is_safe(&o.final_config), "seed {seed}");
        }
    }
}

#[test]
fn adaptation_before_stream_starts_and_after_it_ends() {
    // Request fires at t=1ms, long before meaningful traffic.
    let early =
        ScenarioConfig { adapt_at: SimDuration::from_millis(1), ..ScenarioConfig::default() };
    let r1 = run_video_scenario(&early, Strategy::Safe);
    assert!(r1.outcome.as_ref().unwrap().success);
    assert_eq!(r1.corrupted_packets(), 0);

    // Request fires after the stream stops: still succeeds (idle system).
    let late = ScenarioConfig {
        adapt_at: SimDuration::from_millis(2_500),
        stream_end: SimTime::from_millis(2_000),
        ..ScenarioConfig::default()
    };
    let r2 = run_video_scenario(&late, Strategy::Safe);
    assert!(r2.outcome.as_ref().unwrap().success);
    assert_eq!(r2.corrupted_packets(), 0);
}

#[test]
fn naive_baseline_corrupts_under_every_skew() {
    for skew_ms in [20u64, 60, 120] {
        let report = run_video_scenario(
            &ScenarioConfig::default(),
            Strategy::Naive { skew: SimDuration::from_millis(skew_ms) },
        );
        assert!(report.corrupted_packets() > 0, "skew {skew_ms}ms should corrupt the stream");
        assert!(!report.audit.is_safe(), "skew {skew_ms}ms must fail the audit");
    }
}

#[test]
fn corruption_grows_with_naive_skew() {
    let c = |skew_ms| {
        run_video_scenario(
            &ScenarioConfig::default(),
            Strategy::Naive { skew: SimDuration::from_millis(skew_ms) },
        )
        .corrupted_packets()
    };
    let (small, large) = (c(30), c(300));
    assert!(
        large > small,
        "longer mixed-configuration windows corrupt more packets ({small} vs {large})"
    );
}
