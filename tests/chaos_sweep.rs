//! Randomized fault-injection sweep over the case-study adaptation.
//!
//! Each seed generates a reproducible random fault plan (crash/restart
//! pairs, partition windows, targeted drops, latency bursts) via
//! `sada_simnet::chaos` and replays the full manager/agent protocol under
//! it. Whatever the plan does, every run must
//!
//! 1. terminate (`run_adaptation` panics on protocol deadlock),
//! 2. end in a configuration satisfying the dependency invariants, and
//! 3. do so at bounded overhead — no unbounded retry storms.
//!
//! Since the write-ahead journal landed, the sweep also crashes the
//! *manager*: a restarted incarnation must replay its journal, reconcile
//! the agents, and still satisfy the same contract. Every successful run
//! additionally proves its journal durable (text round-trip, every prefix
//! replayable, full replay landing on the final configuration).
//!
//! The sweep width defaults to 50 seeds; set `SADA_CHAOS_SEEDS` to widen or
//! narrow it (CI smoke vs. overnight soak) — the exercised-enough
//! thresholds scale with the width.
//!
//! A failing seed dumps its plan to `target/chaos-failures/` in the
//! replayable `FaultPlan::parse` text form alongside the unified event
//! trace of the failing run (`seed-N.trace.jsonl`) and, when the run got
//! far enough to produce a report, the manager's adaptation journal
//! (`seed-N.journal.txt`); render its per-phase timeline with
//! `cargo run -p sada-bench --bin report -- timeline <seed>`,
//! or copy the plan into `tests/regressions/` to pin it as a permanent
//! regression (the `pinned_fault_plans_stay_safe` test replays every file
//! there).

use std::fmt::Write as _;

use sada_core::casestudy::{case_study, CaseStudy};
use sada_core::{run_adaptation, RunConfig, RunReport};
use sada_proto::{ManagerCore, ProtoTiming};
use sada_simnet::{chaos, ActorId, ChaosOpts, FaultPlan, SimDuration, SimTime};

/// Virtual-time ceiling: an unfaulted run finishes in well under a second;
/// a faulted one gets the fault horizon plus generous ladder time.
const TIME_BUDGET: SimTime = SimTime::from_millis(30_000);
/// Message ceiling: the happy path is ~30 messages; retry ladders under
/// heavy chaos stay within a couple hundred.
const MSG_BUDGET: u64 = 5_000;

fn chaos_opts(cs: &CaseStudy) -> ChaosOpts {
    let n = cs.spec.model().process_count();
    // The manager is registered after the agents. Since the write-ahead
    // journal it is crashable like everyone else: a restarted incarnation
    // replays the journal and reconciles the agents. Links everywhere are
    // fair game for partitions, drops, and delay bursts.
    let all: Vec<ActorId> = (0..=n).map(ActorId::from_index).collect();
    ChaosOpts { crashable: all.clone(), partitionable: all, horizon: SimDuration::from_millis(500) }
}

/// Sweep width: `SADA_CHAOS_SEEDS` overrides the 50-seed default (CI smoke
/// vs. overnight soak). Assertion thresholds scale with it.
fn sweep_seeds() -> u64 {
    std::env::var("SADA_CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(50).max(10)
}

/// Checks the safety and boundedness contract against a finished run.
fn assert_contract(cs: &CaseStudy, plan: &FaultPlan, label: &str, report: &RunReport) {
    let mut ctx = String::new();
    let _ = writeln!(ctx, "fault plan ({label}):\n{}", plan.to_text());
    let _ = writeln!(ctx, "outcome: {:?}", report.outcome);
    assert!(
        cs.spec.is_safe(&report.outcome.final_config),
        "{label}: unsafe final configuration {}\n{ctx}",
        report.outcome.final_config
    );
    assert!(
        report.outcome.success || report.outcome.gave_up || report.outcome.final_config == cs.source,
        "{label}: failed without either returning to source or explicitly waiting for the user\n{ctx}"
    );
    assert!(
        report.finished_at <= TIME_BUDGET,
        "{label}: unbounded recovery time {}\n{ctx}",
        report.finished_at
    );
    assert!(
        report.messages_sent <= MSG_BUDGET,
        "{label}: message storm ({} sent)\n{ctx}",
        report.messages_sent
    );
}

/// Proves the run's write-ahead journal durable: the text codec round-trips,
/// *every* prefix is replayable against a fresh planner (what a crash at
/// that point would have required), and a full replay lands exactly on the
/// run's final configuration.
fn assert_journal_durable(cs: &CaseStudy, label: &str, report: &RunReport) {
    let text = sada_proto::encode_journal(&report.journal);
    assert_eq!(
        sada_proto::parse_journal(&text).as_ref(),
        Ok(&report.journal),
        "{label}: journal text round-trip"
    );
    for cut in 0..=report.journal.len() {
        let restored = ManagerCore::restore(
            ProtoTiming::default(),
            Box::new(cs.spec.runtime_planner()),
            &report.journal[..cut],
        );
        match restored {
            Ok((mgr, _effects)) if cut == report.journal.len() => assert_eq!(
                mgr.current_config(),
                &report.outcome.final_config,
                "{label}: full journal replay diverged from the run\n{text}"
            ),
            Ok(_) => {}
            Err(e) => panic!("{label}: journal prefix {cut} not replayable: {e}\n{text}"),
        }
    }
}

/// Runs the case-study adaptation under `plan` and checks the safety and
/// boundedness contract. Returns the report for extra assertions.
fn check_plan(cs: &CaseStudy, plan: &FaultPlan, label: &str) -> RunReport {
    let cfg = RunConfig { faults: plan.clone(), ..RunConfig::default() };
    // Termination: run_adaptation panics on deadlock by design.
    let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
    assert_contract(cs, plan, label, &report);
    report
}

/// Dumps a failing plan in replayable text form, plus the unified event
/// trace of the failing run (`seed-N.trace.jsonl`) and — when the run got
/// far enough to yield a report — the manager's write-ahead journal
/// (`seed-N.journal.txt`). Returns the plan path.
fn dump_counterexample(
    cs: &CaseStudy,
    seed: u64,
    intensity: f64,
    plan: &FaultPlan,
    report: Option<&RunReport>,
) -> String {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/chaos-failures");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("seed-{seed}.txt"));
    let body = format!(
        "# chaos counterexample: seed {seed}, intensity {intensity}\n\
         # per-phase timeline: cargo run -p sada-bench --bin report -- timeline {seed}\n\
         # replay: copy into tests/regressions/\n{}",
        plan.to_text()
    );
    let _ = std::fs::write(&path, body);
    // Re-run the failing plan with a trace sink attached; if it panics
    // again (it should — same seed, same world), the sink still holds every
    // event up to the failure point, which is exactly the forensic record.
    let sink = std::rc::Rc::new(std::cell::RefCell::new(sada_obs::JsonlSink::new()));
    let bus = sada_obs::Bus::new();
    bus.attach(&sink);
    let cfg = RunConfig { faults: plan.clone(), bus, ..RunConfig::default() };
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg)
    }));
    let trace = format!(
        "# unified event trace for chaos seed {seed} (up to the failure point)\n{}",
        sink.borrow().dump()
    );
    let _ = std::fs::write(dir.join(format!("seed-{seed}.trace.jsonl")), trace);
    if let Some(report) = report {
        let journal = format!(
            "# manager write-ahead journal for chaos seed {seed}\n\
             # replays via ManagerCore::restore / sada_proto::parse_journal\n{}",
            sada_proto::encode_journal(&report.journal)
        );
        let _ = std::fs::write(dir.join(format!("seed-{seed}.journal.txt")), journal);
    }
    path.display().to_string()
}

#[test]
fn random_fault_plans_all_end_safe() {
    let cs = case_study();
    let opts = chaos_opts(&cs);
    let seeds = sweep_seeds();
    let mut crashes = 0u64;
    let mut restarts = 0u64;
    let mut rejoins = 0u64;
    let mut manager_restores = 0u64;
    let mut successes = 0u64;
    for seed in 0..seeds {
        // Sweep intensity with the seed so the corpus spans gentle single
        // faults up to multi-fault storms.
        let intensity = 0.2 + 0.15 * (seed % 5) as f64;
        let plan = chaos(seed, intensity, &opts);
        let label = format!("seed {seed}");
        // Run and assert in two stages so a contract violation still leaves
        // the report (and its journal) available for the counterexample dump.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cfg = RunConfig { faults: plan.clone(), ..RunConfig::default() };
            run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg)
        }));
        let (report, failure) = match run {
            Ok(report) => {
                let checks = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    assert_contract(&cs, &plan, &label, &report);
                    assert_journal_durable(&cs, &label, &report);
                }));
                (Some(report), checks.err())
            }
            Err(payload) => (None, Some(payload)),
        };
        if let Some(payload) = failure {
            let path = dump_counterexample(&cs, seed, intensity, &plan, report.as_ref());
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!("seed {seed} failed (plan dumped to {path}):\n{msg}");
        }
        let report = report.expect("no failure means the run finished");
        crashes += report.crashes;
        restarts += report.restarts;
        rejoins += report.rejoins;
        manager_restores += report.manager_restores;
        successes += u64::from(report.outcome.success);
    }
    // The sweep must actually exercise the crash machinery — both agent and
    // manager failures — not vacuously pass on empty plans.
    assert!(crashes >= seeds / 5, "sweep exercised only {crashes} crashes over {seeds} seeds");
    assert_eq!(crashes, restarts, "every generated crash is paired with a restart");
    assert!(
        manager_restores >= seeds / 25,
        "sweep exercised only {manager_restores} manager failovers over {seeds} seeds"
    );
    // Only *agent* restarts owe a rejoin announcement; a restarted manager
    // reconciles via its journal instead.
    let agent_crashes = crashes - manager_restores;
    assert!(
        rejoins >= agent_crashes,
        "every agent restart announces at least one rejoin ({rejoins} < {agent_crashes})"
    );
    // Outages are bounded and partitions heal, so the vast majority of
    // runs still reach the target (the rest abort or give up safely).
    assert!(successes >= seeds * 4 / 5, "only {successes}/{seeds} runs succeeded");
}

#[test]
fn chaos_plans_are_reproducible() {
    let cs = case_study();
    let opts = chaos_opts(&cs);
    let p1 = chaos(17, 0.5, &opts);
    let p2 = chaos(17, 0.5, &opts);
    assert_eq!(p1.to_text(), p2.to_text(), "same seed must yield the same plan");
    // And the text form round-trips, so dumped counterexamples replay.
    let parsed = FaultPlan::parse(&p1.to_text()).expect("round-trip");
    assert_eq!(parsed.to_text(), p1.to_text());
    let r1 = check_plan(&cs, &p1, "seed 17 run 1");
    let r2 = check_plan(&cs, &parsed, "seed 17 run 2");
    assert_eq!(r1.outcome.final_config, r2.outcome.final_config);
    assert_eq!(r1.finished_at, r2.finished_at);
    assert_eq!(r1.messages_sent, r2.messages_sent);
}

/// Slow-agent profile: one sustained latency burst inflates every round
/// trip far past the fixed ladder's 200 ms base, so the historical policy
/// retransmits spuriously for the whole episode. The RTT-adaptive policy
/// must hold the same safety contract while learning the inflated latency
/// and cutting the retransmission traffic.
#[test]
fn sustained_delay_bursts_hold_the_contract_under_adaptive_timeouts() {
    let cs = case_study();
    let plan = FaultPlan::new().delay_burst(
        (SimTime::from_millis(10), SimTime::from_millis(2_510)),
        SimDuration::from_millis(250),
    );
    // The profile must survive the text codec like every pinnable plan.
    let parsed = FaultPlan::parse(&plan.to_text()).expect("round-trip");
    assert_eq!(parsed.to_text(), plan.to_text());

    let fixed = {
        let cfg = RunConfig { faults: plan.clone(), ..RunConfig::default() };
        run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg)
    };
    assert_contract(&cs, &plan, "delay bursts / fixed ladder", &fixed);

    let adaptive = {
        let timing =
            ProtoTiming { retry: sada_proto::RetryPolicy::adaptive(), ..ProtoTiming::default() };
        let cfg = RunConfig { timing, faults: plan.clone(), ..RunConfig::default() };
        run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg)
    };
    assert_contract(&cs, &plan, "delay bursts / adaptive", &adaptive);
    assert!(adaptive.outcome.success, "{:?}", adaptive.infos);
    assert!(
        adaptive.messages_sent <= fixed.messages_sent,
        "adaptive timeouts must not retransmit more than the fixed ladder \
         under sustained latency ({} vs {})",
        adaptive.messages_sent,
        fixed.messages_sent
    );
}

/// Flap profile: an agent caught in a crash/restart loop, each outage long
/// enough to exhaust a full retry ladder. With a breaker at threshold 3
/// (one ladder's worth of evidence) the outages trip it, every restart
/// rejoins, and the run still terminates safely and reproducibly.
#[test]
fn crash_restart_flap_loop_stays_safe_and_trips_the_breaker() {
    let cs = case_study();
    let victim = ActorId::from_index(1);
    let mut plan = FaultPlan::new();
    for cycle in 0..3u64 {
        let down = SimTime::from_millis(5 + cycle * 1_800);
        let up = SimTime::from_millis(1_705 + cycle * 1_800);
        plan = plan.crash(victim, down).restart(victim, up);
    }
    let parsed = FaultPlan::parse(&plan.to_text()).expect("round-trip");
    assert_eq!(parsed.to_text(), plan.to_text());

    let run = |seedless_check: bool| {
        let cfg = RunConfig {
            breaker: Some(sada_proto::BreakerConfig {
                failure_threshold: 3,
                ..sada_proto::BreakerConfig::default()
            }),
            faults: plan.clone(),
            ..RunConfig::default()
        };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        if seedless_check {
            assert_contract(&cs, &plan, "flap loop / breaker", &report);
        }
        report
    };
    let report = run(true);
    assert_eq!((report.crashes, report.restarts), (3, 3));
    assert!(report.rejoins >= 3, "every restart re-announces ({} rejoins)", report.rejoins);
    assert!(report.breaker_trips >= 1, "a full-ladder outage must trip the breaker");
    assert_journal_durable(&cs, "flap loop / breaker", &report);
    // Identical inputs reproduce the identical run.
    let again = run(false);
    assert_eq!(report.finished_at, again.finished_at);
    assert_eq!(report.messages_sent, again.messages_sent);
    assert_eq!(report.outcome.final_config, again.outcome.final_config);
    assert_eq!(
        (report.breaker_trips, report.suppressed_sends),
        (again.breaker_trips, again.suppressed_sends)
    );
}

#[test]
fn pinned_fault_plans_stay_safe() {
    // Every plan in tests/regressions/ is a previously interesting (or
    // once-failing) scenario pinned in replayable text form.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let cs = case_study();
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/regressions directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable regression file");
        let plan = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("{}: bad fault plan: {e}", path.display()));
        check_plan(&cs, &plan, &path.display().to_string());
        replayed += 1;
    }
    assert!(replayed >= 2, "regression corpus went missing ({replayed} plans)");
}
