//! Randomized fault-injection sweep over the case-study adaptation.
//!
//! Each seed generates a reproducible random fault plan (crash/restart
//! pairs, partition windows, targeted drops, latency bursts) via
//! `sada_simnet::chaos` and replays the full manager/agent protocol under
//! it. Whatever the plan does, every run must
//!
//! 1. terminate (`run_adaptation` panics on protocol deadlock),
//! 2. end in a configuration satisfying the dependency invariants, and
//! 3. do so at bounded overhead — no unbounded retry storms.
//!
//! A failing seed dumps its plan to `target/chaos-failures/` in the
//! replayable `FaultPlan::parse` text form alongside the unified event
//! trace of the failing run (`seed-N.trace.jsonl`); render its per-phase
//! timeline with `cargo run -p sada-bench --bin report -- timeline <seed>`,
//! or copy the plan into `tests/regressions/` to pin it as a permanent
//! regression (the `pinned_fault_plans_stay_safe` test replays every file
//! there).

use std::fmt::Write as _;

use sada_core::casestudy::{case_study, CaseStudy};
use sada_core::{run_adaptation, RunConfig, RunReport};
use sada_simnet::{chaos, ActorId, ChaosOpts, FaultPlan, SimDuration, SimTime};

/// Virtual-time ceiling: an unfaulted run finishes in well under a second;
/// a faulted one gets the fault horizon plus generous ladder time.
const TIME_BUDGET: SimTime = SimTime::from_millis(30_000);
/// Message ceiling: the happy path is ~30 messages; retry ladders under
/// heavy chaos stay within a couple hundred.
const MSG_BUDGET: u64 = 5_000;

fn chaos_opts(cs: &CaseStudy) -> ChaosOpts {
    let n = cs.spec.model().process_count();
    let agents: Vec<ActorId> = (0..n).map(ActorId::from_index).collect();
    let mut all = agents.clone();
    // The manager is registered after the agents; it never crashes (the
    // paper's manager is a trusted coordinator) but its links are fair
    // game for partitions, drops, and delay bursts.
    all.push(ActorId::from_index(n));
    ChaosOpts { crashable: agents, partitionable: all, horizon: SimDuration::from_millis(500) }
}

/// Runs the case-study adaptation under `plan` and checks the safety and
/// boundedness contract. Returns the report for extra assertions.
fn check_plan(cs: &CaseStudy, plan: &FaultPlan, label: &str) -> RunReport {
    let cfg = RunConfig { faults: plan.clone(), ..RunConfig::default() };
    // Termination: run_adaptation panics on deadlock by design.
    let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
    let mut ctx = String::new();
    let _ = writeln!(ctx, "fault plan ({label}):\n{}", plan.to_text());
    let _ = writeln!(ctx, "outcome: {:?}", report.outcome);
    assert!(
        cs.spec.is_safe(&report.outcome.final_config),
        "{label}: unsafe final configuration {}\n{ctx}",
        report.outcome.final_config
    );
    assert!(
        report.outcome.success || report.outcome.gave_up || report.outcome.final_config == cs.source,
        "{label}: failed without either returning to source or explicitly waiting for the user\n{ctx}"
    );
    assert!(
        report.finished_at <= TIME_BUDGET,
        "{label}: unbounded recovery time {}\n{ctx}",
        report.finished_at
    );
    assert!(
        report.messages_sent <= MSG_BUDGET,
        "{label}: message storm ({} sent)\n{ctx}",
        report.messages_sent
    );
    report
}

/// Dumps a failing plan in replayable text form, plus the unified event
/// trace of the failing run (`seed-N.trace.jsonl`), and returns the path.
fn dump_counterexample(cs: &CaseStudy, seed: u64, intensity: f64, plan: &FaultPlan) -> String {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/chaos-failures");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("seed-{seed}.txt"));
    let body = format!(
        "# chaos counterexample: seed {seed}, intensity {intensity}\n\
         # per-phase timeline: cargo run -p sada-bench --bin report -- timeline {seed}\n\
         # replay: copy into tests/regressions/\n{}",
        plan.to_text()
    );
    let _ = std::fs::write(&path, body);
    // Re-run the failing plan with a trace sink attached; if it panics
    // again (it should — same seed, same world), the sink still holds every
    // event up to the failure point, which is exactly the forensic record.
    let sink = std::rc::Rc::new(std::cell::RefCell::new(sada_obs::JsonlSink::new()));
    let bus = sada_obs::Bus::new();
    bus.attach(&sink);
    let cfg = RunConfig { faults: plan.clone(), bus, ..RunConfig::default() };
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg)
    }));
    let trace = format!(
        "# unified event trace for chaos seed {seed} (up to the failure point)\n{}",
        sink.borrow().dump()
    );
    let _ = std::fs::write(dir.join(format!("seed-{seed}.trace.jsonl")), trace);
    path.display().to_string()
}

#[test]
fn fifty_random_fault_plans_all_end_safe() {
    let cs = case_study();
    let opts = chaos_opts(&cs);
    let mut crashes = 0u64;
    let mut restarts = 0u64;
    let mut rejoins = 0u64;
    let mut successes = 0u32;
    for seed in 0..50u64 {
        // Sweep intensity with the seed so the corpus spans gentle single
        // faults up to multi-fault storms.
        let intensity = 0.2 + 0.15 * (seed % 5) as f64;
        let plan = chaos(seed, intensity, &opts);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_plan(&cs, &plan, &format!("seed {seed}"))
        }));
        match result {
            Ok(report) => {
                crashes += report.crashes;
                restarts += report.restarts;
                rejoins += report.rejoins;
                successes += u32::from(report.outcome.success);
            }
            Err(payload) => {
                let path = dump_counterexample(&cs, seed, intensity, &plan);
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic".into());
                panic!("seed {seed} failed (plan dumped to {path}):\n{msg}");
            }
        }
    }
    // The sweep must actually exercise the crash machinery, not vacuously
    // pass on empty plans.
    assert!(crashes >= 10, "sweep exercised only {crashes} crashes");
    assert_eq!(crashes, restarts, "every generated crash is paired with a restart");
    assert!(rejoins >= crashes, "every restart announces at least one rejoin");
    // Outages are bounded and partitions heal, so the vast majority of
    // runs still reach the target (the rest abort or give up safely).
    assert!(successes >= 40, "only {successes}/50 runs succeeded");
}

#[test]
fn chaos_plans_are_reproducible() {
    let cs = case_study();
    let opts = chaos_opts(&cs);
    let p1 = chaos(17, 0.5, &opts);
    let p2 = chaos(17, 0.5, &opts);
    assert_eq!(p1.to_text(), p2.to_text(), "same seed must yield the same plan");
    // And the text form round-trips, so dumped counterexamples replay.
    let parsed = FaultPlan::parse(&p1.to_text()).expect("round-trip");
    assert_eq!(parsed.to_text(), p1.to_text());
    let r1 = check_plan(&cs, &p1, "seed 17 run 1");
    let r2 = check_plan(&cs, &parsed, "seed 17 run 2");
    assert_eq!(r1.outcome.final_config, r2.outcome.final_config);
    assert_eq!(r1.finished_at, r2.finished_at);
    assert_eq!(r1.messages_sent, r2.messages_sent);
}

#[test]
fn pinned_fault_plans_stay_safe() {
    // Every plan in tests/regressions/ is a previously interesting (or
    // once-failing) scenario pinned in replayable text form.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let cs = case_study();
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/regressions directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable regression file");
        let plan = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("{}: bad fault plan: {e}", path.display()));
        check_plan(&cs, &plan, &path.display().to_string());
        replayed += 1;
    }
    assert!(replayed >= 2, "regression corpus went missing ({replayed} plans)");
}
