//! Property-based validation of the core invariants, including the paper's
//! Section 3.3 safety theorem under randomized failures.

use proptest::prelude::*;

use sada_expr::{enumerate, CompId, Config, Expr, InvariantSet, Universe};
use sada_plan::{lazy, Action, Sag};

const N_VARS: usize = 6;

fn universe_n(n: usize) -> Universe {
    let mut u = Universe::new();
    for i in 0..n {
        u.intern(&format!("C{i}"));
    }
    u
}

/// Random invariant expression over `C0..C{N_VARS}`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..N_VARS).prop_map(|i| Expr::var(CompId::from_index(i))),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::and),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::or),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::xor),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::exactly_one),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

fn config_from_bits(n: usize, bits: u32) -> Config {
    let mut c = Config::empty(n);
    for i in 0..n {
        if bits & (1 << i) != 0 {
            c.insert(CompId::from_index(i));
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pruned three-valued enumeration is exactly brute force.
    #[test]
    fn pruned_enumeration_equals_exhaustive(exprs in prop::collection::vec(arb_expr(), 0..4)) {
        let u = universe_n(N_VARS);
        let mut inv = InvariantSet::new();
        for e in exprs {
            inv.push(e);
        }
        let pruned = enumerate::safe_configs(&u, &inv);
        let brute = enumerate::safe_configs_exhaustive(&u, &inv);
        prop_assert_eq!(pruned, brute);
    }

    /// Three-valued evaluation agrees with two-valued on complete inputs.
    #[test]
    fn eval3_complete_matches_eval(e in arb_expr(), bits in 0u32..64) {
        let u = universe_n(N_VARS);
        let cfg = config_from_bits(u.len(), bits);
        let mut pa = sada_expr::PartialAssignment::new(u.len());
        for i in 0..u.len() {
            pa.assign(CompId::from_index(i), cfg.contains(CompId::from_index(i)));
        }
        let tri = e.eval3(&pa);
        let b = e.eval(&cfg);
        prop_assert_eq!(tri == sada_expr::Tri::True, b);
    }

    /// Simplification preserves semantics on every configuration and is
    /// idempotent.
    #[test]
    fn simplify_preserves_semantics(e in arb_expr()) {
        let s = e.simplify();
        for bits in 0..(1u32 << N_VARS) {
            let cfg = config_from_bits(N_VARS, bits);
            prop_assert_eq!(e.eval(&cfg), s.eval(&cfg), "{} vs {} on {}", e, s, cfg);
        }
        prop_assert_eq!(s.simplify(), s.clone(), "idempotent: {}", s);
    }

    /// Parser round-trip: displaying a parsed expression and re-parsing it
    /// yields the same semantics on all configurations.
    #[test]
    fn parse_display_round_trip(e in arb_expr()) {
        let mut u = universe_n(N_VARS);
        let rendered = e.display(&u).to_string();
        let reparsed = sada_expr::parse_expr(&rendered, &mut u).unwrap();
        for bits in 0..(1u32 << N_VARS) {
            let cfg = config_from_bits(N_VARS, bits);
            prop_assert_eq!(e.eval(&cfg), reparsed.eval(&cfg), "expr {} on {}", rendered, cfg);
        }
    }
}

/// Random action table over a one_of(N) world: replacements between
/// component pairs with random costs.
fn arb_actions() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec(
        (0..N_VARS, 0..N_VARS, 1u64..100).prop_filter("distinct", |(a, b, _)| a != b),
        1..10,
    )
}

fn build_world(raw: &[(usize, usize, u64)]) -> (Universe, InvariantSet, Vec<Action>) {
    let mut u = universe_n(N_VARS);
    let names: Vec<String> = (0..N_VARS).map(|i| format!("C{i}")).collect();
    let all: Vec<&str> = names.iter().map(String::as_str).collect();
    let inv = InvariantSet::parse(&[&format!("one_of({})", all.join(", "))], &mut u).unwrap();
    let actions: Vec<Action> = raw
        .iter()
        .enumerate()
        .map(|(ix, &(a, b, cost))| {
            Action::replace(
                ix as u32,
                &format!("C{a}->C{b}"),
                &u.config_of(&[&format!("C{a}")]),
                &u.config_of(&[&format!("C{b}")]),
                cost,
            )
        })
        .collect();
    (u, inv, actions)
}

/// Brute-force cheapest simple path on the safe-singleton graph.
fn brute_force_cost(actions: &[Action], from: &Config, to: &Config) -> Option<u64> {
    fn dfs(
        actions: &[Action],
        cur: &Config,
        to: &Config,
        visited: &mut Vec<Config>,
        spent: u64,
        best: &mut Option<u64>,
    ) {
        if cur == to {
            *best = Some(best.map_or(spent, |b: u64| b.min(spent)));
            return;
        }
        for a in actions {
            if a.applicable(cur) {
                let next = a.apply(cur);
                if next.len() == 1 && !visited.contains(&next) {
                    visited.push(next.clone());
                    dfs(actions, &next, to, visited, spent + a.cost(), best);
                    visited.pop();
                }
            }
        }
    }
    let mut best = None;
    let mut visited = vec![from.clone()];
    dfs(actions, from, to, &mut visited, 0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra over the eager SAG, the lazy planner, and brute force all
    /// agree on the MAP cost.
    #[test]
    fn planners_agree_with_brute_force(raw in arb_actions(), src in 0..N_VARS, dst in 0..N_VARS) {
        let (u, inv, actions) = build_world(&raw);
        let from = u.config_of(&[&format!("C{src}")]);
        let to = u.config_of(&[&format!("C{dst}")]);
        let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
        let eager = sag.shortest_path(&from, &to).map(|p| p.cost);
        let lazy_cost = lazy::plan(&inv, &actions, &from, &to).map(|p| p.cost);
        let astar_cost = lazy::plan_astar(&inv, &actions, &from, &to).0.map(|p| p.cost);
        let brute = brute_force_cost(&actions, &from, &to);
        prop_assert_eq!(eager, brute);
        prop_assert_eq!(lazy_cost, brute);
        prop_assert_eq!(astar_cost, brute);
    }

    /// Yen's ranking: sorted by cost, pairwise distinct, loopless, and the
    /// first one is the Dijkstra MAP.
    #[test]
    fn yen_ranking_properties(raw in arb_actions(), src in 0..N_VARS, dst in 0..N_VARS) {
        let (u, inv, actions) = build_world(&raw);
        let from = u.config_of(&[&format!("C{src}")]);
        let to = u.config_of(&[&format!("C{dst}")]);
        let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
        let paths = sag.k_shortest_paths(&from, &to, 6);
        if let Some(map) = sag.shortest_path(&from, &to) {
            prop_assert_eq!(&paths[0], &map);
        } else {
            prop_assert!(paths.is_empty());
        }
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost);
            prop_assert_ne!(&w[0], &w[1]);
        }
        for p in &paths {
            prop_assert!(p.is_well_formed());
            let cfgs = p.configs();
            let mut seen = std::collections::HashSet::new();
            for c in &cfgs {
                prop_assert!(seen.insert(c.clone()), "loop in {}", p);
            }
        }
    }
}

mod protocol_theorem {
    use super::*;
    use sada_core::casestudy::case_study;
    use sada_core::{run_adaptation, RunConfig};
    use sada_simnet::{LinkConfig, SimDuration};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Section 3.3 under fire: whatever the loss rate, latency, and
        /// fail-to-reset pattern, the case-study adaptation always resolves
        /// and always lands in a *safe* configuration.
        #[test]
        fn adaptation_always_lands_safe(
            seed in 0u64..1000,
            loss in 0.0f64..0.35,
            latency_ms in 1u64..20,
            fail_handheld in any::<bool>(),
            fail_laptop in any::<bool>(),
        ) {
            let cs = case_study();
            let mut fail = Vec::new();
            if fail_handheld { fail.push(1); }
            if fail_laptop { fail.push(2); }
            let cfg = RunConfig {
                seed,
                link: LinkConfig::lossy(SimDuration::from_millis(latency_ms), loss),
                fail_to_reset: fail,
                ..RunConfig::default()
            };
            let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
            prop_assert!(
                cs.spec.is_safe(&report.outcome.final_config),
                "unsafe final config {} (seed {seed}, loss {loss:.2})",
                report.outcome.final_config
            );
            // The manager always resolves — and a non-success either backs
            // out to the source or explicitly gives up and waits for the
            // user (ladder rung 4); it never strands the system silently.
            prop_assert!(
                report.outcome.success
                    || report.outcome.gave_up
                    || report.outcome.final_config == cs.source,
                "unresolved failure state {} (seed {seed})",
                report.outcome.final_config
            );
        }
    }
}
