//! Integration tests for the Section 7 / future-work extensions: temporal
//! safe-state detection, dependency inference, spec files, and the
//! monitor-triggered FEC adaptation.

use sada_core::casestudy::case_study;
use sada_core::infer::{infer_invariants, CodecCatalog, InferenceConfig};
use sada_core::specfile::{parse_config_arg, parse_spec_file, CASE_STUDY_SPEC};
use sada_expr::enumerate;
use sada_meta::tags;
use sada_model::AuditEvent;
use sada_tl::audit_bridge;
use sada_video::{run_fec_scenario, FecScenarioConfig};

/// The three §7 directions compose: infer the invariants from structure,
/// plan over them, and verify the plan equals the hand-written one.
#[test]
fn inferred_invariants_plan_the_same_map() {
    let cs = case_study();
    let u = cs.spec.universe();
    let id = |n: &str| u.id(n).unwrap();
    let mut catalog = CodecCatalog::new();
    catalog
        .producer(id("E1"), tags::DES64)
        .producer(id("E2"), tags::DES128)
        .acceptor(id("D1"), &[tags::DES64])
        .acceptor(id("D2"), &[tags::DES128, tags::DES64])
        .acceptor(id("D3"), &[tags::DES128])
        .acceptor(id("D4"), &[tags::DES64])
        .acceptor(id("D5"), &[tags::DES128]);
    let cfg = InferenceConfig {
        exclusive_groups: vec![vec![id("D1"), id("D2"), id("D3")]],
        one_encoder: true,
    };
    let inferred = infer_invariants(u, cs.spec.model(), &catalog, &cfg);
    // Plan lazily over the inferred invariants with the paper's actions.
    let map = sada_plan::lazy::plan(&inferred, cs.spec.actions(), &cs.source, &cs.target)
        .expect("plan over inferred invariants");
    assert_eq!(map.cost, 50, "the inferred system has the paper's MAP cost");
    let safe = enumerate::safe_configs(u, &inferred);
    assert_eq!(safe.len(), 8);
}

#[test]
fn spec_file_round_trip_drives_a_real_adaptation() {
    let spec = parse_spec_file(CASE_STUDY_SPEC).unwrap();
    let u = spec.universe();
    let source = parse_config_arg(u, "0100101").unwrap();
    let target = parse_config_arg(u, "1010010").unwrap();
    let report =
        sada_core::run_adaptation(&spec, &source, &target, &sada_core::RunConfig::default());
    assert!(report.outcome.success);
    assert_eq!(report.outcome.steps_committed, 5);
    assert_eq!(report.outcome.final_config, target);
}

#[test]
fn temporal_detector_blesses_the_protocols_in_action_points() {
    // Drive the real video world; then verify with the detector that every
    // in-action the safe protocol performed happened at a point where no
    // transmission segment on a touched component was outstanding.
    use sada_video::{run_video_scenario, ScenarioConfig, Strategy};
    let report = run_video_scenario(&ScenarioConfig::default(), Strategy::Safe);
    assert!(report.audit.is_safe());
    // The audit events are not exposed by the report; rebuild the claim via
    // the auditor result instead: zero interrupted-segment violations means
    // the detector would have approved every in-action point.
    assert!(report
        .audit
        .violations
        .iter()
        .all(|v| !matches!(v.kind, sada_model::ViolationKind::InterruptedSegment { .. })));
}

#[test]
fn temporal_detector_rejects_mid_segment_actions() {
    let a = sada_expr::CompId::from_index(0);
    let log = vec![
        AuditEvent::SegmentStart { cid: 1, comp: a },
        AuditEvent::SegmentEnd { cid: 1, comp: a },
        AuditEvent::SegmentStart { cid: 2, comp: a },
    ];
    assert!(audit_bridge::is_safe_at(&log, &[a], 1));
    assert!(!audit_bridge::is_safe_at(&log, &[a], 2));
}

#[test]
fn fec_loop_closes_end_to_end() {
    let report = run_fec_scenario(&FecScenarioConfig::default());
    assert!(report.triggered_at.is_some(), "loss monitor must fire");
    let outcome = report.outcome.expect("manager resolves the request");
    assert!(outcome.success);
    assert_eq!(outcome.steps_committed, 3, "+FDH, +FDL, +FE");
    assert!(report.recovered_packets > 0);
    assert!(report.lossy_ratio_after > report.lossy_ratio_before);
}
