//! Bandwidth adaptation: the wireless link's capacity drops below the
//! uncompressed stream's bitrate; the safe adaptation process inserts RLE
//! compression (compressor on the server *before* the cipher, decompressors
//! on the clients *after* it), and throughput recovers. Exercises the
//! simulator's bandwidth/queueing model end to end.

use std::collections::HashSet;

use sada_core::AdaptationSpec;
use sada_expr::{InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::Action;
use sada_proto::{ManagerActor, ProtoTiming, Wire};
use sada_simnet::{ActorId, LinkConfig, SimDuration, SimTime, Simulator};
use sada_video::{AppMsg, AuditShared, ClientActor, ServerActor, VideoWire};

fn compression_spec() -> (AdaptationSpec, sada_expr::Config, sada_expr::Config) {
    let mut u = Universe::new();
    for n in ["E1", "E2", "D1", "D2", "D3", "D4", "D5", "CE", "CDH", "CDL"] {
        u.intern(n);
    }
    let invariants = InvariantSet::parse(
        &[
            "one_of(D1, D2, D3)",
            "one_of(E1, E2)",
            "E1 => (D1 | D2) & D4",
            "E2 => (D3 | D2) & D5",
            // Compressed packets are garbage to a client without the
            // decompressor.
            "CE => CDH & CDL",
        ],
        &mut u,
    )
    .unwrap();
    let c = |names: &[&str]| u.config_of(names);
    let actions = vec![
        Action::insert(0, "+CDH", &c(&["CDH"]), 10),
        Action::insert(1, "+CDL", &c(&["CDL"]), 10),
        Action::insert(2, "+CE", &c(&["CE"]), 10),
        Action::remove(3, "-CE", &c(&["CE"]), 10),
        Action::remove(4, "-CDH", &c(&["CDH"]), 10),
        Action::remove(5, "-CDL", &c(&["CDL"]), 10),
    ];
    let mut model = SystemModel::new();
    let server = model.add_process("video-server");
    let handheld = model.add_process("handheld-client");
    let laptop = model.add_process("laptop-client");
    model.place_all(
        &u,
        &[
            ("E1", server),
            ("E2", server),
            ("CE", server),
            ("D1", handheld),
            ("D2", handheld),
            ("D3", handheld),
            ("CDH", handheld),
            ("D4", laptop),
            ("D5", laptop),
            ("CDL", laptop),
        ],
    );
    let source = u.config_of(&["E1", "D1", "D4"]);
    let target = u.config_of(&["E1", "D1", "D4", "CE", "CDH", "CDL"]);
    let spec = AdaptationSpec::new(u, invariants, actions, model, vec![0, 1, 2], HashSet::new());
    (spec, source, target)
}

struct World {
    sim: Simulator<VideoWire>,
    s: ActorId,
    h: ActorId,
    l: ActorId,
}

/// Builds the congested world; `adapt_at = None` is the no-adaptation
/// control.
fn build(adapt_at: Option<SimDuration>, stream_end: SimTime) -> World {
    let (spec, source, target) = compression_spec();
    let bus = sada_obs::Bus::new();
    let audit = AuditShared::new(&bus, source.clone());
    let mut sim: Simulator<VideoWire> = Simulator::new(33);
    sim.set_bus(bus);
    sim.set_default_link(LinkConfig::reliable(SimDuration::from_millis(5)));
    // Wire-level message sizes: video payload bytes plus a fixed header;
    // control traffic is small.
    sim.set_message_sizer(Box::new(|m: &VideoWire| match m {
        Wire::App(AppMsg::Data { pkt, .. }) => pkt.payload.len() + 32,
        _ => 64,
    }));
    let u = spec.universe().clone();
    let group =
        sim.create_group(&[ActorId::from_index(0), ActorId::from_index(1), ActorId::from_index(2)]);
    let s = sim.add_actor(
        "video-server",
        ServerActor::new(
            u.clone(),
            group,
            vec![vec!["D1", "D2", "D3"], vec!["D4", "D5"]],
            99,
            3_000,
            SimDuration::from_millis(33),
            512,
            stream_end,
            audit.clone(),
        ),
    );
    let h = sim.add_actor(
        "handheld-client",
        ClientActor::new(u.clone(), 0, &["D1"], SimDuration::from_millis(50), audit.clone()),
    );
    let l = sim.add_actor(
        "laptop-client",
        ClientActor::new(u.clone(), 1, &["D4"], SimDuration::from_millis(50), audit.clone()),
    );
    if let Some(at) = adapt_at {
        let manager = sim.add_actor(
            "adaptation-manager",
            ManagerActor::<AppMsg>::new(
                ProtoTiming::default(),
                Box::new(spec.runtime_planner()),
                vec![s, h, l],
                source,
                target,
            )
            .with_request_delay(at),
        );
        sim.actor_mut::<ServerActor>(s).unwrap().set_manager(manager);
        sim.actor_mut::<ClientActor>(h).unwrap().set_manager(manager);
        sim.actor_mut::<ClientActor>(l).unwrap().set_manager(manager);
    }
    // The wireless hop is capacity-limited below the uncompressed bitrate:
    // ~3.8 KB of ciphertext per frame at 30 fps ≈ 115 KB/s, link = 70 KB/s.
    for &client in &[h, l] {
        let link = LinkConfig::reliable(SimDuration::from_millis(5)).with_bandwidth(70_000);
        sim.set_link(s, client, link);
    }
    World { sim, s, h, l }
}

/// Frames displayed on the handheld by `t` (a progress probe).
fn displayed_by(w: &mut World, t: SimTime) -> u64 {
    w.sim.run_until(t);
    w.sim.actor::<ClientActor>(w.h).unwrap().stats().frames_displayed
}

#[test]
fn compression_insertion_relieves_congestion() {
    let stream_end = SimTime::from_millis(4_000);
    let probe = SimTime::from_millis(3_900);

    // Control: congested for the whole run.
    let mut control = build(None, stream_end);
    let control_displayed = displayed_by(&mut control, probe);

    // Adapted: compression inserted at t = 1 s.
    let mut adapted = build(Some(SimDuration::from_millis(1_000)), stream_end);
    let adapted_displayed = displayed_by(&mut adapted, probe);

    let sent = adapted.sim.actor::<ServerActor>(adapted.s).unwrap().stats.frames_sent;
    assert!(sent > 100, "the stream ran");
    assert!(
        adapted_displayed > control_displayed + 10,
        "compression must relieve the backlog: control={control_displayed}, adapted={adapted_displayed} of {sent}"
    );

    // The adaptation itself succeeded with the right ordering and no
    // corruption on either client.
    adapted.sim.run();
    let mgr = adapted.sim.actor::<ManagerActor<AppMsg>>(ActorId::from_index(3)).unwrap();
    let outcome = mgr.outcome.clone().expect("resolved");
    assert!(outcome.success);
    assert_eq!(outcome.steps_committed, 3, "+CDH, +CDL, +CE in dependency order");
    for &client in &[adapted.h, adapted.l] {
        let cstats = adapted.sim.actor::<ClientActor>(client).unwrap().stats();
        assert_eq!(cstats.corrupted_packets, 0, "decompressors in place before compressor");
    }
    // Compression really ran: the server's compressor saved bytes.
    let server = adapted.sim.actor::<ServerActor>(adapted.s).unwrap();
    assert!(server.chain.has("CE"));
}

#[test]
fn compression_plan_orders_decompressors_first() {
    let (spec, source, target) = compression_spec();
    let map = spec.minimum_adaptation_path(&source, &target).unwrap();
    let names: Vec<&str> =
        map.action_ids().iter().map(|a| spec.actions()[a.index()].name()).collect();
    assert_eq!(names.last(), Some(&"+CE"), "compressor only after both decompressors");
}
