//! Pinned golden trace: the quickstart scenario's full unified event stream,
//! captured as a JSONL trace and compared line-for-line against
//! `tests/golden/quickstart_trace.jsonl`.
//!
//! This locks down the *entire* observability spine at once — event
//! taxonomy, emission sites, ordering, timestamps, and the codec — for a
//! small deterministic run. Any intentional change to what the bus reports
//! (new event kinds, different stamping) shows up as a diff here and is
//! refreshed with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use sada_core::{run_adaptation, AdaptationSpec, RunConfig};
use sada_expr::{Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_obs::{decode_lines, Bus, JsonlSink};
use sada_plan::Action;

/// The `examples/quickstart.rs` system: a TLS-1.2 → TLS-1.3 migration whose
/// invariants force the single compound step.
fn quickstart_spec() -> (AdaptationSpec, Config, Config) {
    let mut universe = Universe::new();
    let invariants = InvariantSet::parse(
        &[
            "one_of(Tls12, Tls13)",
            "one_of(Client12, Client13)",
            "Tls13 => Client13",
            "Tls12 => Client12",
        ],
        &mut universe,
    )
    .expect("invariants parse");
    let c = |names: &[&str]| universe.config_of(names);
    let actions = vec![
        Action::replace(0, "Client12 -> Client13", &c(&["Client12"]), &c(&["Client13"]), 20),
        Action::replace(
            1,
            "(Tls12,Client12) -> (Tls13,Client13)",
            &c(&["Tls12", "Client12"]),
            &c(&["Tls13", "Client13"]),
            45,
        ),
        Action::replace(2, "Tls12 -> Tls13", &c(&["Tls12"]), &c(&["Tls13"]), 20),
    ];
    let mut model = SystemModel::new();
    let gateway = model.add_process("gateway");
    let edge = model.add_process("edge");
    model.place_all(
        &universe,
        &[("Tls12", gateway), ("Tls13", gateway), ("Client12", edge), ("Client13", edge)],
    );
    let source = universe.config_of(&["Tls12", "Client12"]);
    let target = universe.config_of(&["Tls13", "Client13"]);
    let spec =
        AdaptationSpec::new(universe, invariants, actions, model, vec![0, 1], HashSet::new());
    (spec, source, target)
}

#[test]
fn quickstart_trace_matches_golden() {
    let (spec, source, target) = quickstart_spec();
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let bus = Bus::new();
    bus.attach(&sink);
    let cfg = RunConfig { bus, ..RunConfig::default() };
    let report = run_adaptation(&spec, &source, &target, &cfg);
    assert!(report.outcome.success, "quickstart adaptation must succeed");

    let dump = sink.borrow().dump();
    assert!(!dump.is_empty(), "the run must produce a trace");
    // The trace must always decode back to the events that produced it.
    let decoded = decode_lines(&dump).expect("trace decodes");
    assert_eq!(decoded.len(), sink.borrow().len());

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/quickstart_trace.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &dump).expect("write golden trace");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test --test golden_trace",
            path.display()
        )
    });
    // Line-by-line comparison gives a readable first-divergence report
    // instead of two multi-kilobyte strings.
    for (no, (got, want)) in dump.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "trace diverges from golden at line {} — if intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden_trace",
            no + 1
        );
    }
    assert_eq!(
        dump.lines().count(),
        golden.lines().count(),
        "trace length changed — if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
