//! Acceptance: the control plane at fleet scale. A 100-group fleet (200
//! agent processes) completes a wave of scope-disjoint sessions with real
//! concurrency — verified from the session-tagged event stream, not just
//! aggregate counters — while overlapping sessions never interleave.

use sada_fleet::{disjoint_wave, run_fleet, FleetScenario, SessionSpec};
use sada_obs::{Event, Payload, ProtoEvent};
use sada_simnet::SimDuration;

/// Virtual-time span of a session's protocol activity (first to last
/// proto event), in μs.
fn proto_span(events: &[Event], session: u64) -> Option<(u64, u64)> {
    let times: Vec<u64> = events
        .iter()
        .filter(|e| e.session == session && matches!(e.payload, Payload::Proto(_)))
        .map(|e| e.at.as_micros())
        .collect();
    Some((*times.iter().min()?, *times.iter().max()?))
}

/// Barrier instants (`StepStarted` / `StepCommitted`) for a session.
fn barriers(events: &[Event], session: u64) -> Vec<u64> {
    events
        .iter()
        .filter(|e| {
            e.session == session
                && matches!(
                    e.payload,
                    Payload::Proto(
                        ProtoEvent::StepStarted { .. } | ProtoEvent::StepCommitted { .. }
                    )
                )
        })
        .map(|e| e.at.as_micros())
        .collect()
}

#[test]
fn hundred_group_fleet_runs_disjoint_sessions_concurrently() {
    // Ten sessions, each adapting ten groups of its own: all disjoint.
    let scenario = FleetScenario::new(100, disjoint_wave(10, 10));
    let report = run_fleet(&scenario);

    assert_eq!(report.succeeded(), 10, "results: {:?}", report.results);
    assert!(
        report.max_concurrent >= 2,
        "disjoint sessions must overlap (max_concurrent = {})",
        report.max_concurrent
    );

    // The claim must be visible in the session-tagged event stream: find
    // two sessions whose *barriers* interleave — each runs a barrier
    // strictly inside the other's protocol span.
    let mut interleaved = 0;
    for a in 1..=10u64 {
        for b in (a + 1)..=10u64 {
            let (sa, sb) = (proto_span(&report.events, a), proto_span(&report.events, b));
            let (Some((a0, a1)), Some((b0, b1))) = (sa, sb) else { continue };
            let a_inside_b = barriers(&report.events, a).iter().any(|&t| t > b0 && t < b1);
            let b_inside_a = barriers(&report.events, b).iter().any(|&t| t > a0 && t < a1);
            if a_inside_b && b_inside_a {
                interleaved += 1;
            }
        }
    }
    assert!(
        interleaved >= 1,
        "no pair of sessions showed interleaved barriers in {} events",
        report.events.len()
    );

    // And the journal is a genuinely interleaved multi-session log.
    let mut tagged: Vec<u64> = Vec::new();
    for line in report.journal_text.lines() {
        if let Some(pos) = line.find("session=") {
            let tail = &line[pos + "session=".len()..];
            let id: u64 =
                tail.split_whitespace().next().unwrap().parse().expect("numeric session tag");
            if tagged.last() != Some(&id) {
                tagged.push(id);
            }
        }
    }
    let distinct: std::collections::HashSet<u64> = tagged.iter().copied().collect();
    assert_eq!(distinct.len(), 10, "all sessions journaled");
    assert!(
        tagged.len() > distinct.len(),
        "journal should switch back and forth between sessions: {tagged:?}"
    );
}

#[test]
fn overlapping_sessions_never_interleave_even_at_scale() {
    // Five sessions all fighting over groups 0..10 (plus a private tail
    // each, so scopes differ but all conflict pairwise via the shared
    // groups).
    let sessions: Vec<SessionSpec> = (0..5u64)
        .map(|i| SessionSpec {
            id: i + 1,
            flips: (0..10)
                .map(|g| (g, i % 2 == 0))
                .chain(std::iter::once((10 + i as usize, true)))
                .collect(),
            priority: 0,
            submit_at: SimDuration::from_micros(i * 500),
            cancel_at: None,
        })
        .collect();
    let report = run_fleet(&FleetScenario::new(20, sessions));

    assert_eq!(report.succeeded(), 5, "results: {:?}", report.results);
    assert_eq!(report.max_concurrent, 1, "pairwise conflicts force serialization");

    // Stronger than the counters: in the event stream, the protocol spans
    // of every pair are totally ordered.
    for a in 1..=5u64 {
        for b in (a + 1)..=5u64 {
            let (a0, a1) = proto_span(&report.events, a).expect("session ran");
            let (b0, b1) = proto_span(&report.events, b).expect("session ran");
            assert!(
                a1 <= b0 || b1 <= a0,
                "sessions {a} and {b} interleaved: [{a0},{a1}] vs [{b0},{b1}]"
            );
        }
    }
}

#[test]
fn priority_decides_admission_order_under_contention() {
    // Three sessions over the same group, submitted while the first holds
    // the scope; the high-priority latecomer is admitted before the
    // earlier low-priority waiter. Directions alternate so every session
    // does real protocol work (a no-op flip would complete instantly and
    // blur the admission timestamps).
    let mk = |id: u64, prio: u8, at_us: u64, to_new: bool| SessionSpec {
        id,
        flips: vec![(0, to_new)],
        priority: prio,
        submit_at: SimDuration::from_micros(at_us),
        cancel_at: None,
    };
    let report = run_fleet(&FleetScenario::new(
        1,
        vec![mk(1, 0, 0, true), mk(2, 0, 1000, true), mk(3, 7, 2000, false)],
    ));
    assert_eq!(report.succeeded(), 3, "results: {:?}", report.results);
    let admitted = |id: u64| report.session(id).unwrap().admitted_at.unwrap();
    assert!(admitted(3) < admitted(2), "priority 7 overtakes the FIFO waiter");
    assert!(admitted(1) < admitted(3));
}
