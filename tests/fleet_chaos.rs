//! Satellite chaos coverage: crash the *control plane itself* with one
//! session mid-barrier and another queued behind it, and show the journal
//! replay restores both; then sweep seeds over randomized crash windows.

use sada_fleet::{run_fleet, FleetScenario, SessionSpec};
use sada_obs::{FleetEvent, Payload};
use sada_proto::parse_session_journal;
use sada_simnet::{SimDuration, SimTime};

fn spec(id: u64, flips: Vec<(usize, bool)>, at_ms: u64) -> SessionSpec {
    SessionSpec {
        id,
        flips,
        priority: 0,
        submit_at: SimDuration::from_millis(at_ms),
        cancel_at: None,
    }
}

/// Every group holds exactly one of {Old, New} in the final configuration
/// (the per-group `one_of` invariant, read off the MSB-first bit string).
fn groups_are_one_of(bits: &str) {
    let ascending: Vec<char> = bits.chars().rev().collect();
    for (g, pair) in ascending.chunks(2).enumerate() {
        let ones = pair.iter().filter(|&&c| c == '1').count();
        assert_eq!(ones, 1, "group {g} violates one_of in {bits}");
    }
}

#[test]
fn control_plane_crash_restores_in_flight_and_queued_sessions() {
    // Session 1 (groups 0,1) is admitted at t=0 and is inside its first
    // adapt barrier by t=6 ms (reset at ~1 ms, safe delay 5 ms). Session 2
    // (groups 1,2) overlaps on group 1 and is queued at t=1 ms. The
    // control plane dies at 6 ms and returns at 10 ms.
    let mut scenario = FleetScenario::new(
        3,
        vec![spec(1, vec![(0, true), (1, true)], 0), spec(2, vec![(1, false), (2, true)], 1)],
    );
    scenario.crash_control = Some((SimTime::from_millis(6), SimTime::from_millis(10)));
    let report = run_fleet(&scenario);

    assert_eq!(report.restores, 1, "exactly one crash/restore cycle");
    let restored: Vec<(u32, u32)> = report
        .events
        .iter()
        .filter_map(|e| match e.payload {
            Payload::Fleet(FleetEvent::ControlRestored { active, queued }) => {
                Some((active, queued))
            }
            _ => None,
        })
        .collect();
    assert_eq!(restored.len(), 1);
    assert!(
        restored[0].0 >= 1 && restored[0].0 + restored[0].1 == 2,
        "restore must revive session 1 in flight and account for session 2 \
         (active={}, queued={})",
        restored[0].0,
        restored[0].1
    );

    // Both sessions still reach their targets after the replay.
    assert_eq!(report.succeeded(), 2, "results: {:?}", report.results);
    let s1 = report.session(1).unwrap();
    let s2 = report.session(2).unwrap();
    assert!(s1.completed_at.unwrap() <= s2.admitted_at.unwrap(), "overlap stays serialized");
    // Session 1: groups 0,1 → New; session 2 then: group 1 → Old, 2 → New.
    // Bits (MSB first, index 5..0): New2=1, Old2=0, New1=0, Old1=1, New0=1, Old0=0.
    assert_eq!(report.final_config, "100110");

    // The durable journal is a well-formed multi-session log.
    let parsed = parse_session_journal(&report.journal_text).expect("journal parses");
    assert!(parsed.iter().any(|r| r.session.0 == 1));
    assert!(parsed.iter().any(|r| r.session.0 == 2));
}

#[test]
fn plan_cache_does_not_survive_a_control_plane_crash() {
    // One session, admitted at t=0 (cache miss, entry stored) and crashed
    // mid-barrier. Journal replay re-plans from scratch: if the pre-crash
    // cache survived, the replay query would *hit* its own entry — the
    // restored plane must instead start cold, so the run sees only misses.
    let mut scenario = FleetScenario::new(2, vec![spec(1, vec![(0, true), (1, true)], 0)]);
    scenario.crash_control = Some((SimTime::from_millis(6), SimTime::from_millis(10)));
    let report = run_fleet(&scenario);

    assert_eq!(report.restores, 1);
    assert!(report.session(1).unwrap().success, "results: {:?}", report.results);
    assert_eq!(report.cache.hits, 0, "a restored control plane starts cold: {:?}", report.cache);
    assert!(report.cache.misses >= 1, "replay re-planned from scratch: {:?}", report.cache);
    let (mut hit_events, mut miss_events) = (0, 0);
    for e in &report.events {
        match e.payload {
            Payload::Fleet(FleetEvent::PlanCacheHit { .. }) => hit_events += 1,
            Payload::Fleet(FleetEvent::PlanCacheMiss { .. }) => miss_events += 1,
            _ => {}
        }
    }
    assert_eq!(hit_events, 0);
    assert!(miss_events >= 2, "one miss per incarnation, got {miss_events}");
}

#[test]
fn crash_before_any_admission_replays_the_whole_scenario() {
    // The plane dies before the first submission timer fires; the restart
    // path must re-arm the scenario from scratch.
    let mut scenario =
        FleetScenario::new(2, vec![spec(1, vec![(0, true)], 5), spec(2, vec![(1, true)], 6)]);
    scenario.crash_control = Some((SimTime::from_millis(1), SimTime::from_millis(3)));
    let report = run_fleet(&scenario);
    assert_eq!(report.restores, 1);
    assert_eq!(report.succeeded(), 2, "results: {:?}", report.results);
    assert_eq!(report.final_config, "1010");
}

#[test]
fn session_behind_an_open_breaker_terminates_with_a_journaled_outcome() {
    use sada_fleet::FleetResilience;
    use sada_proto::{BreakerConfig, JournalRecord};
    use sada_simnet::{ActorId, FaultPlan};

    // Group 0 is hosted by agents 0 and 1. Kill agent 0 for good: session 1
    // exhausts its retry ladder against the dead agent (threshold 3 = one
    // full ladder), trips the breaker, aborts, and force-completes its
    // rollback once that ladder exhausts too — releasing the scope while
    // the pinned 30 s cooldown still holds the breaker open. Session 2,
    // queued on the same scope, is then admitted into the open window and
    // must terminate immediately with a journaled outcome — the fail-fast
    // path — rather than hang on suppressed sends holding the scope lock.
    let mut scenario =
        FleetScenario::new(2, vec![spec(1, vec![(0, true)], 0), spec(2, vec![(0, true)], 1)]);
    scenario.resilience = FleetResilience {
        breaker: Some(BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(30),
            cooldown_cap: SimDuration::from_secs(30),
            ..BreakerConfig::default()
        }),
        ..FleetResilience::default()
    };
    scenario.faults = FaultPlan::new().crash(ActorId::from_index(0), SimTime::from_millis(2));
    let report = run_fleet(&scenario);

    assert!(report.breaker_trips >= 1, "exhausted ladder must trip agent 0's breaker");
    assert_eq!(report.rejected, 1, "session 2 is rejected at admission: {:?}", report.results);
    let s1 = report.session(1).unwrap();
    assert!(!s1.success, "session 1 aborts against the dead agent");
    let s2 = report.session(2).unwrap();
    assert!(!s2.success && !s2.gave_up && !s2.cancelled && !s2.shed, "rejected, not given up");
    assert!(s2.admitted_at.is_none(), "rejection happens at the admission edge");
    assert!(s2.completed_at.is_some(), "rejection is a terminal completion");
    assert!(
        report.events.iter().any(|e| matches!(
            e.payload,
            Payload::Fleet(FleetEvent::SessionRejected { session: 2, agent: 0 })
        )),
        "typed rejection event on the bus"
    );
    // The journal records the rejection as a regular outcome, so a crashed
    // control plane never resurrects a session its breakers turned away.
    let parsed = parse_session_journal(&report.journal_text).expect("journal parses");
    assert!(
        parsed.iter().any(|r| r.session.0 == 2
            && matches!(r.record, JournalRecord::Outcome { success: false, gave_up: false })),
        "journaled outcome for the rejected session:\n{}",
        report.journal_text
    );
    // Breaker accounting made it into the report.
    assert!(report.suppressed_sends >= 1, "open breaker absorbed at least one retransmission");
    assert!(
        report.breaker_open_us.iter().any(|&(agent, us)| agent == 0 && us > 0),
        "open-time attribution for agent 0: {:?}",
        report.breaker_open_us
    );
}

#[test]
fn chaos_sweep_multi_session_crash_windows() {
    for seed in 0..20u64 {
        let groups = 4 + (seed % 5) as usize; // 4..=8
                                              // Three sessions: two disjoint early ones and a third overlapping
                                              // the second, queued behind it.
        let sessions = vec![
            spec(1, vec![(0, true), (1, true)], 0),
            spec(2, vec![(2, true), (3, true)], 0),
            spec(3, vec![(3, false), (2, false)], 1),
        ];
        let mut scenario = FleetScenario::new(groups, sessions);
        scenario.seed = seed;
        let crash_ms = 3 + seed % 7; // 3..=9 ms: spans queueing + barriers
        let restart_ms = crash_ms + 2 + seed % 5;
        scenario.crash_control =
            Some((SimTime::from_millis(crash_ms), SimTime::from_millis(restart_ms)));
        let report = run_fleet(&scenario);

        assert_eq!(report.restores, 1, "seed {seed}");
        assert_eq!(report.succeeded(), 3, "seed {seed}: {:?}", report.results);
        groups_are_one_of(&report.final_config);
        // Sessions 1+2 moved their groups to New; session 3 moved 2,3 back.
        let ascending: Vec<char> = report.final_config.chars().rev().collect();
        assert_eq!(ascending[1], '1', "seed {seed}: New0 set");
        assert_eq!(ascending[3], '1', "seed {seed}: New1 set");
        assert_eq!(ascending[4], '1', "seed {seed}: Old2 restored");
        assert_eq!(ascending[6], '1', "seed {seed}: Old3 restored");
        // Round-trip the durable journal through the text codec.
        let parsed = parse_session_journal(&report.journal_text).expect("parses");
        assert!(!parsed.is_empty(), "seed {seed}");
        let overlap_serialized = {
            let s2 = report.session(2).unwrap();
            let s3 = report.session(3).unwrap();
            s2.completed_at.unwrap() <= s3.admitted_at.unwrap()
        };
        assert!(overlap_serialized, "seed {seed}: session 3 must wait for 2");
    }
}
