//! Satellite property: scope-disjoint sessions *commute* — running them
//! concurrently (interleaved barriers and all) reaches exactly the fleet
//! configuration the serial baseline reaches — while overlapping sessions
//! are provably serialized by the scope locks and compose in admission
//! order. The fleet plan cache must be invisible to all of this: a plan
//! served from a (scope-normalized) cache entry is bit-for-bit the plan a
//! fresh search would return.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use sada_fleet::{run_fleet, FleetScenario, FleetWorld, PlanCache, ScopedLazyPlanner, SessionSpec};
use sada_proto::AdaptationPlanner;
use sada_simnet::SimDuration;

/// A random disjoint workload: each group is assigned to at most one
/// session; sessions flip their groups in a random direction and submit at
/// random instants within the first 5 ms.
fn arb_disjoint_workload() -> impl Strategy<Value = (usize, Vec<SessionSpec>)> {
    (2usize..6, proptest::collection::vec((0u8..3, any::<bool>(), 0u64..5000), 2..5)).prop_map(
        |(groups, raw)| {
            let sessions: Vec<SessionSpec> = raw
                .iter()
                .enumerate()
                .filter_map(|(i, &(prio, to_new, at))| {
                    // Session i owns every group g with g % raw.len() == i;
                    // ownership partitions the groups, so scopes are disjoint.
                    let flips: Vec<(usize, bool)> =
                        (0..groups).filter(|g| g % raw.len() == i).map(|g| (g, to_new)).collect();
                    if flips.is_empty() {
                        return None;
                    }
                    Some(SessionSpec {
                        id: i as u64 + 1,
                        flips,
                        priority: prio,
                        submit_at: SimDuration::from_micros(at),
                        cancel_at: None,
                    })
                })
                .collect();
            (groups, sessions)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Disjoint-scope sessions reach the same final fleet configuration
    /// whether admitted concurrently or forced through the one-at-a-time
    /// serial baseline, and every session succeeds either way.
    #[test]
    fn disjoint_sessions_commute_with_serial_execution(
        (groups, sessions) in arb_disjoint_workload(),
    ) {
        prop_assume!(!sessions.is_empty());
        let parallel = run_fleet(&FleetScenario::new(groups, sessions.clone()));
        let mut serial_scenario = FleetScenario::new(groups, sessions.clone());
        serial_scenario.serialize = true;
        let serial = run_fleet(&serial_scenario);

        for s in &sessions {
            prop_assert!(
                parallel.session(s.id).unwrap().success,
                "parallel session {} failed: {:?}", s.id, parallel.results,
            );
            prop_assert!(
                serial.session(s.id).unwrap().success,
                "serial session {} failed: {:?}", s.id, serial.results,
            );
        }
        prop_assert_eq!(
            &parallel.final_config, &serial.final_config,
            "interleaving changed the outcome",
        );
        // No-op flips complete the instant they are admitted, so the peak
        // can legitimately be 0; it must just never exceed 1.
        prop_assert!(serial.max_concurrent <= 1, "baseline must be serial");
    }

    /// Sessions over the *same* group never run concurrently: their
    /// admitted→completed intervals are disjoint, and the fleet
    /// configuration equals the admission-order fold of their flips.
    #[test]
    fn overlapping_sessions_are_serialized_and_fold_in_admission_order(
        dirs in proptest::collection::vec(any::<bool>(), 2..5),
        stagger_us in 0u64..2000,
    ) {
        let groups = 2usize;
        // Every session flips group 0 (plus group 1 for even ids), so all
        // scopes pairwise overlap on group 0's resources.
        let sessions: Vec<SessionSpec> = dirs
            .iter()
            .enumerate()
            .map(|(i, &to_new)| SessionSpec {
                id: i as u64 + 1,
                flips: if i % 2 == 0 {
                    vec![(0, to_new), (1, to_new)]
                } else {
                    vec![(0, to_new)]
                },
                priority: 0,
                submit_at: SimDuration::from_micros(i as u64 * stagger_us),
                cancel_at: None,
            })
            .collect();
        let report = run_fleet(&FleetScenario::new(groups, sessions.clone()));

        let mut spans: Vec<(u64, u64, u64)> = Vec::new(); // (admit, done, id)
        for s in &sessions {
            let r = report.session(s.id).unwrap();
            prop_assert!(r.success, "session {} failed: {:?}", s.id, report.results);
            spans.push((r.admitted_at.unwrap(), r.completed_at.unwrap(), s.id));
        }
        for a in &spans {
            for b in &spans {
                if a.2 < b.2 {
                    prop_assert!(
                        a.1 <= b.0 || b.1 <= a.0,
                        "sessions {} and {} overlapped: {:?} vs {:?}", a.2, b.2, a, b,
                    );
                }
            }
        }
        prop_assert!(report.max_concurrent <= 1);

        // Replay the flips in admission order against a fresh world.
        let world = FleetWorld::build(groups);
        spans.sort_unstable();
        let mut expect = world.initial_config();
        for &(_, _, id) in &spans {
            let spec = sessions.iter().find(|s| s.id == id).unwrap();
            expect = world.target_for(&expect, &spec.flips);
        }
        prop_assert_eq!(report.final_config, expect.to_bit_string());
    }

    /// Cached plans equal fresh plans. A wave of same-shape sessions over
    /// disjoint group ranges shares one cache: after the first session
    /// seeds it, every later session is answered from the cache, and each
    /// answer must be identical to what an uncached planner computes for
    /// the same endpoints.
    #[test]
    fn cached_plans_are_identical_to_fresh_plans(
        waves in 2usize..5,
        span in 1usize..3,
        dirs in proptest::collection::vec(any::<bool>(), 1..3),
    ) {
        let world = Rc::new(FleetWorld::build(waves * span));
        let cache = Rc::new(RefCell::new(PlanCache::new(64)));
        let src = world.initial_config();
        for i in 0..waves {
            // Session i flips its own groups with the shared direction
            // pattern, so all sessions pose isomorphic problems.
            let flips: Vec<(usize, bool)> = (0..span)
                .map(|j| (i * span + j, dirs[j % dirs.len()]))
                .collect();
            let scope = world.scope_comps(&flips);
            let dst = world.target_for(&src, &flips);
            let mut cached = ScopedLazyPlanner::new(Rc::clone(&world), &scope)
                .with_cache(Rc::clone(&cache), i as u64 + 1);
            let mut fresh = ScopedLazyPlanner::new(Rc::clone(&world), &scope);
            prop_assert_eq!(
                cached.paths(&src, &dst, 4),
                fresh.paths(&src, &dst, 4),
                "session {} diverged from the fresh planner", i,
            );
        }
        let stats = cache.borrow().stats();
        prop_assert_eq!(stats.misses, 1, "only the first session misses: {:?}", stats);
        prop_assert_eq!(stats.hits as usize, waves - 1, "{:?}", stats);
        // Hit rate over a disjoint wave is (n-1)/n: at least 50%.
        prop_assert!(stats.hits * 2 >= (stats.hits + stats.misses));
    }
}
