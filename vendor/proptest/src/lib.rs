//! Offline drop-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal property-testing engine with the same surface: the
//! `proptest!` macro, `prop_assert*`/`prop_assume!`/`prop_oneof!`,
//! `Strategy` with `prop_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! `any::<T>()`, range and tuple strategies, `prop::collection::{vec,
//! btree_set}`, and `prop::sample::select`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs (via the assert
//!   message) but is not minimized.
//! - **Fixed deterministic seeding.** Each test derives its RNG from a
//!   hash of the test name, so runs are reproducible — which the CI
//!   script relies on — at the cost of never exploring new cases between
//!   runs.
//! - `*.proptest-regressions` files are not consulted.

pub mod test_runner {
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: generate a fresh case instead.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Driver behind the `proptest!` macro: run `f` until `cases`
    /// successes, tolerating a bounded number of rejections.
    pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::seed_from_u64(fnv1a(name) ^ 0xA076_1D64_78BD_642F);
        let mut done = 0u32;
        let mut rejects = 0u32;
        while done < config.cases {
            match f(&mut rng) {
                Ok(()) => done += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= 65_536,
                        "proptest '{name}': too many rejected cases ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {done}: {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A reproducible value generator. Unlike real proptest there is no
    /// value tree: `gen` samples directly and nothing shrinks.
    pub trait Strategy {
        type Value;

        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: ToString,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason: reason.to_string(), f }
        }

        fn prop_recursive<R, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..levels {
                let deeper = recurse(cur).boxed();
                cur = Union::weighted(vec![(1, base.clone()), (2, deeper)]).boxed();
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy (single-threaded `Rc`).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.gen(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 candidates in a row", self.reason)
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "Union of zero strategies");
            let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "Union weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.gen(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_strategy_for_tuples {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_for_tuples! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.gen(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; bound the retries so a small
            // element domain cannot loop forever.
            for _ in 0..target.saturating_mul(4).max(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.gen(rng));
            }
            out
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from a non-empty list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// The `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// Re-export at the root too, mirroring real proptest's module layout.
pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_proptest($cfg, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::gen(&($strat), __rng);)+
                    let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    __out
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right` (both: `{:?}`)",
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right` (both: `{:?}`): {}",
                __l,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(bool),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        any::<bool>().prop_map(Tree::Leaf).prop_recursive(4, 32, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursion_depth_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 5, "depth {} too deep: {:?}", depth(&t), t);
        }

        #[test]
        fn filters_hold(x in (0usize..50).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 50);
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..10, 0u64..10), flip in any::<bool>()) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
            let _ = flip;
        }

        #[test]
        fn collections_in_bounds(
            v in prop::collection::vec(1u32..5, 2..6),
            s in prop::collection::btree_set(prop::sample::select(vec!["a", "b", "c"]), 0..=3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
            prop_assert!(s.len() <= 3);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u64..1000, 3..10);
        let mut r1 = crate::test_runner::TestRng::seed_from_u64(9);
        let mut r2 = crate::test_runner::TestRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(strat.gen(&mut r1), strat.gen(&mut r2));
        }
    }
}
