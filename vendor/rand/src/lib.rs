//! Offline drop-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free implementation with the
//! same module paths and trait names: `rngs::StdRng`, `SeedableRng`, and
//! the `Rng` extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! Determinism is the only property the simulator relies on: a given seed
//! must always produce the same stream. The generator is xoshiro256**
//! seeded through SplitMix64, which is plenty for discrete-event
//! simulation (it is *not* cryptographic, and neither was the real
//! `StdRng` contract as used here).

use core::ops::{Range, RangeInclusive};

/// Core trait: a source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible by `Rng::gen` (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by `Rng::gen_range`. The output is an independent type
/// parameter (as in real rand) so inference can flow backwards from the
/// use site into the range's integer literals.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough integer sampling: multiply-shift maps a uniform u64 into
// [0, span) with bias below 2^-64 per draw, which is irrelevant here.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Types usable as `gen_range` endpoints. A single blanket impl of
/// `SampleRange` over this trait (rather than one impl per integer type)
/// is what lets inference resolve `gen_range(4..64).min(some_usize)`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator with the `StdRng` name.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let p: f64 = r.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
