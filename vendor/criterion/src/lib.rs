//! Offline drop-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal harness with the same surface: `Criterion::benchmark_group`,
//! group `sample_size`/`throughput`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up once,
//! then timed for a bounded number of batches, and the median per-iteration
//! wall-clock time is printed as one line. There are no plots, no saved
//! baselines, and no outlier analysis — enough to eyeball regressions and
//! to keep `cargo bench` compiling and running offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Upper bound on wall-clock spent measuring a single benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(300);

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

/// Accepted by `bench_function`: either a plain name or a `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id.into_benchmark_id(), f);
        g.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let per_iter = run_samples(self.sample_size, &mut f);
        self.report(&id, per_iter);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let per_iter = run_samples(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self.report(&id, per_iter);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, per_iter: Duration) {
        let label = if self.name.is_empty() {
            id.full.clone()
        } else {
            format!("{}/{}", self.name, id.full)
        };
        let extra = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let secs = per_iter.as_secs_f64();
                if secs > 0.0 {
                    format!("  {:>10.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
                } else {
                    String::new()
                }
            }
            Some(Throughput::Elements(n)) => {
                let secs = per_iter.as_secs_f64();
                if secs > 0.0 {
                    format!("  {:>10.0} elem/s", n as f64 / secs)
                } else {
                    String::new()
                }
            }
            None => String::new(),
        };
        println!("bench {label:<50} {:>12.3} µs/iter{extra}", per_iter.as_secs_f64() * 1e6);
    }
}

/// Run up to `samples` timed batches within the global time budget and
/// return the median per-iteration duration.
fn run_samples<F>(samples: usize, f: &mut F) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let started = Instant::now();
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for i in 0..samples {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed / b.iters);
        }
        // Always take at least one post-warmup sample, then respect the budget.
        if i >= 1 && started.elapsed() > TIME_BUDGET {
            break;
        }
    }
    times.sort();
    times.get(times.len() / 2).copied().unwrap_or(Duration::ZERO)
}

pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_shapes_compile_and_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..k).product::<u64>())
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }
}
