//! Workspace root facade for the DSN 2004 safe-adaptation reproduction.
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`; it re-exports the member crates so the
//! examples can use one import root. The actual library surface lives in
//! [`sada_core`] and the substrate crates.

pub use sada_core as core;
pub use sada_des as des;
pub use sada_expr as expr;
pub use sada_meta as meta;
pub use sada_model as model;
pub use sada_plan as plan;
pub use sada_proto as proto;
pub use sada_simnet as simnet;
pub use sada_tl as tl;
pub use sada_video as video;
